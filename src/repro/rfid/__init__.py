"""UHF RFID substrate: tags, antenna, backscatter channel, reader, DSP.

The RFID half of WaveKey's data acquisition (paper SIV-B).  The channel
simulator replaces the Impinj Speedway R420 + Laird S9028 testbed: the
tag rides in the user's hand, so the gesture modulates the tag-antenna
distance, which modulates backscatter phase (4 pi d / lambda) and
magnitude (radar equation + antenna pattern), on top of static multipath
and — in dynamic environments — reflections from walking people.

The signal-processing half (:mod:`repro.rfid.processing`) is the paper's
real pipeline — phase unwrapping, Savitzky-Golay denoising, motion-onset
synchronization — and would run unchanged on real reader logs.
"""

from repro.rfid.tag import TagProfile, default_tags
from repro.rfid.antenna import AntennaProfile, LAIRD_S9028
from repro.rfid.channel import (
    BackscatterChannel,
    ChannelGeometry,
    Scatterer,
    WalkingPerson,
)
from repro.rfid.reader import ReaderProfile, RFIDReader, RFIDRecord
from repro.rfid.processing import (
    RFIDProcessingConfig,
    process_rfid_record,
    savitzky_golay,
    unwrap_phase,
)
from repro.rfid.environment import EnvironmentProfile, default_environments

__all__ = [
    "TagProfile",
    "default_tags",
    "AntennaProfile",
    "LAIRD_S9028",
    "BackscatterChannel",
    "ChannelGeometry",
    "Scatterer",
    "WalkingPerson",
    "ReaderProfile",
    "RFIDReader",
    "RFIDRecord",
    "RFIDProcessingConfig",
    "process_rfid_record",
    "savitzky_golay",
    "unwrap_phase",
    "EnvironmentProfile",
    "default_environments",
]
