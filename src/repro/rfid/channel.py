"""UHF backscatter channel simulation.

Geometry: the reader antenna sits at a fixed position with a boresight
direction; the user stands at a configurable distance and azimuth from
the antenna (the knobs of Table II) holding the tag, so the tag position
is the user's rest point plus the gesture displacement plus a small
hand-to-tag offset that rotates with the wrist.

The one-way channel is a complex sum of the line-of-sight path and
specular reflections from static scatterers (walls, furniture) — and, in
dynamic environments, from walking people whose movement perturbs the
channel independently of the gesture (the disturbance responsible for the
dynamic-condition degradation in Tables I/II).  The tag backscatters
through the same channel, so the reader observes ``h(t)^2`` scaled by the
tag's backscatter gain: phase advances at ``4 pi d / lambda`` per metre
of hand motion, magnitude follows the two-way radar equation and the
antenna pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.gesture.trajectory import GestureTrajectory
from repro.rfid.antenna import AntennaProfile, LAIRD_S9028
from repro.rfid.tag import TagProfile
from repro.utils.rng import ensure_rng

SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class Scatterer:
    """A static specular reflector (wall, cabinet, metal shelf)."""

    position: np.ndarray  # (3,)
    reflectivity: float  # complex amplitude scale of the reflected path
    phase_rad: float = 0.0  # reflection phase shift

    def positions(self, t: np.ndarray) -> np.ndarray:
        """Constant position broadcast over the time vector."""
        return np.broadcast_to(
            np.asarray(self.position, float), (t.size, 3)
        )


@dataclass(frozen=True)
class WalkingPerson:
    """A person walking through the environment (dynamic condition).

    The walk is a constant-velocity drift with sinusoidal sway, bounced
    back and forth inside a rectangular patrol segment — enough structure
    to create the slowly varying multipath fading real moving bodies
    cause, without simulating full crowd dynamics.
    """

    start: np.ndarray  # (3,)
    velocity: np.ndarray  # (3,) m/s
    patrol_length_m: float = 4.0
    sway_amplitude_m: float = 0.08
    sway_frequency_hz: float = 1.9
    reflectivity: float = 0.35

    def positions(self, t: np.ndarray) -> np.ndarray:
        """Position at each time (bouncing patrol + lateral sway)."""
        t = np.asarray(t, dtype=np.float64)
        speed = float(np.linalg.norm(self.velocity))
        if speed < 1e-9 or self.patrol_length_m <= 0:
            base = np.broadcast_to(
                np.asarray(self.start, float), (t.size, 3)
            ).copy()
        else:
            direction = np.asarray(self.velocity, float) / speed
            # Triangle-wave progress along the patrol segment.
            phase = (speed * t) % (2.0 * self.patrol_length_m)
            progress = np.where(
                phase <= self.patrol_length_m,
                phase,
                2.0 * self.patrol_length_m - phase,
            )
            base = np.asarray(self.start, float) + np.outer(
                progress, direction
            )
        sway_dir = np.array([-self.velocity[1], self.velocity[0], 0.0])
        norm = np.linalg.norm(sway_dir)
        sway_dir = sway_dir / norm if norm > 1e-9 else np.array([1.0, 0, 0])
        sway = self.sway_amplitude_m * np.sin(
            2.0 * np.pi * self.sway_frequency_hz * t
        )
        return base + np.outer(sway, sway_dir)


@dataclass(frozen=True)
class ChannelGeometry:
    """Placement of the antenna and the user (Table II's knobs)."""

    user_distance_m: float = 5.0
    user_azimuth_deg: float = 0.0
    antenna_position: np.ndarray = field(
        default_factory=lambda: np.array([0.0, 0.0, 1.5])
    )
    boresight: np.ndarray = field(
        default_factory=lambda: np.array([0.0, 1.0, 0.0])
    )
    tag_offset_body: np.ndarray = field(
        default_factory=lambda: np.array([0.03, 0.0, -0.02])
    )

    def __post_init__(self):
        if self.user_distance_m <= 0:
            raise ConfigurationError("user_distance_m must be > 0")
        if abs(self.user_azimuth_deg) >= 90.0:
            raise ConfigurationError(
                "user_azimuth_deg must be within (-90, 90)"
            )

    @property
    def user_rest_position(self) -> np.ndarray:
        """User hand rest point: distance along boresight, rotated by
        the azimuth about the vertical axis."""
        azimuth = np.deg2rad(self.user_azimuth_deg)
        b = np.asarray(self.boresight, float)
        b = b / np.linalg.norm(b)
        rot_z = np.array(
            [
                [np.cos(azimuth), -np.sin(azimuth), 0.0],
                [np.sin(azimuth), np.cos(azimuth), 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        direction = rot_z @ b
        return (
            np.asarray(self.antenna_position, float)
            + self.user_distance_m * direction
        )


class BackscatterChannel:
    """Complex backscatter channel between reader antenna and a held tag."""

    def __init__(
        self,
        geometry: ChannelGeometry,
        tag: TagProfile,
        antenna: AntennaProfile = LAIRD_S9028,
        carrier_hz: float = 915e6,
        scatterers: Sequence[Scatterer] = (),
        walkers: Sequence[WalkingPerson] = (),
    ):
        self.geometry = geometry
        self.tag = tag
        self.antenna = antenna
        if not (300e6 <= carrier_hz <= 3e9):
            raise ConfigurationError(
                f"carrier_hz {carrier_hz} outside the UHF-ish range"
            )
        self.carrier_hz = float(carrier_hz)
        self.scatterers: List[Scatterer] = list(scatterers)
        self.walkers: List[WalkingPerson] = list(walkers)

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT / self.carrier_hz

    def tag_positions(
        self, trajectory: GestureTrajectory, t: np.ndarray
    ) -> np.ndarray:
        """World position of the tag at each time: rest point + gesture
        displacement + wrist-rotated in-hand offset."""
        t = np.asarray(t, dtype=np.float64)
        rest = self.geometry.user_rest_position
        disp = trajectory.position(t)
        rotations = trajectory.orientations(t)
        offset = np.einsum(
            "nij,j->ni", rotations, self.geometry.tag_offset_body
        )
        return rest + disp + offset

    def _off_axis(self, points: np.ndarray) -> np.ndarray:
        """Angle between antenna boresight and each point direction."""
        rel = points - self.geometry.antenna_position
        norm = np.linalg.norm(rel, axis=-1)
        if np.any(norm < 1e-6):
            raise SimulationError("a path endpoint coincides with the antenna")
        b = np.asarray(self.geometry.boresight, float)
        b = b / np.linalg.norm(b)
        cos = np.clip(rel @ b / norm, -1.0, 1.0)
        return np.arccos(cos)

    def one_way_response(
        self, tag_pos: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """Complex one-way channel gain antenna->tag at each time."""
        antenna_pos = self.geometry.antenna_position
        wavelength = self.wavelength_m
        k = 2.0 * np.pi / wavelength

        d_los = np.linalg.norm(tag_pos - antenna_pos, axis=1)
        if np.any(d_los < 0.05):
            raise SimulationError("tag is unrealistically close to antenna")
        gain_los = self.antenna.relative_gain(self._off_axis(tag_pos))
        h = gain_los * np.exp(-1j * k * d_los) / d_los

        movers = [
            (s.positions(t), s.reflectivity, getattr(s, "phase_rad", 0.0))
            for s in self.scatterers
        ] + [(w.positions(t), w.reflectivity, 0.0) for w in self.walkers]
        for positions, reflectivity, extra_phase in movers:
            d1 = np.linalg.norm(positions - antenna_pos, axis=1)
            d2 = np.linalg.norm(tag_pos - positions, axis=1)
            # Bodies and furniture cannot physically overlap the antenna
            # or the hand; clamp grazing passes to a contact distance.
            d1 = np.maximum(d1, 0.3)
            d2 = np.maximum(d2, 0.3)
            gain = self.antenna.relative_gain(self._off_axis(positions))
            h = h + (
                reflectivity
                * gain
                * np.exp(-1j * (k * (d1 + d2) - extra_phase))
                / (d1 * d2)
            )
        return h

    def backscatter(
        self, trajectory: GestureTrajectory, t: np.ndarray
    ) -> np.ndarray:
        """Complex backscatter observation (before reader noise).

        The tag modulates and re-radiates through the same channel, so
        the two-way response is the square of the one-way response,
        scaled by the tag's backscatter gain and chip phase.
        """
        t = np.asarray(t, dtype=np.float64)
        tag_pos = self.tag_positions(trajectory, t)
        h = self.one_way_response(tag_pos, t)
        return (
            self.tag.backscatter_gain
            * np.exp(1j * self.tag.chip_phase_offset_rad)
            * h
            * h
        )
