"""Environment presets.

Paper SVI-F.1 emulates four distinct environments by moving/re-orienting
the reader inside one laboratory room, each evaluated in a *static*
condition (only the volunteer present) and a *dynamic* condition (five
people walking around the reader).  An :class:`EnvironmentProfile` fixes
the static scatterer layout; walkers are sampled fresh per
key-establishment instance, since real people never repeat their paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.rfid.antenna import AntennaProfile, LAIRD_S9028
from repro.rfid.channel import (
    BackscatterChannel,
    ChannelGeometry,
    Scatterer,
    WalkingPerson,
)
from repro.rfid.tag import TagProfile
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class EnvironmentProfile:
    """One laboratory configuration: static scatterers + walker statistics."""

    name: str
    scatterers: Sequence[Scatterer] = ()
    n_walkers: int = 5
    walker_speed_range: tuple = (0.6, 1.4)
    walker_area_m: float = 6.0
    #: Effective bistatic reflection amplitude of a walking person at
    #: 915 MHz, including body absorption and the fraction of the body
    #: actually illuminated; lossy-dielectric measurements put the
    #: effective value well below the |R| ~ 0.35 of a flat torso facet.
    walker_reflectivity: float = 0.12
    antenna: AntennaProfile = LAIRD_S9028

    def sample_walkers(
        self,
        rng=None,
        around: np.ndarray = None,
        antenna_position: np.ndarray = None,
        keepout_m: float = 1.3,
    ) -> List[WalkingPerson]:
        """Draw fresh walking-person paths for one dynamic-condition run.

        People walk *around* the reader and the user — they do not cut
        between the user's hand and the antenna.  Each walker's patrol
        lane therefore keeps ``keepout_m`` of lateral clearance from the
        antenna-user line of sight, and patrols roughly parallel to it.
        """
        rng = ensure_rng(rng)
        center = (
            np.array([0.0, 3.0, 1.0])
            if around is None
            else np.asarray(around, float)
        )
        antenna = (
            np.array([0.0, 0.0, 1.5])
            if antenna_position is None
            else np.asarray(antenna_position, float)
        )
        los = center[:2] - antenna[:2]
        los_norm = np.linalg.norm(los)
        los_dir = los / los_norm if los_norm > 1e-9 else np.array([0.0, 1.0])
        lateral_dir = np.array([-los_dir[1], los_dir[0]])

        walkers = []
        for _ in range(self.n_walkers):
            along = rng.uniform(-0.2 * los_norm, 1.1 * los_norm)
            side = rng.choice([-1.0, 1.0]) * rng.uniform(
                keepout_m, keepout_m + self.walker_area_m / 2
            )
            start_xy = antenna[:2] + along * los_dir + side * lateral_dir
            start = np.array([start_xy[0], start_xy[1], center[2]])
            # Patrol parallel to the line of sight (staying in the lane),
            # with a small heading jitter.
            jitter = rng.normal(0.0, 0.15)
            heading = los_dir + jitter * lateral_dir
            heading = heading / np.linalg.norm(heading)
            speed = rng.uniform(*self.walker_speed_range)
            velocity = speed * np.array([heading[0], heading[1], 0.0])
            walkers.append(
                WalkingPerson(
                    start=start,
                    velocity=velocity,
                    patrol_length_m=rng.uniform(2.0, 4.0),
                    sway_amplitude_m=rng.uniform(0.04, 0.12),
                    sway_frequency_hz=rng.uniform(1.6, 2.2),
                    reflectivity=self.walker_reflectivity
                    * rng.uniform(0.7, 1.3),
                )
            )
        return walkers

    def build_channel(
        self,
        tag: TagProfile,
        geometry: ChannelGeometry = None,
        dynamic: bool = False,
        rng=None,
    ) -> BackscatterChannel:
        """Assemble a channel for one key-establishment instance."""
        geometry = geometry or ChannelGeometry()
        walkers = (
            self.sample_walkers(
                rng,
                around=geometry.user_rest_position,
                antenna_position=geometry.antenna_position,
            )
            if dynamic
            else []
        )
        return BackscatterChannel(
            geometry=geometry,
            tag=tag,
            antenna=self.antenna,
            scatterers=self.scatterers,
            walkers=walkers,
        )


def _lab_scatterers(layout: int) -> List[Scatterer]:
    """Hand-placed wall/furniture reflector layouts for the four rooms."""
    layouts = {
        1: [
            Scatterer(np.array([-3.0, 2.0, 1.2]), 0.25, 0.4),
            Scatterer(np.array([3.2, 4.0, 1.0]), 0.18, 2.1),
            Scatterer(np.array([0.5, 8.0, 1.5]), 0.30, 1.0),
            Scatterer(np.array([-2.0, 6.5, 0.8]), 0.12, 3.0),
        ],
        2: [
            Scatterer(np.array([2.8, 1.5, 1.3]), 0.28, 0.9),
            Scatterer(np.array([-3.5, 5.0, 1.1]), 0.22, 1.7),
            Scatterer(np.array([1.0, 7.5, 1.4]), 0.15, 0.2),
        ],
        3: [
            Scatterer(np.array([-2.5, 1.0, 1.0]), 0.32, 2.8),
            Scatterer(np.array([2.0, 6.0, 1.2]), 0.20, 1.3),
            Scatterer(np.array([-1.0, 8.5, 1.6]), 0.26, 0.6),
            Scatterer(np.array([3.5, 3.0, 0.9]), 0.10, 2.2),
            Scatterer(np.array([0.0, 9.5, 1.2]), 0.14, 1.9),
        ],
        4: [
            Scatterer(np.array([3.0, 2.5, 1.1]), 0.24, 1.5),
            Scatterer(np.array([-3.0, 7.0, 1.3]), 0.19, 0.8),
        ],
    }
    return layouts[layout]


def default_environments() -> List[EnvironmentProfile]:
    """The paper's four emulated environments (SVI-F.1)."""
    return [
        EnvironmentProfile(f"environment-{i}", _lab_scatterers(i))
        for i in (1, 2, 3, 4)
    ]
