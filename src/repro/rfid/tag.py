"""UHF RFID tag models.

The paper evaluates six tags of three models: two Alien 9640, two Alien
9730, and two SMARTRAC DogBone (SVI-A).  Tags differ in backscatter
strength, chip phase offset, and sensitivity — the hardware imperfections
SVI-F.3 probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class TagProfile:
    """Electrical profile of one physical tag."""

    name: str
    model: str
    backscatter_gain: float = 1.0  # relative modulated-backscatter strength
    chip_phase_offset_rad: float = 0.0  # constant phase from the chip/antenna
    sensitivity_dbm: float = -18.0  # minimum power to respond
    #: Extra per-read phase jitter from the chip (rad); cheap chips jitter
    #: more.
    phase_jitter_rad: float = 0.01

    def responds(self, incident_power_dbm: float) -> bool:
        """Whether the tag powers up at the given incident power."""
        return incident_power_dbm >= self.sensitivity_dbm


def default_tags() -> List[TagProfile]:
    """The paper's six evaluation tags (SVI-A)."""
    return [
        TagProfile("alien-9640-a", "Alien 9640", 1.00, 0.31, -18.0, 0.010),
        TagProfile("alien-9640-b", "Alien 9640", 0.96, 1.12, -17.8, 0.011),
        TagProfile("alien-9730-a", "Alien 9730", 1.08, 2.43, -18.5, 0.009),
        TagProfile("alien-9730-b", "Alien 9730", 1.05, 0.77, -18.3, 0.009),
        TagProfile("dogbone-a", "SMARTRAC DogBone", 1.15, 1.91, -19.0, 0.008),
        TagProfile("dogbone-b", "SMARTRAC DogBone", 1.12, 2.88, -18.9, 0.008),
    ]
