"""Reader antenna model.

The Laird S9028 used in the paper is a circularly polarized panel antenna
with ~8.5 dBic gain and ~65-70 degree half-power beamwidth.  We model the
normalized power pattern as ``cos(theta)^q`` (a standard panel-antenna
approximation), with ``q`` fitted so the half-power beamwidth matches the
datasheet, plus a floor for back/side lobes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AntennaProfile:
    """A directional reader antenna."""

    name: str
    gain_dbic: float = 8.5
    half_power_beamwidth_deg: float = 68.0
    sidelobe_floor_db: float = -18.0

    def __post_init__(self):
        if not (10.0 <= self.half_power_beamwidth_deg <= 170.0):
            raise ConfigurationError(
                "half_power_beamwidth_deg out of plausible range"
            )

    @property
    def _exponent(self) -> float:
        # Solve cos(theta_hp/2)^q = 1/2 for q.
        half = np.deg2rad(self.half_power_beamwidth_deg / 2.0)
        return float(np.log(0.5) / np.log(np.cos(half)))

    def relative_gain(self, off_axis_rad) -> np.ndarray:
        """Normalized *amplitude* gain at an off-boresight angle.

        Accepts scalars or arrays; the returned amplitude gain is 1.0 on
        boresight and is floored at the side-lobe level behind the panel.
        """
        theta = np.abs(np.asarray(off_axis_rad, dtype=np.float64))
        floor = 10.0 ** (self.sidelobe_floor_db / 20.0)
        cos = np.cos(np.clip(theta, 0.0, np.pi / 2.0 - 1e-6))
        power = cos ** self._exponent
        amp = np.sqrt(power)
        amp = np.where(theta >= np.pi / 2.0, floor, np.maximum(amp, floor))
        return amp

    def absolute_gain(self, off_axis_rad) -> np.ndarray:
        """Amplitude gain including the boresight dBic figure."""
        boresight = 10.0 ** (self.gain_dbic / 20.0)
        return boresight * self.relative_gain(off_axis_rad)


#: The paper's antenna (SVI-A).
LAIRD_S9028 = AntennaProfile("laird-s9028", 8.5, 68.0, -18.0)
