"""Server-side RFID signal processing (paper SIV-B.2).

Turns a raw :class:`repro.rfid.reader.RFIDRecord` into the 400x2 matrix
``R`` the paper feeds to RF-En:

1. *Phase unwrapping*: reader phase is reported modulo 2 pi; any jump
   larger than pi between consecutive samples is removed by adding the
   appropriate multiple of 2 pi (the paper's exact rule).
2. *Denoising*: both phase and magnitude pass through a Savitzky-Golay
   smoothing filter, chosen because it preserves local extrema, which
   carry the gesture information.
3. *Synchronization*: motion onset is detected from the variance jump in
   the unwrapped phase, mirroring the mobile device's accelerometer-side
   detection so the two 2 s windows cover the same physical gesture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import savgol_filter

from repro.errors import SimulationError
from repro.imu.calibration import detect_motion_onset
from repro.rfid.reader import RFIDRecord
from repro.utils.validation import check_positive


def unwrap_phase(phase: np.ndarray) -> np.ndarray:
    """Remove 2-pi jumps: any consecutive difference exceeding pi in
    magnitude is treated as a wrap and compensated (paper SIV-B.2)."""
    phase = np.asarray(phase, dtype=np.float64).ravel()
    if phase.size == 0:
        return phase.copy()
    diffs = np.diff(phase)
    wraps = np.zeros_like(phase)
    wraps[1:] = np.cumsum(
        np.where(diffs > np.pi, -2.0 * np.pi, 0.0)
        + np.where(diffs < -np.pi, 2.0 * np.pi, 0.0)
    )
    return phase + wraps


def savitzky_golay(
    values: np.ndarray, window: int = 15, polyorder: int = 3
) -> np.ndarray:
    """Savitzky-Golay smoothing with validated parameters."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if window % 2 == 0 or window < 3:
        raise SimulationError("savitzky_golay window must be odd and >= 3")
    if polyorder >= window:
        raise SimulationError("polyorder must be smaller than window")
    if values.size < window:
        raise SimulationError(
            f"signal of {values.size} samples shorter than window {window}"
        )
    return savgol_filter(values, window_length=window, polyorder=polyorder)


@dataclass(frozen=True)
class RFIDProcessingConfig:
    """Tunables of the server-side pipeline (defaults follow the paper:
    200 Hz reader, 2 s window, hence 400 output rows)."""

    window_s: float = 2.0
    savgol_window: int = 15
    savgol_polyorder: int = 3
    onset_window_s: float = 0.12
    onset_threshold: float = 5.0
    baseline_s: float = 0.45
    min_onset_std_rad: float = 0.01

    def __post_init__(self):
        check_positive("window_s", self.window_s)
        check_positive("onset_threshold", self.onset_threshold)

    def n_samples(self, sample_rate_hz: float) -> int:
        return int(round(self.window_s * sample_rate_hz))


def process_rfid_record(
    record: RFIDRecord,
    config: RFIDProcessingConfig = RFIDProcessingConfig(),
    offset_s: float = 0.0,
) -> np.ndarray:
    """Run the full server-side pipeline; returns ``R`` of shape (400, 2).

    Column 0 is the processed (unwrapped, smoothed) phase; column 1 the
    smoothed magnitude, matching the paper's matrix layout.  ``offset_s``
    shifts the analysis window after the detected onset, mirroring the
    IMU-side windowing used for dataset generation.
    """
    if offset_s < 0:
        raise SimulationError("offset_s must be non-negative")
    rate = record.sample_rate_hz
    n_out = config.n_samples(rate)

    phase = unwrap_phase(record.phase_rad)
    phase = savitzky_golay(
        phase, config.savgol_window, config.savgol_polyorder
    )
    magnitude = savitzky_golay(
        record.magnitude, config.savgol_window, config.savgol_polyorder
    )

    activity = np.abs(phase - np.median(phase))
    onset = detect_motion_onset(
        activity,
        rate,
        window_s=config.onset_window_s,
        baseline_s=config.baseline_s,
        threshold=config.onset_threshold,
        min_std=config.min_onset_std_rad,
    )
    onset = onset + int(round(offset_s * rate))
    if onset + n_out > phase.size:
        raise SimulationError(
            "gesture after onset is shorter than the processing window"
        )
    window = slice(onset, onset + n_out)
    return np.column_stack([phase[window], magnitude[window]])
