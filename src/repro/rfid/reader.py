"""RFID reader model.

Mirrors the paper's Impinj Speedway R420 configuration: 200 Hz sampling
of backscatter phase and magnitude (SVI-A).  The reader contributes
thermal noise (complex AWGN referred to the antenna), phase quantization
(Impinj readers report phase on a 12-bit grid), and a per-session cable
phase offset.  It records the whole gesture timeline so the server-side
processing can perform the same pause-based motion-onset synchronization
as the mobile device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gesture.trajectory import GestureTrajectory
from repro.rfid.channel import BackscatterChannel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ReaderProfile:
    """Reader hardware profile."""

    name: str = "impinj-r420"
    sample_rate_hz: float = 200.0
    #: Complex-noise amplitude relative to the LOS backscatter magnitude
    #: of a tag at 1 m on boresight (sets the SNR-vs-distance law).
    noise_floor_rel: float = 2.5e-4
    phase_noise_rad: float = 0.04
    phase_quantization_bits: int = 12
    magnitude_gain: float = 1.0

    def __post_init__(self):
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_positive("noise_floor_rel", self.noise_floor_rel, True)
        check_positive("phase_noise_rad", self.phase_noise_rad, True)


@dataclass
class RFIDRecord:
    """Raw reader log of one gesture: wrapped phase + linear magnitude."""

    reader: str
    tag: str
    timestamps_s: np.ndarray  # (N,)
    phase_rad: np.ndarray  # (N,) wrapped to [0, 2 pi)
    magnitude: np.ndarray  # (N,) linear units

    def __post_init__(self):
        n = self.timestamps_s.shape[0]
        if self.phase_rad.shape != (n,) or self.magnitude.shape != (n,):
            raise SimulationError("RFIDRecord arrays must share one length")

    @property
    def sample_rate_hz(self) -> float:
        if len(self.timestamps_s) < 2:
            raise SimulationError("record too short to estimate rate")
        return 1.0 / float(np.median(np.diff(self.timestamps_s)))


class RFIDReader:
    """A reader bound to a hardware profile."""

    def __init__(self, profile: ReaderProfile = ReaderProfile()):
        self.profile = profile

    def record_gesture(
        self,
        channel: BackscatterChannel,
        trajectory: GestureTrajectory,
        rng=None,
    ) -> RFIDRecord:
        """Sample phase/magnitude over the full gesture timeline."""
        rng = ensure_rng(rng)
        p = self.profile
        dt = 1.0 / p.sample_rate_hz
        n = int(np.floor(trajectory.total_s * p.sample_rate_hz))
        if n < 16:
            raise SimulationError("gesture too short for the reader rate")
        t = np.arange(n) * dt

        signal = channel.backscatter(trajectory, t)

        # Thermal noise: complex AWGN scaled against the 1 m boresight
        # LOS backscatter level (|h|^2 ~ 1/d^2 one-way -> 1/d^2 squared
        # at 1 m is ~1), so SNR falls off naturally with distance.
        noise_scale = p.noise_floor_rel * channel.tag.backscatter_gain
        noise = noise_scale * (
            rng.normal(size=n) + 1j * rng.normal(size=n)
        ) / np.sqrt(2.0)
        observed = signal + noise

        cable_offset = rng.uniform(0.0, 2.0 * np.pi)
        phase = np.angle(observed) + cable_offset
        phase = phase + rng.normal(
            0.0,
            np.hypot(p.phase_noise_rad, channel.tag.phase_jitter_rad),
            size=n,
        )
        if p.phase_quantization_bits:
            step = 2.0 * np.pi / (1 << p.phase_quantization_bits)
            phase = np.round(phase / step) * step
        phase = np.mod(phase, 2.0 * np.pi)

        magnitude = p.magnitude_gain * np.abs(observed)

        return RFIDRecord(
            reader=p.name,
            tag=channel.tag.name,
            timestamps_s=t,
            phase_rad=phase,
            magnitude=magnitude,
        )
