"""Key-seed generation pipeline (paper SIV-C).

:class:`KeySeedPipeline` is the deployable inference path: sensor matrix
-> normalization -> encoder -> equiprobable quantization -> gray-coded
key-seed.  The mobile device runs the IMU side, the RFID server runs the
RF side, each producing an ``l_s``-bit :class:`BitSequence`.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.models import WaveKeyModelBundle
from repro.datasets.normalization import (
    normalize_imu_matrix,
    normalize_rfid_matrix,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import LayerProfiler
from repro.obs.tracing import Tracer, resolve_tracer
from repro.utils.bits import BitSequence


class KeySeedPipeline:
    """Inference-time wrapper around a trained model bundle.

    Observability is opt-in and inherited: spans go to ``tracer`` when
    given, else to the caller's active tracer (so the service's batched
    path traces without plumbing); labeled per-encoder metrics land in
    ``metrics`` when a registry is supplied (the access-control server
    passes its own, giving service and pipeline one shared registry).
    """

    def __init__(
        self,
        bundle: WaveKeyModelBundle,
        tracer: Tracer = None,
        metrics: MetricsRegistry = None,
    ):
        self.bundle = bundle
        self.quantizer = bundle.quantizer
        self.tracer = tracer
        self.metrics = metrics
        self._profiler: Optional[LayerProfiler] = None

    # -- observability -------------------------------------------------------

    def enable_profiling(self, tracer: Tracer = None) -> LayerProfiler:
        """Attach one shared per-layer profiler to both encoders."""
        profiler = LayerProfiler(tracer=tracer or self.tracer)
        self.bundle.imu_encoder.profiler = profiler
        self.bundle.rf_encoder.profiler = profiler
        self._profiler = profiler
        return profiler

    def disable_profiling(self) -> None:
        self.bundle.imu_encoder.profiler = None
        self.bundle.rf_encoder.profiler = None
        self._profiler = None

    @property
    def profiler(self) -> Optional[LayerProfiler]:
        return self._profiler

    def _observe(self, encoder: str, n_windows: int, elapsed_s: float):
        if self.metrics is not None:
            labels = {"encoder": encoder}
            self.metrics.counter("pipeline.windows", labels=labels).inc(
                n_windows
            )
            self.metrics.histogram(
                "pipeline.encode_s", labels=labels
            ).observe(elapsed_s)

    @property
    def seed_length(self) -> int:
        """``l_s``: key-seed length in bits."""
        return self.bundle.seed_length

    # -- latent features -----------------------------------------------------

    def imu_features(self, a_matrix: np.ndarray) -> np.ndarray:
        """``f_M``: latent feature vector from an A matrix (200x3)."""
        x = normalize_imu_matrix(a_matrix)[None]
        return self.bundle.imu_encoder.forward(x)[0]

    def rfid_features(self, r_matrix: np.ndarray) -> np.ndarray:
        """``f_R``: latent feature vector from an R matrix (400x2)."""
        x = normalize_rfid_matrix(r_matrix)[None]
        return self.bundle.rf_encoder.forward(x)[0]

    # -- key seeds -------------------------------------------------------------

    def imu_keyseed(self, a_matrix: np.ndarray) -> BitSequence:
        """``S_M``: the mobile device's key-seed."""
        tracer = resolve_tracer(self.tracer)
        start = time.monotonic()
        with tracer.span("pipeline.imu_keyseed"):
            seed = self.quantizer.quantize(self.imu_features(a_matrix))
        self._observe("imu_en", 1, time.monotonic() - start)
        return seed

    def rfid_keyseed(self, r_matrix: np.ndarray) -> BitSequence:
        """``S_R``: the RFID server's key-seed."""
        tracer = resolve_tracer(self.tracer)
        start = time.monotonic()
        with tracer.span("pipeline.rfid_keyseed"):
            seed = self.quantizer.quantize(self.rfid_features(r_matrix))
        self._observe("rf_en", 1, time.monotonic() - start)
        return seed

    # -- batch evaluation -----------------------------------------------------

    def imu_keyseeds(self, a_matrices) -> list:
        """``S_M`` for many A matrices through ONE encoder forward pass.

        ``a_matrices`` is any sequence/stack of (200, 3) matrices; the
        service layer's micro-batcher coalesces concurrent requests onto
        this path.
        """
        tracer = resolve_tracer(self.tracer)
        start = time.monotonic()
        with tracer.span(
            "pipeline.imu_keyseeds", batch_size=len(a_matrices)
        ):
            x = np.stack([normalize_imu_matrix(a) for a in a_matrices])
            features = self.bundle.imu_encoder.forward(x)
            seeds = [self.quantizer.quantize(f) for f in features]
        self._observe("imu_en", len(seeds), time.monotonic() - start)
        return seeds

    def rfid_keyseeds(self, r_matrices) -> list:
        """``S_R`` for many R matrices through ONE encoder forward pass."""
        tracer = resolve_tracer(self.tracer)
        start = time.monotonic()
        with tracer.span(
            "pipeline.rfid_keyseeds", batch_size=len(r_matrices)
        ):
            x = np.stack([normalize_rfid_matrix(r) for r in r_matrices])
            features = self.bundle.rf_encoder.forward(x)
            seeds = [self.quantizer.quantize(f) for f in features]
        self._observe("rf_en", len(seeds), time.monotonic() - start)
        return seeds

    def batch_seed_pairs(
        self, a_matrices: np.ndarray, r_matrices: np.ndarray
    ):
        """Key-seed pairs for stacked matrices (hyperparameter studies).

        ``a_matrices``: (N, 200, 3); ``r_matrices``: (N, 400, 2).
        Returns a list of ``(S_M, S_R)`` tuples.
        """
        seeds_m = self.imu_keyseeds(a_matrices)
        seeds_r = self.rfid_keyseeds(r_matrices)
        return list(zip(seeds_m, seeds_r))

    def seed_mismatch_rates(
        self, a_matrices: np.ndarray, r_matrices: np.ndarray
    ) -> np.ndarray:
        """Per-sample bit-mismatch rate between ``S_M`` and ``S_R``."""
        pairs = self.batch_seed_pairs(a_matrices, r_matrices)
        return np.array([s_m.mismatch_rate(s_r) for s_m, s_r in pairs])
