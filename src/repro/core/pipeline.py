"""Key-seed generation pipeline (paper SIV-C).

:class:`KeySeedPipeline` is the deployable inference path: sensor matrix
-> normalization -> encoder -> equiprobable quantization -> gray-coded
key-seed.  The mobile device runs the IMU side, the RFID server runs the
RF side, each producing an ``l_s``-bit :class:`BitSequence`.
"""

from __future__ import annotations

import numpy as np

from repro.core.models import WaveKeyModelBundle
from repro.datasets.normalization import (
    normalize_imu_matrix,
    normalize_rfid_matrix,
)
from repro.utils.bits import BitSequence


class KeySeedPipeline:
    """Inference-time wrapper around a trained model bundle."""

    def __init__(self, bundle: WaveKeyModelBundle):
        self.bundle = bundle
        self.quantizer = bundle.quantizer

    @property
    def seed_length(self) -> int:
        """``l_s``: key-seed length in bits."""
        return self.bundle.seed_length

    # -- latent features -----------------------------------------------------

    def imu_features(self, a_matrix: np.ndarray) -> np.ndarray:
        """``f_M``: latent feature vector from an A matrix (200x3)."""
        x = normalize_imu_matrix(a_matrix)[None]
        return self.bundle.imu_encoder.forward(x)[0]

    def rfid_features(self, r_matrix: np.ndarray) -> np.ndarray:
        """``f_R``: latent feature vector from an R matrix (400x2)."""
        x = normalize_rfid_matrix(r_matrix)[None]
        return self.bundle.rf_encoder.forward(x)[0]

    # -- key seeds -------------------------------------------------------------

    def imu_keyseed(self, a_matrix: np.ndarray) -> BitSequence:
        """``S_M``: the mobile device's key-seed."""
        return self.quantizer.quantize(self.imu_features(a_matrix))

    def rfid_keyseed(self, r_matrix: np.ndarray) -> BitSequence:
        """``S_R``: the RFID server's key-seed."""
        return self.quantizer.quantize(self.rfid_features(r_matrix))

    # -- batch evaluation -----------------------------------------------------

    def imu_keyseeds(self, a_matrices) -> list:
        """``S_M`` for many A matrices through ONE encoder forward pass.

        ``a_matrices`` is any sequence/stack of (200, 3) matrices; the
        service layer's micro-batcher coalesces concurrent requests onto
        this path.
        """
        x = np.stack([normalize_imu_matrix(a) for a in a_matrices])
        features = self.bundle.imu_encoder.forward(x)
        return [self.quantizer.quantize(f) for f in features]

    def rfid_keyseeds(self, r_matrices) -> list:
        """``S_R`` for many R matrices through ONE encoder forward pass."""
        x = np.stack([normalize_rfid_matrix(r) for r in r_matrices])
        features = self.bundle.rf_encoder.forward(x)
        return [self.quantizer.quantize(f) for f in features]

    def batch_seed_pairs(
        self, a_matrices: np.ndarray, r_matrices: np.ndarray
    ):
        """Key-seed pairs for stacked matrices (hyperparameter studies).

        ``a_matrices``: (N, 200, 3); ``r_matrices``: (N, 400, 2).
        Returns a list of ``(S_M, S_R)`` tuples.
        """
        seeds_m = self.imu_keyseeds(a_matrices)
        seeds_r = self.rfid_keyseeds(r_matrices)
        return list(zip(seeds_m, seeds_r))

    def seed_mismatch_rates(
        self, a_matrices: np.ndarray, r_matrices: np.ndarray
    ) -> np.ndarray:
        """Per-sample bit-mismatch rate between ``S_M`` and ``S_R``."""
        pairs = self.batch_seed_pairs(a_matrices, r_matrices)
        return np.array([s_m.mismatch_rate(s_r) for s_m, s_r in pairs])
