"""Access to the pretrained model bundle shipped with the package.

The paper trains IMU-En / RF-En once, offline, and deploys the same pair
everywhere (SIV-A).  We mirror that: ``scripts/train_default_bundle.py``
runs the full dataset-generation + joint-training + eta-calibration
pipeline and writes the artifact into ``src/repro/assets/default_bundle``,
which installs with the package.  Examples, benchmarks, and integration
tests all load this one artifact through :func:`load_default_bundle`.
"""

from __future__ import annotations

import os

from repro.core.models import WaveKeyModelBundle
from repro.errors import ConfigurationError

_ASSET_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "assets",
    "default_bundle",
)


def default_bundle_dir() -> str:
    """Filesystem location of the shipped bundle."""
    return _ASSET_DIR


def has_default_bundle() -> bool:
    """Whether the pretrained artifact is present."""
    return os.path.exists(os.path.join(_ASSET_DIR, "bundle.json"))


def load_default_bundle() -> WaveKeyModelBundle:
    """Load the shipped pretrained bundle.

    Raises :class:`ConfigurationError` with reproduction instructions if
    the artifact is missing (e.g. a source checkout before running the
    training script).
    """
    if not has_default_bundle():
        raise ConfigurationError(
            "no pretrained bundle found at "
            f"{_ASSET_DIR}; run scripts/train_default_bundle.py to build it"
        )
    return WaveKeyModelBundle.load(_ASSET_DIR)
