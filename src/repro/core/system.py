"""The end-to-end WaveKey system facade.

:class:`WaveKeySystem` ties everything together: a trained model bundle,
a hardware roster (mobile device, tag, reader), an environment, and the
key-agreement protocol.  One call to :meth:`establish_key` performs the
whole Fig. 2 workflow — gesture, dual acquisition, key-seed generation,
bidirectional OT, reconciliation, confirmation — and reports a
structured outcome.  Every evaluation harness in ``benchmarks/`` drives
this facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.models import WaveKeyModelBundle
from repro.core.pipeline import KeySeedPipeline
from repro.datasets.generation import generate_sample
from repro.errors import SimulationError
from repro.gesture import (
    GestureTrajectory,
    VolunteerProfile,
    default_volunteers,
    sample_gesture,
)
from repro.imu import MobileDeviceProfile, default_mobile_devices
from repro.protocol import (
    KeyAgreementConfig,
    KeyAgreementOutcome,
    SimulatedTransport,
    run_key_agreement,
)
from repro.rfid import (
    ChannelGeometry,
    EnvironmentProfile,
    TagProfile,
    default_environments,
    default_tags,
)
from repro.utils.bits import BitSequence
from repro.utils.rng import child_rng, ensure_rng


@dataclass
class KeyEstablishmentResult:
    """Outcome of one end-to-end key establishment."""

    success: bool
    key: Optional[BitSequence]
    elapsed_s: float
    seed_mobile: Optional[BitSequence] = None
    seed_server: Optional[BitSequence] = None
    failure_reason: Optional[str] = None

    @property
    def seed_mismatch_rate(self) -> Optional[float]:
        if self.seed_mobile is None or self.seed_server is None:
            return None
        return self.seed_mobile.mismatch_rate(self.seed_server)


class WaveKeySystem:
    """A deployed WaveKey installation.

    Parameters default to the paper's default experiment settings
    (SVI-B): Galaxy Watch + Alien 9640 tag, environment 1, user 5 m from
    the antenna at 0 degrees azimuth.
    """

    def __init__(
        self,
        bundle: WaveKeyModelBundle,
        device: MobileDeviceProfile = None,
        tag: TagProfile = None,
        environment: EnvironmentProfile = None,
        geometry: ChannelGeometry = None,
        agreement_config: KeyAgreementConfig = None,
    ):
        self.bundle = bundle
        self.pipeline = KeySeedPipeline(bundle)
        self.device = device or default_mobile_devices()[3]  # galaxy-watch
        self.tag = tag or default_tags()[0]  # alien-9640-a
        self.environment = environment or default_environments()[0]
        self.geometry = geometry or ChannelGeometry()
        self.agreement_config = agreement_config or KeyAgreementConfig(
            eta=bundle.eta
        )

    # -- acquisition -------------------------------------------------------------

    def acquire(
        self,
        trajectory: GestureTrajectory,
        dynamic: bool = False,
        rng=None,
    ):
        """Run both acquisition pipelines on one gesture; returns the
        ``(S_M, S_R)`` key-seed pair."""
        sample = generate_sample(
            trajectory,
            self.device,
            self.tag,
            self.environment,
            dynamic=dynamic,
            geometry=self.geometry,
            rng=rng,
        )
        seed_m = self.pipeline.imu_keyseed(sample.a_matrix)
        seed_r = self.pipeline.rfid_keyseed(sample.r_matrix)
        return seed_m, seed_r

    # -- end-to-end -------------------------------------------------------------

    def establish_key(
        self,
        volunteer: VolunteerProfile = None,
        trajectory: GestureTrajectory = None,
        dynamic: bool = False,
        transport: SimulatedTransport = None,
        rng=None,
    ) -> KeyEstablishmentResult:
        """Full Fig. 2 workflow for one gesture.

        Either pass a pre-sampled ``trajectory`` or a ``volunteer`` whose
        style a fresh gesture is drawn from (defaults to volunteer 1).
        Acquisition failures (e.g. undetectable motion onset) and
        agreement failures are reported in the result, not raised.
        """
        rng = ensure_rng(rng)
        if trajectory is None:
            volunteer = volunteer or default_volunteers()[0]
            trajectory = sample_gesture(
                volunteer, child_rng(rng, "gesture")
            )
        try:
            seed_m, seed_r = self.acquire(
                trajectory, dynamic=dynamic, rng=child_rng(rng, "acquire")
            )
        except SimulationError as exc:
            return KeyEstablishmentResult(
                success=False,
                key=None,
                elapsed_s=trajectory.total_s,
                failure_reason=f"acquisition: {exc}",
            )
        outcome = run_key_agreement(
            seed_m,
            seed_r,
            config=self.agreement_config,
            transport=transport,
            rng=child_rng(rng, "agreement"),
        )
        return self._result_from_outcome(outcome, seed_m, seed_r)

    def agree_on_seeds(
        self,
        seed_mobile: BitSequence,
        seed_server: BitSequence,
        transport: SimulatedTransport = None,
        rng=None,
    ) -> KeyEstablishmentResult:
        """Run only the key-agreement stage on externally produced seeds
        (used by attack harnesses that substitute one side)."""
        outcome = run_key_agreement(
            seed_mobile,
            seed_server,
            config=self.agreement_config,
            transport=transport,
            rng=rng,
        )
        return self._result_from_outcome(outcome, seed_mobile, seed_server)

    @staticmethod
    def _result_from_outcome(
        outcome: KeyAgreementOutcome,
        seed_m: BitSequence,
        seed_r: BitSequence,
    ) -> KeyEstablishmentResult:
        key = outcome.mobile_key if outcome.keys_match else None
        return KeyEstablishmentResult(
            success=outcome.success and outcome.keys_match,
            key=key,
            elapsed_s=outcome.elapsed_s,
            seed_mobile=seed_m,
            seed_server=seed_r,
            failure_reason=outcome.failure_reason,
        )
