"""The WaveKey neural architectures (paper Fig. 5).

IMU-En and RF-En each stack two convolutional layers with ReLU units, a
fully connected layer, and a final batch-norm layer; the decoder De
stacks deconv / FC / deconv / FC with ReLU after the first three layers.
The final encoder batch-norms are non-affine so the latent elements stay
standard normal at inference — the property the equiprobable quantizer
relies on (SIV-C).

:class:`WaveKeyModelBundle` packages the three trained networks with the
quantization configuration (``N_b``, ``eta``) so one artifact fully
determines key-seed generation on both ends — the paper stresses the
same trained pair serves *any* device/server combination.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.nn import (
    BatchNorm1d,
    Conv1d,
    ConvTranspose1d,
    Dense,
    Flatten,
    ReLU,
    Sequential,
    load_model,
    save_model,
)
from repro.nn.layers import Reshape
from repro.quantize import KeySeedQuantizer
from repro.utils.rng import child_rng

#: Input geometry fixed by the acquisition pipelines (SIV-B).
IMU_CHANNELS = 3
IMU_LENGTH = 200
RFID_CHANNELS = 2
RFID_LENGTH = 400


def build_imu_encoder(latent: int = 50, rng=None) -> Sequential:
    """IMU-En: (N, 3, 200) -> (N, latent).

    Two conv layers + ReLU, one fully connected layer, one batch-norm
    layer, per Fig. 5.  Kernel widths are sized so the receptive fields
    span a substantial fraction of a gesture period — the latent features
    must tolerate the few-tens-of-ms window misalignment left over from
    the pause-based synchronization.
    """
    if latent < 1:
        raise ConfigurationError("latent width must be >= 1")
    return Sequential(
        Conv1d(IMU_CHANNELS, 16, 11, stride=2, padding=5,
               rng=child_rng(rng, "c1"), name="imu.conv1"),
        ReLU(name="imu.relu1"),
        Conv1d(16, 32, 7, stride=2, padding=3,
               rng=child_rng(rng, "c2"), name="imu.conv2"),
        ReLU(name="imu.relu2"),
        Flatten(name="imu.flatten"),
        Dense(32 * 50, latent, rng=child_rng(rng, "fc"), name="imu.fc"),
        BatchNorm1d(latent, affine=False, name="imu.bn"),
        name="imu_encoder",
    )


def build_rf_encoder(latent: int = 50, rng=None) -> Sequential:
    """RF-En: (N, 2, 400) -> (N, latent); same Fig. 5 shape as IMU-En
    with the first stride covering the 2x higher RFID sample rate."""
    if latent < 1:
        raise ConfigurationError("latent width must be >= 1")
    return Sequential(
        Conv1d(RFID_CHANNELS, 16, 19, stride=4, padding=9,
               rng=child_rng(rng, "c1"), name="rf.conv1"),
        ReLU(name="rf.relu1"),
        Conv1d(16, 32, 7, stride=2, padding=3,
               rng=child_rng(rng, "c2"), name="rf.conv2"),
        ReLU(name="rf.relu2"),
        Flatten(name="rf.flatten"),
        Dense(32 * 50, latent, rng=child_rng(rng, "fc"), name="rf.fc"),
        BatchNorm1d(latent, affine=False, name="rf.bn"),
        name="rf_encoder",
    )


def build_decoder(latent: int = 50, rng=None) -> Sequential:
    """De: (N, latent) -> (N, 400) reconstructed magnitude vector.

    Layer order follows Fig. 5: deconv, FC, deconv, FC with ReLU after
    the first three layers.
    """
    if latent < 1:
        raise ConfigurationError("latent width must be >= 1")
    return Sequential(
        Reshape((latent, 1), name="de.reshape_in"),
        ConvTranspose1d(latent, 16, 25, rng=child_rng(rng, "d1"),
                        name="de.deconv1"),
        ReLU(name="de.relu1"),
        Flatten(name="de.flatten1"),
        Dense(16 * 25, 8 * 100, rng=child_rng(rng, "fc1"), name="de.fc1"),
        ReLU(name="de.relu2"),
        Reshape((8, 100), name="de.reshape_mid"),
        ConvTranspose1d(8, 4, 4, stride=2, padding=1,
                        rng=child_rng(rng, "d2"), name="de.deconv2"),
        ReLU(name="de.relu3"),
        Flatten(name="de.flatten2"),
        Dense(4 * 200, RFID_LENGTH, rng=child_rng(rng, "fc2"),
              name="de.fc2"),
        name="decoder",
    )


@dataclass
class WaveKeyModelBundle:
    """A trained WaveKey deployment artifact.

    Attributes
    ----------
    imu_encoder / rf_encoder / decoder:
        The three jointly trained networks (the decoder only matters for
        training/ablation, but it ships so training can resume).
    n_bins:
        Quantization bin count ``N_b``.  The paper selects 9; our default
        is 8 because whole-bit gray coding of a non-power-of-two bin
        count biases the seed bits (see DESIGN.md), and the Fig. 7 sweep
        shows 8 and 9 equivalently secure on this substrate.
    eta:
        ECC error-correction rate calibrated on the training set
        (SVI-C.2 derives it from the 99th-percentile seed mismatch).
    """

    imu_encoder: Sequential
    rf_encoder: Sequential
    decoder: Sequential
    n_bins: int = 8
    eta: float = 0.04

    def __post_init__(self):
        if self.latent_width != self.rf_encoder[-1].num_features:
            raise ConfigurationError(
                "IMU and RF encoders disagree on latent width"
            )
        if not (0.0 < self.eta < 0.5):
            raise ConfigurationError(f"eta must be in (0, 0.5), got {self.eta}")

    @property
    def latent_width(self) -> int:
        """The trained ``l_f``."""
        return self.imu_encoder[-1].num_features

    @property
    def quantizer(self) -> KeySeedQuantizer:
        return KeySeedQuantizer(self.n_bins)

    @property
    def seed_length(self) -> int:
        """``l_s`` for this bundle (whole-bit Eq. 2)."""
        return self.quantizer.seed_length(self.latent_width)

    # -- persistence --------------------------------------------------------

    def save(self, directory: str) -> None:
        """Write the bundle (three models + metadata) to ``directory``."""
        os.makedirs(directory, exist_ok=True)
        save_model(self.imu_encoder, os.path.join(directory, "imu_en.npz"))
        save_model(self.rf_encoder, os.path.join(directory, "rf_en.npz"))
        save_model(self.decoder, os.path.join(directory, "de.npz"))
        meta = {"n_bins": self.n_bins, "eta": self.eta}
        with open(os.path.join(directory, "bundle.json"), "w") as fh:
            json.dump(meta, fh, indent=2)

    @classmethod
    def load(cls, directory: str) -> "WaveKeyModelBundle":
        """Load a bundle written by :meth:`save`."""
        with open(os.path.join(directory, "bundle.json")) as fh:
            meta = json.load(fh)
        return cls(
            imu_encoder=load_model(os.path.join(directory, "imu_en.npz")),
            rf_encoder=load_model(os.path.join(directory, "rf_en.npz")),
            decoder=load_model(os.path.join(directory, "de.npz")),
            n_bins=int(meta["n_bins"]),
            eta=float(meta["eta"]),
        )
