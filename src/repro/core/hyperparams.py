"""Hyperparameter determination experiments (paper SVI-C).

Three procedures, each mirroring the paper's methodology:

* :func:`prune_latent_width` — start from ``l_f = 50``, repeatedly remove
  the lowest-variance latent unit (from both encoders and the decoder
  input, keeping the latent spaces aligned), retrain, and stop when the
  joint loss rises more than 5% in one round (SVI-C.1).
* :func:`calibrate_eta` / :func:`sweep_quantization_bins` — for each
  candidate ``N_b``, set the ECC rate ``eta`` just above the
  99th-percentile benign seed mismatch, then score the resulting
  random-guess success (Eq. 4) and gesture-mimicry success (SVI-C.2,
  Fig. 7).
* :func:`determine_tau` — time the preparation of the first OT message
  over dataset records and set the protocol deadline with headroom
  (SVI-C.3: every device finished within 100 ms, tau = 120 ms).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.models import WaveKeyModelBundle
from repro.core.pipeline import KeySeedPipeline
from repro.core.training import (
    JointTrainingConfig,
    JointTrainingResult,
    continue_training,
    evaluate_joint_loss,
    prepare_arrays,
    train_wavekey_models,
)
from repro.crypto.group import Group
from repro.crypto.numbers import WAVEKEY_GROUP_512
from repro.crypto.ot import OTSender
from repro.datasets.generation import WaveKeyDataset
from repro.errors import ConfigurationError
from repro.nn.layers import Reshape
from repro.nn.pruning import output_variances, prune_feature_unit
from repro.quantize import KeySeedQuantizer
from repro.utils.rng import child_rng, ensure_rng


def random_guess_success(seed_length: int, eta: float) -> float:
    """Eq. 4: probability a uniform guess lands within the ECC radius."""
    if seed_length < 1:
        raise ConfigurationError("seed_length must be >= 1")
    if not (0.0 <= eta < 1.0):
        raise ConfigurationError(f"eta must be in [0, 1), got {eta}")
    radius = int(math.floor(seed_length * eta))
    total = sum(math.comb(seed_length, i) for i in range(radius + 1))
    return total / (2.0 ** seed_length)


@dataclass
class EtaCalibration:
    """Result of calibrating the ECC rate against benign mismatch."""

    eta: float
    mismatch_rates: np.ndarray
    target_success_rate: float
    seed_length: int

    @property
    def expected_benign_success(self) -> float:
        """Fraction of calibration samples the chosen eta reconciles."""
        return float(np.mean(self.mismatch_rates <= self.eta))

    @property
    def random_guess_success(self) -> float:
        """Eq. 4 evaluated at the calibrated operating point."""
        return random_guess_success(self.seed_length, self.eta)


def calibrate_eta(
    pipeline: KeySeedPipeline,
    a_matrices: np.ndarray,
    r_matrices: np.ndarray,
    target_success_rate: float = 0.99,
    max_eta: float = 0.25,
) -> EtaCalibration:
    """Choose ``eta`` just above the target-percentile benign mismatch.

    The paper designs for a >= 99% key-establishment success rate and
    sets ``eta`` higher than the seed bit-mismatch rate of 99% of the
    dataset samples (SVI-C.2).  ``max_eta`` is a security ceiling: an
    ECC radius approaching 0.5 would reconcile substantially mismatched
    seeds (inflating every attack's success), so the calibration never
    exceeds it even when the benign tail is heavy — heavy-tail samples
    then surface as (rare) key-establishment failures instead.
    """
    if not (0.0 < target_success_rate < 1.0):
        raise ConfigurationError("target_success_rate must be in (0, 1)")
    if not (0.0 < max_eta < 0.5):
        raise ConfigurationError("max_eta must be in (0, 0.5)")
    rates = pipeline.seed_mismatch_rates(a_matrices, r_matrices)
    l_s = pipeline.seed_length
    percentile = float(np.quantile(rates, target_success_rate))
    # Round up to the next representable mismatch count so the chosen
    # rate actually covers the percentile sample; clamp to the security
    # ceiling (still representable).
    count = math.ceil(percentile * l_s)
    count = min(max(count, 1), int(math.floor(max_eta * l_s)))
    eta = count / l_s
    return EtaCalibration(
        eta=eta,
        mismatch_rates=rates,
        target_success_rate=target_success_rate,
        seed_length=l_s,
    )


@dataclass
class BinSweepPoint:
    """One N_b candidate in the Fig. 7 sweep."""

    n_bins: int
    seed_length: int
    eta: float
    guess_success: float
    mimicry_success: float
    benign_success: float


def sweep_quantization_bins(
    bundle: WaveKeyModelBundle,
    a_matrices: np.ndarray,
    r_matrices: np.ndarray,
    mimic_a_matrices: np.ndarray = None,
    victim_r_matrices: np.ndarray = None,
    n_bins_values: Sequence[int] = tuple(range(4, 16)),
    target_success_rate: float = 0.99,
) -> List[BinSweepPoint]:
    """Reproduce the Fig. 7 study across quantization bin counts.

    ``mimic_a_matrices``/``victim_r_matrices`` are matched rows: the
    attacker's IMU matrix while imitating the gesture whose RFID matrix
    the server observed.  A mimicry instance succeeds when the mimic's
    seed falls within the calibrated ECC radius of the victim's seed.
    """
    points: List[BinSweepPoint] = []
    for n_bins in n_bins_values:
        candidate = WaveKeyModelBundle(
            imu_encoder=bundle.imu_encoder,
            rf_encoder=bundle.rf_encoder,
            decoder=bundle.decoder,
            n_bins=int(n_bins),
            eta=bundle.eta,
        )
        pipeline = KeySeedPipeline(candidate)
        calibration = calibrate_eta(
            pipeline, a_matrices, r_matrices, target_success_rate
        )
        mimicry_success = 0.0
        if mimic_a_matrices is not None and len(mimic_a_matrices):
            mimic_rates = pipeline.seed_mismatch_rates(
                mimic_a_matrices, victim_r_matrices
            )
            mimicry_success = float(
                np.mean(mimic_rates <= calibration.eta)
            )
        points.append(
            BinSweepPoint(
                n_bins=int(n_bins),
                seed_length=pipeline.seed_length,
                eta=calibration.eta,
                guess_success=calibration.random_guess_success,
                mimicry_success=mimicry_success,
                benign_success=calibration.expected_benign_success,
            )
        )
    return points


def select_optimal_bins(points: Sequence[BinSweepPoint]) -> BinSweepPoint:
    """Pick the sweep point minimizing the worst attack success rate."""
    if not points:
        raise ConfigurationError("empty bin sweep")
    return min(points, key=lambda p: max(p.guess_success, p.mimicry_success))


# -- l_f pruning (SVI-C.1) -------------------------------------------------


def _prune_decoder_input(decoder, index: int) -> None:
    """Remove latent channel ``index`` from the decoder's input side."""
    reshape = decoder[0]
    deconv = decoder[1]
    if not isinstance(reshape, Reshape):
        raise ConfigurationError("decoder must start with a Reshape layer")
    deconv.weight.data = np.delete(deconv.weight.data, index, axis=0)
    deconv.weight.grad = np.zeros_like(deconv.weight.data)
    deconv.in_channels -= 1
    reshape.target_shape = (deconv.in_channels, 1)


@dataclass
class PruningStep:
    """One pruning round: width after pruning and retrained loss."""

    latent_width: int
    loss: float


@dataclass
class PruningResult:
    """Outcome of the l_f search."""

    bundle: WaveKeyModelBundle
    steps: List[PruningStep] = field(default_factory=list)

    @property
    def selected_width(self) -> int:
        return self.bundle.latent_width


def prune_latent_width(
    dataset: WaveKeyDataset,
    initial_width: int = 50,
    min_width: int = 2,
    loss_increase_tolerance: float = 0.05,
    training_config: JointTrainingConfig = None,
    retrain_epochs: int = 5,
    rng=None,
    verbose: bool = False,
) -> PruningResult:
    """SVI-C.1: derive ``l_f`` by variance-guided pruning.

    Both encoders prune the *same* latent index (the one with the lowest
    combined pre-batch-norm variance) so the element-wise alignment the
    joint loss established survives the surgery; the decoder drops the
    matching input channel.  After each removal the three networks are
    retrained briefly; pruning stops when the retrained loss exceeds the
    previous round's loss by more than ``loss_increase_tolerance``.
    """
    rng = ensure_rng(rng)
    base_config = training_config or JointTrainingConfig(
        latent_width=initial_width
    )
    if base_config.latent_width != initial_width:
        base_config = JointTrainingConfig(
            latent_width=initial_width,
            reconstruction_weight=base_config.reconstruction_weight,
            epochs=base_config.epochs,
            batch_size=base_config.batch_size,
            learning_rate=base_config.learning_rate,
            n_bins=base_config.n_bins,
        )
    result = train_wavekey_models(
        dataset, base_config, rng=child_rng(rng, "initial"), verbose=verbose
    )
    bundle = result.bundle
    x_imu, x_rfid, target = prepare_arrays(dataset)
    previous_loss = evaluate_joint_loss(
        bundle, x_imu, x_rfid, target, base_config.reconstruction_weight
    )
    steps = [PruningStep(bundle.latent_width, previous_loss)]

    retrain_config = JointTrainingConfig(
        latent_width=initial_width,
        reconstruction_weight=base_config.reconstruction_weight,
        epochs=retrain_epochs,
        batch_size=base_config.batch_size,
        learning_rate=base_config.learning_rate,
        n_bins=base_config.n_bins,
    )

    round_id = 0
    while bundle.latent_width > min_width:
        variances = output_variances(
            bundle.imu_encoder, x_imu
        ) + output_variances(bundle.rf_encoder, x_rfid)
        index = int(np.argmin(variances))
        prune_feature_unit(bundle.imu_encoder, index)
        prune_feature_unit(bundle.rf_encoder, index)
        _prune_decoder_input(bundle.decoder, index)

        continue_training(
            bundle.imu_encoder,
            bundle.rf_encoder,
            bundle.decoder,
            dataset,
            retrain_config,
            rng=child_rng(rng, "retrain", round_id),
        )
        loss = evaluate_joint_loss(
            bundle, x_imu, x_rfid, target, base_config.reconstruction_weight
        )
        steps.append(PruningStep(bundle.latent_width, loss))
        if verbose:
            print(
                f"[prune] width={bundle.latent_width} loss={loss:.4f} "
                f"(previous {previous_loss:.4f})"
            )
        if loss > previous_loss * (1.0 + loss_increase_tolerance):
            break
        previous_loss = loss
        round_id += 1
    return PruningResult(bundle=bundle, steps=steps)


# -- tau determination (SVI-C.3) ---------------------------------------------


@dataclass
class TauMeasurement:
    """Timing statistics for preparing the first OT message."""

    prep_times_s: np.ndarray
    tau_s: float

    @property
    def max_prep_s(self) -> float:
        return float(self.prep_times_s.max())


def determine_tau(
    seed_length: int,
    n_trials: int = 50,
    group: Group = WAVEKEY_GROUP_512,
    headroom: float = 1.2,
    rng=None,
) -> TauMeasurement:
    """Time the crafting of ``M_A`` (one announce per OT instance, i.e.
    ``seed_length`` modexps) and set ``tau`` with multiplicative
    headroom, mirroring SVI-C.3 (100 ms observed -> tau = 120 ms)."""
    if seed_length < 1 or n_trials < 1:
        raise ConfigurationError("seed_length and n_trials must be >= 1")
    rng = ensure_rng(rng)
    times = np.empty(n_trials)
    for trial in range(n_trials):
        start = time.perf_counter()
        senders = [OTSender(group, rng) for _ in range(seed_length)]
        for sender in senders:
            sender.announce()
        times[trial] = time.perf_counter() - start
    return TauMeasurement(
        prep_times_s=times, tau_s=float(times.max() * headroom)
    )
