"""Joint autoencoder training (paper SIV-E.2).

Minimizes Eq. 3 over the dataset D:

    L = sum_i ( ||f_M,i - f_R,i||^2 + lambda * ||De(f_M,i) - R_i^Mag||^2 )

The first term pulls the two modalities' latent codes together (so the
quantized key-seeds nearly match); the second term forces the shared
latent space to retain the gesture information (so the seeds stay
random) by reconstructing the RFID *magnitude* — the paper found phase
too environment-sensitive to reconstruct from IMU data alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.datasets.generation import WaveKeyDataset
from repro.datasets.normalization import (
    normalize_imu_matrix,
    normalize_rfid_matrix,
    rfid_magnitude_target,
)
from repro.errors import TrainingError
from repro.nn import Adam, Sequential
from repro.utils.rng import child_rng, ensure_rng


@dataclass(frozen=True)
class JointTrainingConfig:
    """Hyperparameters of the joint loop (lambda = 0.4 per the paper)."""

    latent_width: int = 12
    reconstruction_weight: float = 0.4
    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 1e-3
    n_bins: int = 8
    #: L2 regularization: cross-modal alignment is easy to satisfy by
    #: memorizing training pairs; decay + input noise force features
    #: that generalize to unseen gestures.
    weight_decay: float = 1e-4
    augment_noise: float = 0.05
    #: Penalty on off-diagonal latent correlation.  The paper relies on
    #: the reconstruction term alone to keep the latent space diverse
    #: ("retain enough randomness", SIV-E.2); on our simulated substrate
    #: that pressure is too weak and the alignment objective collapses
    #: the latent to effective rank ~1 — which would let two unrelated
    #: gestures produce near-identical key-seeds.  This term enforces the
    #: same property explicitly (documented deviation, see DESIGN.md).
    decorrelation_weight: float = 0.5

    def __post_init__(self):
        if self.latent_width < 1:
            raise TrainingError("latent_width must be >= 1")
        if self.reconstruction_weight < 0:
            raise TrainingError("reconstruction_weight must be >= 0")
        if self.epochs < 1 or self.batch_size < 2:
            raise TrainingError("epochs >= 1 and batch_size >= 2 required")
        if self.weight_decay < 0 or self.augment_noise < 0:
            raise TrainingError(
                "weight_decay and augment_noise must be >= 0"
            )
        if self.decorrelation_weight < 0:
            raise TrainingError("decorrelation_weight must be >= 0")


@dataclass
class JointTrainingResult:
    """Outcome of :func:`train_wavekey_models`."""

    bundle: WaveKeyModelBundle
    loss_history: List[float] = field(default_factory=list)
    alignment_history: List[float] = field(default_factory=list)
    reconstruction_history: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.loss_history:
            raise TrainingError("training ran zero epochs")
        return self.loss_history[-1]


def prepare_arrays(
    dataset: WaveKeyDataset,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize a dataset into network-ready arrays.

    Returns ``(x_imu, x_rfid, mag_target)`` with shapes
    ``(N, 3, 200)``, ``(N, 2, 400)``, ``(N, 400)``.
    """
    if len(dataset) == 0:
        raise TrainingError("cannot train on an empty dataset")
    x_imu = np.stack(
        [normalize_imu_matrix(s.a_matrix) for s in dataset]
    )
    x_rfid = np.stack(
        [normalize_rfid_matrix(s.r_matrix) for s in dataset]
    )
    target = np.stack(
        [rfid_magnitude_target(s.r_matrix) for s in dataset]
    )
    return x_imu, x_rfid, target


def joint_epoch(
    imu_encoder: Sequential,
    rf_encoder: Sequential,
    decoder: Sequential,
    optimizer: Adam,
    x_imu: np.ndarray,
    x_rfid: np.ndarray,
    target: np.ndarray,
    batch_size: int,
    reconstruction_weight: float,
    rng: np.random.Generator,
    augment_noise: float = 0.0,
    decorrelation_weight: float = 0.0,
) -> Tuple[float, float, float]:
    """One pass over the data; returns (loss, alignment, reconstruction)."""
    n = x_imu.shape[0]
    order = rng.permutation(n)
    total = align_total = recon_total = 0.0
    batches = 0
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        if idx.size < 2:
            continue
        batch_imu = x_imu[idx]
        batch_rfid = x_rfid[idx]
        if augment_noise:
            batch_imu = batch_imu + rng.normal(
                0.0, augment_noise, size=batch_imu.shape
            )
            batch_rfid = batch_rfid + rng.normal(
                0.0, augment_noise, size=batch_rfid.shape
            )
        f_m = imu_encoder.forward(batch_imu, training=True)
        f_r = rf_encoder.forward(batch_rfid, training=True)
        recon = decoder.forward(f_m, training=True)

        b = idx.size
        diff_align = f_m - f_r
        diff_recon = recon - target[idx]
        align = float(np.sum(diff_align**2) / b)
        recon_loss = float(np.sum(diff_recon**2) / b)
        loss = align + reconstruction_weight * recon_loss
        if not np.isfinite(loss):
            raise TrainingError(f"joint loss diverged to {loss}")

        optimizer.zero_grad()
        grad_recon = (2.0 * reconstruction_weight / b) * diff_recon
        grad_fm_from_decoder = decoder.backward(grad_recon)
        grad_fm = (2.0 / b) * diff_align + grad_fm_from_decoder
        grad_fr = (-2.0 / b) * diff_align
        if decorrelation_weight:
            # Penalty sum_{i != j} C_ij^2 with C = f^T f / b: gradient
            # (4 / b) f C_off, applied to both latent batches.
            for f, grad in ((f_m, grad_fm), (f_r, grad_fr)):
                c = f.T @ f / b
                np.fill_diagonal(c, 0.0)
                grad += decorrelation_weight * (4.0 / b) * (f @ c)
        imu_encoder.backward(grad_fm)
        rf_encoder.backward(grad_fr)
        optimizer.step()

        total += loss
        align_total += align
        recon_total += recon_loss
        batches += 1
    if batches == 0:
        raise TrainingError("dataset smaller than one training batch")
    return total / batches, align_total / batches, recon_total / batches


def evaluate_joint_loss(
    bundle: WaveKeyModelBundle,
    x_imu: np.ndarray,
    x_rfid: np.ndarray,
    target: np.ndarray,
    reconstruction_weight: float = 0.4,
) -> float:
    """Eq. 3 on prepared arrays in inference mode (used by pruning)."""
    f_m = bundle.imu_encoder.forward(x_imu)
    f_r = bundle.rf_encoder.forward(x_rfid)
    recon = bundle.decoder.forward(f_m)
    n = x_imu.shape[0]
    align = float(np.sum((f_m - f_r) ** 2) / n)
    recon_loss = float(np.sum((recon - target) ** 2) / n)
    return align + reconstruction_weight * recon_loss


def train_wavekey_models(
    dataset: WaveKeyDataset,
    config: JointTrainingConfig = JointTrainingConfig(),
    rng=None,
    verbose: bool = False,
) -> JointTrainingResult:
    """Train IMU-En, RF-En, and De jointly from scratch on ``dataset``."""
    rng = ensure_rng(rng)
    imu_encoder = build_imu_encoder(config.latent_width,
                                    rng=child_rng(rng, "imu"))
    rf_encoder = build_rf_encoder(config.latent_width,
                                  rng=child_rng(rng, "rf"))
    decoder = build_decoder(config.latent_width, rng=child_rng(rng, "de"))
    return continue_training(
        imu_encoder, rf_encoder, decoder, dataset, config, rng, verbose
    )


def continue_training(
    imu_encoder: Sequential,
    rf_encoder: Sequential,
    decoder: Sequential,
    dataset: WaveKeyDataset,
    config: JointTrainingConfig,
    rng=None,
    verbose: bool = False,
) -> JointTrainingResult:
    """Run the joint loop on existing networks (used after pruning)."""
    rng = ensure_rng(rng)
    x_imu, x_rfid, target = prepare_arrays(dataset)
    params = (
        imu_encoder.parameters()
        + rf_encoder.parameters()
        + decoder.parameters()
    )
    optimizer = Adam(
        params, lr=config.learning_rate, weight_decay=config.weight_decay
    )
    result = JointTrainingResult(
        bundle=WaveKeyModelBundle(
            imu_encoder=imu_encoder,
            rf_encoder=rf_encoder,
            decoder=decoder,
            n_bins=config.n_bins,
        )
    )
    for epoch in range(config.epochs):
        loss, align, recon = joint_epoch(
            imu_encoder,
            rf_encoder,
            decoder,
            optimizer,
            x_imu,
            x_rfid,
            target,
            config.batch_size,
            config.reconstruction_weight,
            rng,
            augment_noise=config.augment_noise,
            decorrelation_weight=config.decorrelation_weight,
        )
        result.loss_history.append(loss)
        result.alignment_history.append(align)
        result.reconstruction_history.append(recon)
        if verbose:
            print(
                f"[train] epoch {epoch + 1}/{config.epochs} "
                f"loss={loss:.4f} align={align:.4f} recon={recon:.4f}"
            )
    return result
