"""WaveKey core: the paper's primary contribution.

* :mod:`repro.core.models` — the IMU-En / RF-En / De architectures of
  Fig. 5 and the :class:`WaveKeyModelBundle` that ships them together
  with the quantization configuration.
* :mod:`repro.core.training` — joint training with the cross-modal loss
  of Eq. 3.
* :mod:`repro.core.pipeline` — sensor matrices -> latent features ->
  key-seeds.
* :mod:`repro.core.hyperparams` — the paper's three hyperparameter
  experiments: l_f by variance pruning (SVI-C.1), N_b / eta selection
  (SVI-C.2, Fig. 7), and the tau deadline (SVI-C.3).
* :mod:`repro.core.system` — :class:`WaveKeySystem`, the end-to-end
  facade tying gesture, sensors, models, and protocol together.
"""

from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.core.training import (
    JointTrainingConfig,
    JointTrainingResult,
    train_wavekey_models,
)
from repro.core.pipeline import KeySeedPipeline
from repro.core.hyperparams import (
    EtaCalibration,
    calibrate_eta,
    determine_tau,
    prune_latent_width,
    sweep_quantization_bins,
)
from repro.core.system import KeyEstablishmentResult, WaveKeySystem

__all__ = [
    "WaveKeyModelBundle",
    "build_decoder",
    "build_imu_encoder",
    "build_rf_encoder",
    "JointTrainingConfig",
    "JointTrainingResult",
    "train_wavekey_models",
    "KeySeedPipeline",
    "EtaCalibration",
    "calibrate_eta",
    "determine_tau",
    "prune_latent_width",
    "sweep_quantization_bins",
    "KeyEstablishmentResult",
    "WaveKeySystem",
]
