"""Loss functions.

Losses return ``(value, grad)`` pairs so training loops never need a
separate backward call on the loss object.  The WaveKey joint loss (paper
Eq. 3) is assembled from :class:`SumSquaredError` terms in
:mod:`repro.core.training`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError


class Loss:
    """Base class: callable returning ``(scalar_value, grad_wrt_pred)``."""

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        raise NotImplementedError


def _check_shapes(prediction: np.ndarray, target: np.ndarray) -> None:
    if prediction.shape != target.shape:
        raise ShapeError(
            f"loss: prediction shape {prediction.shape} != "
            f"target shape {target.shape}"
        )


class MSELoss(Loss):
    """Mean squared error averaged over every element."""

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        _check_shapes(prediction, target)
        diff = prediction - target
        value = float(np.mean(diff * diff))
        grad = (2.0 / diff.size) * diff
        return value, grad


class SumSquaredError(Loss):
    """Squared Euclidean distance summed over features, averaged over batch.

    This matches the per-sample ``||.||_2`` terms in the paper's Eq. 3
    (up to the square, which changes nothing about the minimizer and keeps
    gradients smooth at zero).
    """

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        _check_shapes(prediction, target)
        if prediction.ndim < 2:
            raise ShapeError("SumSquaredError expects batched input")
        n = prediction.shape[0]
        diff = prediction - target
        value = float(np.sum(diff * diff) / n)
        grad = (2.0 / n) * diff
        return value, grad
