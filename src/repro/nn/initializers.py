"""Weight initializers.

Both initializers follow the fan-in/fan-out conventions of their original
papers (He et al. 2015 for ReLU networks, Glorot & Bengio 2010 for linear
outputs) and draw from a caller-supplied generator so model construction
is fully reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional kernels."""
    if len(shape) == 2:  # (in, out) dense kernel
        return shape[0], shape[1]
    if len(shape) == 3:  # (out_ch, in_ch, k) conv kernel
        receptive = shape[2]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported kernel shape {shape}")


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-uniform initialization, appropriate before ReLU activations."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def xavier_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier-uniform initialization for linear/tanh outputs."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)
