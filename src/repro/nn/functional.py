"""Vectorized 1-D convolution primitives (im2col / col2im).

Both :class:`repro.nn.conv.Conv1d` and
:class:`repro.nn.conv.ConvTranspose1d` are expressed in terms of the two
helpers here, which keeps the adjoint relationships between the four
convolution maps (forward / input-grad / weight-grad, and their transposed
counterparts) in one auditable place.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError


def conv1d_output_length(length: int, kernel: int, stride: int, pad: int) -> int:
    """Output length of a 1-D convolution."""
    out = (length + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces empty output: length={length}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def conv_transpose1d_output_length(
    length: int, kernel: int, stride: int, pad: int
) -> int:
    """Output length of a 1-D transposed convolution."""
    out = (length - 1) * stride - 2 * pad + kernel
    if out <= 0:
        raise ShapeError(
            f"transposed convolution produces empty output: length={length}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def im2col1d(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> np.ndarray:
    """Extract sliding windows.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, L)``.

    Returns
    -------
    Array of shape ``(N, C * kernel, L_out)`` where column ``t`` holds the
    flattened receptive field of output position ``t``.
    """
    n, c, length = x.shape
    l_out = conv1d_output_length(length, kernel, stride, pad)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad)))
    s0, s1, s2 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, l_out, kernel),
        strides=(s0, s1, s2 * stride, s2),
        writeable=False,
    )
    # (N, C, L_out, K) -> (N, C, K, L_out) -> (N, C*K, L_out)
    return np.ascontiguousarray(windows.transpose(0, 1, 3, 2)).reshape(
        n, c * kernel, l_out
    )


def col2im1d(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col1d`: scatter-add columns back to the signal.

    ``cols`` has shape ``(N, C * kernel, L_out)``; the result has shape
    ``x_shape = (N, C, L)``.
    """
    n, c, length = x_shape
    l_out = conv1d_output_length(length, kernel, stride, pad)
    if cols.shape != (n, c * kernel, l_out):
        raise ShapeError(
            f"col2im1d: cols shape {cols.shape} incompatible with "
            f"x_shape={x_shape}, kernel={kernel}, stride={stride}, pad={pad}"
        )
    cols = cols.reshape(n, c, kernel, l_out)
    padded = np.zeros((n, c, length + 2 * pad), dtype=cols.dtype)
    for k in range(kernel):
        padded[:, :, k : k + stride * l_out : stride] += cols[:, :, k, :]
    if pad:
        return padded[:, :, pad:-pad]
    return padded


def conv1d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, stride: int, pad: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Convolution forward pass.

    ``x``: ``(N, C_in, L)``; ``weight``: ``(C_out, C_in, K)``; ``bias``:
    ``(C_out,)``.  Returns ``(output, cols)`` where ``cols`` is the im2col
    cache needed by the backward pass.
    """
    c_out, c_in, kernel = weight.shape
    if x.shape[1] != c_in:
        raise ShapeError(
            f"conv1d: input channels {x.shape[1]} != weight channels {c_in}"
        )
    cols = im2col1d(x, kernel, stride, pad)
    w2 = weight.reshape(c_out, c_in * kernel)
    # (O, F) @ (N, F, L) broadcasts to one BLAS gemm per sample; this is
    # several times faster than the equivalent einsum, and the gap widens
    # with batch size — the property the micro-batching service relies on.
    out = np.matmul(w2, cols)
    out += bias[None, :, None]
    return out, cols


def conv1d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: Tuple[int, int, int],
    weight: np.ndarray,
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convolution backward pass.

    Returns ``(grad_x, grad_weight, grad_bias)``.
    """
    c_out, c_in, kernel = weight.shape
    w2 = weight.reshape(c_out, c_in * kernel)
    grad_cols = np.matmul(w2.T, grad_out)
    grad_x = col2im1d(grad_cols, x_shape, kernel, stride, pad)
    grad_w = np.matmul(grad_out, cols.swapaxes(1, 2)).sum(axis=0).reshape(
        weight.shape
    )
    grad_b = grad_out.sum(axis=(0, 2))
    return grad_x, grad_w, grad_b
