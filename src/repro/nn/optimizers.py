"""First-order optimizers: SGD with momentum, Adam.

Optimizers hold per-parameter state keyed by parameter identity, so a
single optimizer instance can drive the jointly trained IMU-En / RF-En /
De parameter set (paper SIV-E.2) without any coupling between the three
networks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Parameter


class Optimizer:
    """Base class holding the parameter list and zero-grad plumbing."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be > 0, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not (0.0 <= momentum < 1.0):
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}"
            )
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + grad
                self._velocity[id(p)] = v
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p in self.parameters:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
