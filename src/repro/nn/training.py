"""Generic single-model training loop.

The WaveKey-specific joint loop lives in :mod:`repro.core.training`; this
module provides the plain supervised ``Trainer`` used by unit tests, by
the in-situ camera attack's acceleration-estimation network (paper
SVI-E.2), and by any downstream user of :mod:`repro.nn`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import TrainingError
from repro.nn.losses import Loss
from repro.nn.optimizers import Optimizer
from repro.nn.sequential import Sequential
from repro.utils.rng import ensure_rng


@dataclass
class TrainingHistory:
    """Per-epoch loss record returned by :meth:`Trainer.fit`."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        if not self.train_loss:
            raise TrainingError("no epochs were run")
        return self.train_loss[-1]

    @property
    def best_val_loss(self) -> float:
        if not self.val_loss:
            raise TrainingError("no validation data was supplied")
        return min(self.val_loss)


class Trainer:
    """Mini-batch trainer for a single :class:`Sequential` model."""

    def __init__(
        self,
        model: Sequential,
        loss: Loss,
        optimizer: Optimizer,
        batch_size: int = 64,
        rng=None,
    ):
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.batch_size = int(batch_size)
        self.rng = ensure_rng(rng)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(x, y)``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape[0] != y.shape[0]:
            raise TrainingError(
                f"x has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise TrainingError("cannot train on an empty dataset")
        history = TrainingHistory()
        n = x.shape[0]
        for epoch in range(int(epochs)):
            order = (
                self.rng.permutation(n) if shuffle else np.arange(n)
            )
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                # Training batch-norm needs at least two samples.
                if idx.size < 2 and n >= 2:
                    continue
                pred = self.model.forward(x[idx], training=True)
                value, grad = self.loss(pred, y[idx])
                if not np.isfinite(value):
                    raise TrainingError(
                        f"loss diverged to {value} at epoch {epoch}"
                    )
                self.optimizer.zero_grad()
                self.model.backward(grad)
                self.optimizer.step()
                epoch_loss += value
                batches += 1
            if batches == 0:
                raise TrainingError(
                    "no usable batches: dataset smaller than 2 samples"
                )
            history.train_loss.append(epoch_loss / batches)
            if x_val is not None and y_val is not None:
                history.val_loss.append(self.evaluate(x_val, y_val))
            if verbose:
                msg = (
                    f"epoch {epoch + 1}/{epochs}: "
                    f"train={history.train_loss[-1]:.6f}"
                )
                if history.val_loss:
                    msg += f" val={history.val_loss[-1]:.6f}"
                print(msg)
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Loss of the model on ``(x, y)`` in inference mode."""
        pred = self.model.forward(np.asarray(x, dtype=np.float64))
        value, _ = self.loss(pred, np.asarray(y, dtype=np.float64))
        return value
