"""Batch normalization.

WaveKey deliberately ends both encoders with a batch-norm layer so that
every element of the latent feature vector is (approximately) standard
normal — which lets the quantizer reuse one set of equiprobable bins for
all elements (paper SIV-C / SIV-E.2).  ``BatchNorm1d`` therefore exposes
its running statistics explicitly; inference uses them, training uses
batch statistics while updating the running buffers with exponential
moving averages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers import Layer, Parameter


class BatchNorm1d(Layer):
    """Batch normalization over ``(batch, features)`` input."""

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        affine: bool = True,
        name: str = "batchnorm",
    ):
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.affine = bool(affine)
        self.name = name
        self.gamma = Parameter(
            np.ones(self.num_features), name=f"{name}.gamma"
        )
        self.beta = Parameter(
            np.zeros(self.num_features), name=f"{name}.beta"
        )
        self.running_mean = np.zeros(self.num_features)
        self.running_var = np.ones(self.num_features)
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.num_features}), "
                f"got {x.shape}"
            )
        if training:
            if x.shape[0] < 2:
                raise ShapeError(
                    f"{self.name}: training batch-norm needs batch >= 2"
                )
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            # Unbiased variance for the running buffer, like torch.
            n = x.shape[0]
            unbiased = var * n / (n - 1)
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * unbiased
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        out = x_hat
        if self.affine:
            out = self.gamma.data * x_hat + self.beta.data
        self._cache = (x_hat, inv_std) if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward"
            )
        x_hat, inv_std = self._cache
        n = x_hat.shape[0]
        if self.affine:
            self.gamma.grad += (grad_out * x_hat).sum(axis=0)
            self.beta.grad += grad_out.sum(axis=0)
            grad_xhat = grad_out * self.gamma.data
        else:
            grad_xhat = grad_out
        # Standard batch-norm backward through batch statistics.
        grad_x = (
            grad_xhat
            - grad_xhat.mean(axis=0)
            - x_hat * (grad_xhat * x_hat).mean(axis=0)
        ) * inv_std
        return grad_x

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta] if self.affine else []

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        state[f"{self.name}.running_mean"] = self.running_mean
        state[f"{self.name}.running_var"] = self.running_var
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        for attr in ("running_mean", "running_var"):
            key = f"{self.name}.{attr}"
            if key not in state:
                raise ShapeError(f"missing buffer {key!r} in state dict")
            incoming = np.asarray(state[key], dtype=np.float64)
            if incoming.shape != (self.num_features,):
                raise ShapeError(
                    f"buffer {key!r}: saved shape {incoming.shape} != "
                    f"({self.num_features},)"
                )
            setattr(self, attr, incoming.copy())

    def spec(self) -> Dict[str, object]:
        return {
            "type": "BatchNorm1d",
            "name": self.name,
            "num_features": self.num_features,
            "momentum": self.momentum,
            "eps": self.eps,
            "affine": self.affine,
        }
