"""Sequential container."""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.nn.layers import Layer, Parameter


class Sequential(Layer):
    """A linear chain of layers applied in order."""

    def __init__(self, *layers: Layer, name: str = "sequential"):
        self.layers: List[Layer] = list(layers)
        self.name = name

    def add(self, layer: Layer) -> "Sequential":
        """Append ``layer``; returns ``self`` for chaining."""
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            state.update(layer.state_dict())
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for layer in self.layers:
            layer.load_state_dict(state)

    def spec(self) -> Dict[str, object]:
        return {
            "type": "Sequential",
            "name": self.name,
            "layers": [layer.spec() for layer in self.layers],
        }

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]
