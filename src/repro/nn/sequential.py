"""Sequential container."""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers import Layer, Parameter


class Sequential(Layer):
    """A linear chain of layers applied in order.

    Assigning a :class:`repro.obs.LayerProfiler` to :attr:`profiler`
    turns on per-layer forward timing (and, under an active tracer,
    per-layer child spans).  The default ``None`` keeps the hot path at
    one attribute check per forward call.
    """

    def __init__(self, *layers: Layer, name: str = "sequential"):
        self.layers: List[Layer] = list(layers)
        self.name = name
        #: opt-in observability hook; duck-typed so :mod:`repro.nn`
        #: never imports :mod:`repro.obs`.
        self.profiler: Optional[object] = None

    def add(self, layer: Layer) -> "Sequential":
        """Append ``layer``; returns ``self`` for chaining."""
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            return self._forward_profiled(x, training)
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def _forward_profiled(
        self, x: np.ndarray, training: bool
    ) -> np.ndarray:
        profiler = self.profiler
        for layer in self.layers:
            in_shape = np.shape(x)
            start = time.monotonic()
            x = layer.forward(x, training=training)
            profiler.record(
                self.name, layer, in_shape, np.shape(x),
                start, time.monotonic(),
            )
        return x

    def forward_many(
        self, inputs: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Inference on many independent single samples as ONE batch.

        Stacks same-shaped per-sample arrays along a new batch axis, runs
        a single (BLAS-batched) forward pass, and splits the result back
        into per-sample outputs.  This is the primitive the service
        layer's micro-batching scheduler coalesces concurrent requests
        onto; for the WaveKey encoders it is several times faster than
        the equivalent loop of single-sample forwards.
        """
        if len(inputs) == 0:
            return []
        arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
        shape = arrays[0].shape
        for i, a in enumerate(arrays[1:], start=1):
            if a.shape != shape:
                raise ShapeError(
                    f"{self.name}.forward_many: input {i} has shape "
                    f"{a.shape}, expected {shape}"
                )
        out = self.forward(np.stack(arrays))
        return [out[i] for i in range(out.shape[0])]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            state.update(layer.state_dict())
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for layer in self.layers:
            layer.load_state_dict(state)

    def spec(self) -> Dict[str, object]:
        return {
            "type": "Sequential",
            "name": self.name,
            "layers": [layer.spec() for layer in self.layers],
        }

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]
