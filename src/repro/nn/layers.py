"""Core layer abstractions: Parameter, Layer, Dense, ReLU, Flatten.

Layers implement explicit ``forward``/``backward`` passes.  ``forward``
caches whatever the matching ``backward`` needs; ``backward`` receives the
gradient of the loss with respect to the layer output and returns the
gradient with respect to the layer input, accumulating parameter
gradients into each :class:`Parameter`'s ``grad`` buffer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.initializers import he_uniform
from repro.utils.rng import ensure_rng


class Parameter:
    """A trainable array with an accumulated gradient buffer."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of this layer (empty for stateless layers)."""
        return []

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All persistent arrays (parameters plus buffers like BN stats)."""
        return {p.name: p.data for p in self.parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore persistent arrays saved by :meth:`state_dict`."""
        for p in self.parameters():
            if p.name not in state:
                raise ShapeError(f"missing parameter {p.name!r} in state dict")
            incoming = np.asarray(state[p.name], dtype=np.float64)
            if incoming.shape != p.data.shape:
                raise ShapeError(
                    f"parameter {p.name!r}: saved shape {incoming.shape} "
                    f"!= model shape {p.data.shape}"
                )
            p.data = incoming.copy()
            p.grad = np.zeros_like(p.data)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # Architecture spec used by repro.nn.serialization.
    def spec(self) -> Dict[str, object]:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b`` on ``(batch, in)`` input."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng=None,
        name: str = "dense",
    ):
        rng = ensure_rng(rng)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.name = name
        self.weight = Parameter(
            he_uniform((self.in_features, self.out_features), rng),
            name=f"{name}.weight",
        )
        self.bias = Parameter(
            np.zeros(self.out_features), name=f"{name}.bias"
        )
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.in_features}), "
                f"got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward"
            )
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def spec(self) -> Dict[str, object]:
        return {
            "type": "Dense",
            "name": self.name,
            "in_features": self.in_features,
            "out_features": self.out_features,
        }


class ReLU(Layer):
    """Element-wise rectifier."""

    def __init__(self, name: str = "relu"):
        self.name = name
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        mask = x > 0
        self._mask = mask if training else None
        return np.where(mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward"
            )
        return grad_out * self._mask

    def spec(self) -> Dict[str, object]:
        return {"type": "ReLU", "name": self.name}


class Flatten(Layer):
    """Collapse all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""

    def __init__(self, name: str = "flatten"):
        self.name = name
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward"
            )
        return grad_out.reshape(self._shape)

    def spec(self) -> Dict[str, object]:
        return {"type": "Flatten", "name": self.name}


class Reshape(Layer):
    """Reshape non-batch dimensions to a fixed target shape."""

    def __init__(self, target_shape, name: str = "reshape"):
        self.name = name
        self.target_shape = tuple(int(d) for d in target_shape)
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._shape = x.shape if training else None
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward"
            )
        return grad_out.reshape(self._shape)

    def spec(self) -> Dict[str, object]:
        return {
            "type": "Reshape",
            "name": self.name,
            "target_shape": list(self.target_shape),
        }
