"""1-D convolution layers (channels-first).

``Conv1d`` and ``ConvTranspose1d`` are exact adjoints of each other and
share the im2col/col2im primitives in :mod:`repro.nn.functional`; the
transposed layer's forward pass is the convolution's input-gradient map,
which is the textbook definition and also what the gradient check in
``tests/nn/test_conv.py`` verifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.functional import (
    col2im1d,
    conv1d_backward,
    conv1d_forward,
    conv1d_output_length,
    conv_transpose1d_output_length,
    im2col1d,
)
from repro.nn.initializers import he_uniform
from repro.nn.layers import Layer, Parameter
from repro.utils.rng import ensure_rng


class Conv1d(Layer):
    """1-D convolution on ``(N, C_in, L)`` input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng=None,
        name: str = "conv1d",
    ):
        rng = ensure_rng(rng)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.name = name
        if self.kernel_size < 1 or self.stride < 1 or self.padding < 0:
            raise ShapeError(f"{name}: invalid kernel/stride/padding")
        self.weight = Parameter(
            he_uniform(
                (self.out_channels, self.in_channels, self.kernel_size), rng
            ),
            name=f"{name}.weight",
        )
        self.bias = Parameter(
            np.zeros(self.out_channels), name=f"{name}.bias"
        )
        self._cache = None

    def output_length(self, length: int) -> int:
        """Temporal length of the output for an input of ``length``."""
        return conv1d_output_length(
            length, self.kernel_size, self.stride, self.padding
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ShapeError(f"{self.name}: expected 3-D input, got {x.shape}")
        out, cols = conv1d_forward(
            x, self.weight.data, self.bias.data, self.stride, self.padding
        )
        self._cache = (cols, x.shape) if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward"
            )
        cols, x_shape = self._cache
        grad_x, grad_w, grad_b = conv1d_backward(
            grad_out, cols, x_shape, self.weight.data, self.stride,
            self.padding,
        )
        self.weight.grad += grad_w
        self.bias.grad += grad_b
        return grad_x

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def spec(self) -> Dict[str, object]:
        return {
            "type": "Conv1d",
            "name": self.name,
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
            "stride": self.stride,
            "padding": self.padding,
        }


class ConvTranspose1d(Layer):
    """1-D transposed convolution (deconvolution) on ``(N, C_in, L)`` input.

    Weight shape follows the transposed convention ``(C_in, C_out, K)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng=None,
        name: str = "deconv1d",
    ):
        rng = ensure_rng(rng)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.name = name
        if self.kernel_size < 1 or self.stride < 1 or self.padding < 0:
            raise ShapeError(f"{name}: invalid kernel/stride/padding")
        # Initialize as the adjoint of a conv kernel of shape
        # (C_out, C_in, K); stored directly as (C_in, C_out, K).
        self.weight = Parameter(
            he_uniform(
                (self.out_channels, self.in_channels, self.kernel_size), rng
            ).transpose(1, 0, 2).copy(),
            name=f"{name}.weight",
        )
        self.bias = Parameter(
            np.zeros(self.out_channels), name=f"{name}.bias"
        )
        self._x: Optional[np.ndarray] = None

    def output_length(self, length: int) -> int:
        """Temporal length of the output for an input of ``length``."""
        return conv_transpose1d_output_length(
            length, self.kernel_size, self.stride, self.padding
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected (N, {self.in_channels}, L), "
                f"got {x.shape}"
            )
        n, _, l_in = x.shape
        l_out = self.output_length(l_in)
        # Treat x as the "output gradient" of a conv whose input is y:
        # y = col2im(W_c^T @ x) with W_c of shape (C_in, C_out*K).
        w2 = self.weight.data.reshape(
            self.in_channels, self.out_channels * self.kernel_size
        )
        cols = np.matmul(w2.T, x)
        y = col2im1d(
            cols,
            (n, self.out_channels, l_out),
            self.kernel_size,
            self.stride,
            self.padding,
        )
        y += self.bias.data[None, :, None]
        self._x = x if training else None
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward"
            )
        x = self._x
        grad_cols = im2col1d(
            grad_out, self.kernel_size, self.stride, self.padding
        )
        w2 = self.weight.data.reshape(
            self.in_channels, self.out_channels * self.kernel_size
        )
        grad_x = np.matmul(w2, grad_cols)
        grad_w = np.matmul(x, grad_cols.swapaxes(1, 2)).sum(axis=0).reshape(
            self.weight.data.shape
        )
        self.weight.grad += grad_w
        self.bias.grad += grad_out.sum(axis=(0, 2))
        return grad_x

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def spec(self) -> Dict[str, object]:
        return {
            "type": "ConvTranspose1d",
            "name": self.name,
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
            "stride": self.stride,
            "padding": self.padding,
        }
