"""Variance-based neuron pruning.

Paper SVI-C.1 determines the latent width ``l_f`` by starting from 50
latent units and repeatedly deleting, from each encoder, the fully
connected unit with the lowest output variance over the training set —
retraining after each deletion and stopping when the joint loss rises by
more than 5%.  The helpers here implement the two mechanical pieces of
that loop: measuring pre-batch-norm unit variances, and surgically
removing one latent unit from a Dense + BatchNorm1d tail.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import Dense, Parameter
from repro.nn.norm import BatchNorm1d
from repro.nn.sequential import Sequential


def output_variances(encoder: Sequential, x: np.ndarray) -> np.ndarray:
    """Per-unit output variance of the final Dense layer over ``x``.

    The variance is measured *before* the trailing batch-norm layer
    (post-batch-norm variances are ~1 by construction and carry no
    information about how much gesture signal a unit encodes).
    """
    if len(encoder) < 2 or not isinstance(encoder[-1], BatchNorm1d):
        raise ConfigurationError(
            "output_variances expects an encoder ending in BatchNorm1d"
        )
    if not isinstance(encoder[-2], Dense):
        raise ConfigurationError(
            "output_variances expects Dense immediately before BatchNorm1d"
        )
    h = np.asarray(x, dtype=np.float64)
    for layer in encoder.layers[:-1]:
        h = layer.forward(h, training=False)
    return h.var(axis=0)


def _drop_vector_entry(param: Parameter, index: int) -> None:
    param.data = np.delete(param.data, index)
    param.grad = np.zeros_like(param.data)


def prune_feature_unit(encoder: Sequential, index: int) -> None:
    """Remove latent unit ``index`` from an encoder's Dense+BN tail.

    Mutates the encoder in place: the Dense layer loses one output column
    and the batch-norm layer loses the matching affine parameters and
    running statistics.
    """
    if len(encoder) < 2:
        raise ConfigurationError("encoder too short to prune")
    bn = encoder[-1]
    dense = encoder[-2]
    if not isinstance(bn, BatchNorm1d) or not isinstance(dense, Dense):
        raise ConfigurationError(
            "prune_feature_unit expects an encoder ending in Dense + "
            "BatchNorm1d"
        )
    width = dense.out_features
    if width <= 1:
        raise ConfigurationError("cannot prune the last remaining unit")
    if not (0 <= index < width):
        raise ShapeError(f"unit index {index} out of range [0, {width})")

    dense.weight.data = np.delete(dense.weight.data, index, axis=1)
    dense.weight.grad = np.zeros_like(dense.weight.data)
    _drop_vector_entry(dense.bias, index)
    dense.out_features = width - 1

    _drop_vector_entry(bn.gamma, index)
    _drop_vector_entry(bn.beta, index)
    bn.running_mean = np.delete(bn.running_mean, index)
    bn.running_var = np.delete(bn.running_var, index)
    bn.num_features = width - 1
