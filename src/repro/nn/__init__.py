"""A from-scratch numpy deep-learning framework.

PyTorch is not available in this environment, so the WaveKey autoencoders
(IMU-En, RF-En, and the decoder De from Fig. 5 of the paper) run on this
minimal but complete framework: layers with explicit forward/backward
passes, parameter objects, optimizers, a training loop, variance-based
neuron pruning (needed for the paper's l_f experiment, SVI-C.1), and model
serialization.

The framework follows channels-first conventions: 1-D convolutional
layers take ``(batch, channels, length)`` arrays, dense layers take
``(batch, features)``.
"""

from repro.nn.layers import Dense, Flatten, Layer, Parameter, ReLU
from repro.nn.conv import Conv1d, ConvTranspose1d
from repro.nn.norm import BatchNorm1d
from repro.nn.sequential import Sequential
from repro.nn.losses import Loss, MSELoss, SumSquaredError
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.initializers import he_uniform, xavier_uniform
from repro.nn.training import Trainer, TrainingHistory
from repro.nn.pruning import output_variances, prune_feature_unit
from repro.nn.serialization import load_model, save_model

__all__ = [
    "Layer",
    "Parameter",
    "Dense",
    "ReLU",
    "Flatten",
    "Conv1d",
    "ConvTranspose1d",
    "BatchNorm1d",
    "Sequential",
    "Loss",
    "MSELoss",
    "SumSquaredError",
    "Optimizer",
    "SGD",
    "Adam",
    "he_uniform",
    "xavier_uniform",
    "Trainer",
    "TrainingHistory",
    "output_variances",
    "prune_feature_unit",
    "save_model",
    "load_model",
]
