"""Model persistence.

Models are stored as a single ``.npz`` archive holding every parameter
and buffer plus a JSON architecture spec, so a trained WaveKey model
bundle can be shipped to any deployment (the paper stresses that the two
autoencoders are trained once and reused for arbitrary device pairs).
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.conv import Conv1d, ConvTranspose1d
from repro.nn.layers import Dense, Flatten, Layer, ReLU, Reshape
from repro.nn.norm import BatchNorm1d
from repro.nn.sequential import Sequential

_SPEC_KEY = "__architecture_spec__"


def save_model(model: Sequential, path: str) -> None:
    """Serialize ``model`` (architecture + weights) to ``path``."""
    arrays: Dict[str, np.ndarray] = dict(model.state_dict())
    if _SPEC_KEY in arrays:
        raise ConfigurationError(f"parameter name {_SPEC_KEY!r} is reserved")
    spec_json = json.dumps(model.spec())
    arrays[_SPEC_KEY] = np.frombuffer(
        spec_json.encode("utf-8"), dtype=np.uint8
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def build_from_spec(spec: Dict[str, object]) -> Layer:
    """Instantiate an untrained layer tree from an architecture spec."""
    kind = spec.get("type")
    name = spec.get("name", "layer")
    if kind == "Sequential":
        return Sequential(
            *[build_from_spec(s) for s in spec["layers"]], name=name
        )
    if kind == "Dense":
        return Dense(spec["in_features"], spec["out_features"], name=name)
    if kind == "ReLU":
        return ReLU(name=name)
    if kind == "Flatten":
        return Flatten(name=name)
    if kind == "Reshape":
        return Reshape(spec["target_shape"], name=name)
    if kind == "Conv1d":
        return Conv1d(
            spec["in_channels"],
            spec["out_channels"],
            spec["kernel_size"],
            stride=spec["stride"],
            padding=spec["padding"],
            name=name,
        )
    if kind == "ConvTranspose1d":
        return ConvTranspose1d(
            spec["in_channels"],
            spec["out_channels"],
            spec["kernel_size"],
            stride=spec["stride"],
            padding=spec["padding"],
            name=name,
        )
    if kind == "BatchNorm1d":
        return BatchNorm1d(
            spec["num_features"],
            momentum=spec["momentum"],
            eps=spec["eps"],
            affine=spec["affine"],
            name=name,
        )
    raise ConfigurationError(f"unknown layer type {kind!r} in spec")


def load_model(path: str) -> Sequential:
    """Load a model previously written by :func:`save_model`."""
    with np.load(path) as archive:
        if _SPEC_KEY not in archive:
            raise ShapeError(f"{path} is not a repro.nn model archive")
        spec_json = archive[_SPEC_KEY].tobytes().decode("utf-8")
        state = {k: archive[k] for k in archive.files if k != _SPEC_KEY}
    model = build_from_spec(json.loads(spec_json))
    if not isinstance(model, Sequential):
        raise ShapeError("top-level spec must be a Sequential")
    model.load_state_dict(state)
    return model
