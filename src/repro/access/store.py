"""Ticket key store: TTL expiry, revocation, LRU caps, persistence.

One :class:`KeyStore` per server process owns every resumption ticket
the server has granted.  A ticket is the pair ``(ticket_id,
resume_secret)`` plus lifecycle metadata; the store enforces:

* **TTL** — tickets die ``ttl_s`` seconds after issue; a resumption
  attempt after that raises :class:`TicketExpired`;
* **revocation** — :meth:`revoke` kills a ticket immediately and
  leaves a tombstone, so the id keeps answering
  :class:`TicketRevoked` (not ``unknown``) even after restart;
  tombstones are pruned by age once no ticket they could guard can
  still be live (older than the largest lifetime ever issued), so a
  revoke-heavy workload does not grow the snapshot forever;
* **replication hooks** — an optional :attr:`listener` observes every
  local mutation (:mod:`repro.replica` records them in its log), and
  :meth:`adopt` / :meth:`apply_remote_revoke` / :meth:`discard` apply
  entries replicated from peers without re-announcing them, enforcing
  the same ``revoked > expired > unknown`` precedence — a grant never
  resurrects a tombstoned id, whatever order entries arrive in;
* **LRU cap** — at most ``max_tickets`` live tickets; issuing past
  the cap evicts the least-recently-resumed ticket;
* **persistence** — every mutation lands in the
  :class:`~repro.access.journal.TicketJournal` (when one is attached)
  before the store's answer is visible, so a restarted server
  reconstructs exactly the live/revoked split.

All operations are thread-safe and O(1) amortized (``OrderedDict``
recency order).  The clock is injectable for tests.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.access.journal import TicketJournal
from repro.errors import (
    AccessError,
    TicketExpired,
    TicketRevoked,
    TicketUnknown,
)
from repro.obs.metrics import MetricsRegistry

#: Default ticket lifetime.
DEFAULT_TTL_S = 3600.0

#: Default live-ticket cap.
DEFAULT_MAX_TICKETS = 4096

#: Cap on remembered revocation tombstones (oldest dropped first).
MAX_TOMBSTONES = 65536


def new_ticket_id() -> str:
    """An unguessable ticket identifier (128-bit random, hex)."""
    return uuid.UUID(bytes=os.urandom(16)).hex


@dataclass(frozen=True)
class Ticket:
    """One granted resumption credential (server-side view)."""

    ticket_id: str
    resume_secret: bytes
    peer: str
    issued_at: float
    expires_at: float
    resumed: int = 0
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def lifetime_s(self) -> float:
        return self.expires_at - self.issued_at

    def to_state(self) -> Dict[str, object]:
        """JSON-serializable form for the journal/snapshot."""
        return {
            "ticket_id": self.ticket_id,
            "resume_secret": self.resume_secret.hex(),
            "peer": self.peer,
            "issued_at": self.issued_at,
            "expires_at": self.expires_at,
            "resumed": self.resumed,
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_state(state: Dict[str, object]) -> "Ticket":
        try:
            return Ticket(
                ticket_id=str(state["ticket_id"]),
                resume_secret=bytes.fromhex(str(state["resume_secret"])),
                peer=str(state["peer"]),
                issued_at=float(state["issued_at"]),
                expires_at=float(state["expires_at"]),
                resumed=int(state.get("resumed", 0)),
                metadata={
                    str(k): str(v)
                    for k, v in dict(state.get("metadata") or {}).items()
                },
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise AccessError(f"malformed ticket state: {exc}") from exc


class KeyStore:
    """Lifecycle authority for resumption tickets.

    ``journal`` is optional: without one the store is purely
    in-memory (tests, threaded demo server).  With one, attach via
    :meth:`recover` which both replays persisted state and opens the
    log for new appends.
    """

    def __init__(
        self,
        ttl_s: float = DEFAULT_TTL_S,
        max_tickets: int = DEFAULT_MAX_TICKETS,
        journal: Optional[TicketJournal] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
        tombstone_ttl_s: Optional[float] = None,
    ):
        if ttl_s <= 0:
            raise AccessError("ttl_s must be positive")
        if max_tickets < 1:
            raise AccessError("max_tickets must be >= 1")
        if tombstone_ttl_s is not None and tombstone_ttl_s <= 0:
            raise AccessError("tombstone_ttl_s must be positive")
        self.ttl_s = float(ttl_s)
        self.max_tickets = int(max_tickets)
        self.journal = journal
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        # Explicit tombstone retention; None derives it from the max
        # ticket lifetime ever issued (once that has elapsed, any
        # ticket a tombstone could shadow is expired anyway, so the
        # rejection merely degrades from "revoked" to "unknown").
        self.tombstone_ttl_s = (
            float(tombstone_ttl_s) if tombstone_ttl_s is not None else None
        )
        self._max_lifetime_s = self.ttl_s
        # Local-mutation observer (op, ticket_id, ticket-or-None);
        # attached by repro.replica to feed its replication log.
        # Remote applies (adopt/apply_remote_revoke/discard) do NOT
        # notify — replicated entries must not echo back as new ones.
        self.listener: Optional[
            Callable[[str, str, Optional[Ticket]], None]
        ] = None
        # recency order: oldest-resumed first (LRU eviction victim).
        self._tickets: "OrderedDict[str, Ticket]" = OrderedDict()
        # id -> revocation time; survives restart via the journal.
        self._revoked: "OrderedDict[str, float]" = OrderedDict()

    # -- metrics helpers ----------------------------------------------

    def _count(self, event: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "access.store.events", labels={"event": event}
            ).inc()

    def _update_gauges(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("access.store.live").set(len(self._tickets))
            self._metrics.gauge("access.store.tombstones").set(
                len(self._revoked)
            )

    def _notify(self, op: str, ticket_id: str, ticket: Optional[Ticket]) -> None:
        """Announce one *local* mutation to the attached listener.

        Replication must never be able to fail an issuance or a
        revocation — the listener only records the entry in an
        in-memory log, and any surprise it throws is swallowed here
        (and counted) rather than propagated to the caller.
        """
        listener = self.listener
        if listener is None:
            return
        try:
            listener(op, ticket_id, ticket)
        except Exception:  # noqa: BLE001 — replication is best-effort
            self._count("listener_error")

    # -- journal plumbing ---------------------------------------------

    def recover(self) -> int:
        """Replay the attached journal into memory; returns the number
        of live tickets recovered.  Must be called before any mutation
        when a journal is attached."""
        if self.journal is None:
            raise AccessError("no journal attached")
        snapshot, entries = self.journal.replay()
        with self._lock:
            self._tickets.clear()
            self._revoked.clear()
            if snapshot is not None:
                for state in snapshot.get("tickets", []):
                    ticket = Ticket.from_state(state)
                    self._tickets[ticket.ticket_id] = ticket
                for tid, when in snapshot.get("revoked", []):
                    self._revoked[str(tid)] = float(when)
            for entry in entries:
                self._apply(entry)
            self._update_gauges()
            live = len(self._tickets)
        self.journal.open()
        self._count("recover")
        return live

    def _apply(self, entry: Dict[str, object]) -> None:
        """Replay one journal entry (idempotent; lock held)."""
        op = entry.get("op")
        if op == "issue":
            ticket = Ticket.from_state(entry)
            self._tickets[ticket.ticket_id] = ticket
            self._tickets.move_to_end(ticket.ticket_id)
        elif op == "touch":
            tid = str(entry.get("ticket_id"))
            existing = self._tickets.get(tid)
            if existing is not None:
                self._tickets[tid] = replace(
                    existing, resumed=int(entry.get("resumed", 0))
                )
                self._tickets.move_to_end(tid)
        elif op == "revoke":
            tid = str(entry.get("ticket_id"))
            self._tickets.pop(tid, None)
            self._revoked[tid] = float(entry.get("at", 0.0))
            self._trim_tombstones()
        elif op in ("expire", "evict"):
            self._tickets.pop(str(entry.get("ticket_id")), None)

    def _journal_append(self, op: str, payload: Dict[str, object]) -> None:
        if self.journal is not None:
            self.journal.append(op, payload)

    def _state(self) -> Dict[str, object]:
        """Snapshot-able live state (lock held).

        Prunes aged tombstones first, so snapshot compaction is the
        moment a revoke-heavy workload's tombstones stop riding the
        snapshot forever.
        """
        self._trim_tombstones()
        return {
            "tickets": [t.to_state() for t in self._tickets.values()],
            "revoked": [[tid, when] for tid, when in self._revoked.items()],
        }

    def _maybe_compact(self) -> None:
        if self.journal is not None and self.journal.needs_compaction():
            with self._lock:
                state = self._state()
            self.journal.compact(state)
            self._count("compact")

    def _tombstone_retention_s(self) -> float:
        if self.tombstone_ttl_s is not None:
            return self.tombstone_ttl_s
        return self._max_lifetime_s

    def _trim_tombstones(self) -> None:
        """Bound the tombstone set by count *and* age (lock held).

        Age pruning drops tombstones older than the retention window:
        every ticket such a tombstone could still shadow has expired,
        so a resumption attempt degrades from ``revoked`` to the
        equally-fatal ``unknown``.  ``_revoked`` is insertion-ordered
        and revocation times are monotone, so pruning pops from the
        front.  Entries replayed from a journal carry a previous
        process's monotonic clock; those compare as "in the future"
        and are simply retained until the count cap claims them.
        """
        pruned = 0
        while len(self._revoked) > MAX_TOMBSTONES:
            self._revoked.popitem(last=False)
            pruned += 1
        horizon = self._clock() - self._tombstone_retention_s()
        while self._revoked:
            tid, when = next(iter(self._revoked.items()))
            if when > horizon:
                break
            del self._revoked[tid]
            pruned += 1
        if pruned and self._metrics is not None:
            self._metrics.counter("access.store.tombstones_pruned").inc(
                pruned
            )

    # -- lifecycle operations -----------------------------------------

    def issue(
        self,
        resume_secret: bytes,
        peer: str,
        ttl_s: Optional[float] = None,
        metadata: Optional[Dict[str, str]] = None,
    ) -> Ticket:
        """Grant a fresh ticket; evicts the LRU ticket past the cap."""
        lifetime = self.ttl_s if ttl_s is None else float(ttl_s)
        if lifetime <= 0:
            raise AccessError("ticket ttl must be positive")
        now = self._clock()
        ticket = Ticket(
            ticket_id=new_ticket_id(),
            resume_secret=bytes(resume_secret),
            peer=str(peer),
            issued_at=now,
            expires_at=now + lifetime,
            metadata=dict(metadata or {}),
        )
        evicted: List[str] = []
        with self._lock:
            self._tickets[ticket.ticket_id] = ticket
            if lifetime > self._max_lifetime_s:
                self._max_lifetime_s = lifetime
            while len(self._tickets) > self.max_tickets:
                victim, _ = self._tickets.popitem(last=False)
                evicted.append(victim)
            self._update_gauges()
        self._journal_append("issue", ticket.to_state())
        for victim in evicted:
            self._journal_append("evict", {"ticket_id": victim})
            self._count("evict")
        self._count("issue")
        self._notify("grant", ticket.ticket_id, ticket)
        self._maybe_compact()
        return ticket

    def resume(self, ticket_id: str) -> Ticket:
        """Look up a ticket for resumption, refreshing its recency.

        Raises the precise :class:`TicketError` subclass — revoked
        beats expired beats unknown — so the wire error is truthful.
        """
        now = self._clock()
        with self._lock:
            if ticket_id in self._revoked:
                self._count("resume_revoked")
                raise TicketRevoked(f"ticket {ticket_id} was revoked")
            ticket = self._tickets.get(ticket_id)
            if ticket is None:
                self._count("resume_unknown")
                raise TicketUnknown(f"no live ticket {ticket_id}")
            if now >= ticket.expires_at:
                del self._tickets[ticket_id]
                self._update_gauges()
                expired = True
            else:
                expired = False
                ticket = replace(ticket, resumed=ticket.resumed + 1)
                self._tickets[ticket_id] = ticket
                self._tickets.move_to_end(ticket_id)
        if expired:
            self._journal_append("expire", {"ticket_id": ticket_id})
            self._count("resume_expired")
            self._notify("expire", ticket_id, None)
            raise TicketExpired(f"ticket {ticket_id} expired")
        self._journal_append(
            "touch", {"ticket_id": ticket_id, "resumed": ticket.resumed}
        )
        self._count("resume")
        self._maybe_compact()
        return ticket

    def peek(self, ticket_id: str) -> Optional[Ticket]:
        """Non-mutating lookup (no recency refresh, no errors)."""
        with self._lock:
            return self._tickets.get(ticket_id)

    def revoke(self, ticket_id: str) -> bool:
        """Kill a ticket; returns ``True`` if it was live.

        Revoking an unknown/expired id still records the tombstone —
        a revocation must win any race with resumption.
        """
        was_live = self._revoke(ticket_id)
        self._notify("revoke", ticket_id, None)
        self._maybe_compact()
        return was_live

    def _revoke(self, ticket_id: str) -> bool:
        now = self._clock()
        with self._lock:
            was_live = self._tickets.pop(ticket_id, None) is not None
            self._revoked[ticket_id] = now
            self._trim_tombstones()
            self._update_gauges()
        self._journal_append("revoke", {"ticket_id": ticket_id, "at": now})
        self._count("revoke")
        return was_live

    def purge_expired(self) -> int:
        """Drop every ticket past its TTL; returns the count dropped."""
        now = self._clock()
        with self._lock:
            dead = [
                tid
                for tid, t in self._tickets.items()
                if now >= t.expires_at
            ]
            for tid in dead:
                del self._tickets[tid]
            self._update_gauges()
        for tid in dead:
            self._journal_append("expire", {"ticket_id": tid})
            self._count("expire")
            self._notify("expire", tid, None)
        if dead:
            self._maybe_compact()
        return len(dead)

    # -- replicated-entry application ---------------------------------

    def now(self) -> float:
        """The store's clock reading (injectable in tests) — used by
        :mod:`repro.replica` to compute a ticket's remaining life."""
        return self._clock()

    def adopt(self, ticket: Ticket) -> str:
        """Insert a ticket replicated from a peer; returns the outcome.

        Enforces ``revoked > expired > unknown`` precedence at the
        insertion boundary: a tombstoned id is never resurrected
        (``"revoked"``), a ticket past its expiry is not admitted
        (``"expired"``), and an id already live here is left alone
        (``"duplicate"`` — replays and re-deliveries are no-ops).
        Does NOT notify the listener: replicated entries already live
        in the log under their origin and must not echo as new ones.
        """
        evicted: List[str] = []
        with self._lock:
            if ticket.ticket_id in self._revoked:
                outcome = "revoked"
            elif self._clock() >= ticket.expires_at:
                outcome = "expired"
            elif ticket.ticket_id in self._tickets:
                outcome = "duplicate"
            else:
                outcome = "adopted"
                self._tickets[ticket.ticket_id] = ticket
                if ticket.lifetime_s > self._max_lifetime_s:
                    self._max_lifetime_s = ticket.lifetime_s
                while len(self._tickets) > self.max_tickets:
                    victim, _ = self._tickets.popitem(last=False)
                    evicted.append(victim)
                self._update_gauges()
        if outcome == "adopted":
            self._journal_append("issue", ticket.to_state())
            for victim in evicted:
                self._journal_append("evict", {"ticket_id": victim})
                self._count("evict")
            self._count("adopt")
            self._maybe_compact()
        return outcome

    def apply_remote_revoke(self, ticket_id: str) -> bool:
        """Apply a revocation replicated from a peer.

        Same semantics as :meth:`revoke` — the tombstone is recorded
        even for an id never seen here, so a revoke entry arriving
        before its grant still wins — but the listener is not
        notified (no echo).
        """
        was_live = self._revoke(ticket_id)
        self._count("adopt_revoke")
        self._maybe_compact()
        return was_live

    def discard(self, ticket_id: str) -> bool:
        """Drop a ticket replicated peers saw expire; no tombstone.

        Expiry is reproducible from ``expires_at`` on every replica,
        so this is an eager cleanup, not a safety mechanism; an
        unknown id is a no-op.  The listener is not notified.
        """
        with self._lock:
            was_live = self._tickets.pop(ticket_id, None) is not None
            if was_live:
                self._update_gauges()
        if was_live:
            self._journal_append("expire", {"ticket_id": ticket_id})
            self._count("adopt_expire")
            self._maybe_compact()
        return was_live

    # -- introspection ------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._tickets)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "live": len(self._tickets),
                "revoked": len(self._revoked),
                "max_tickets": self.max_tickets,
            }

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
