"""Secure-channel endpoints and the authenticated application ops.

:mod:`repro.access.records` supplies sealed records; this module puts
a request/response application protocol inside them — the "access the
RFID-protected system" action the WaveKey paper motivates — and
packages the two endpoint roles:

* :class:`ServerAccessChannel` — transport-agnostic: the event-loop
  server (:mod:`repro.net.server`) feeds it decoded
  :class:`RecordFrame` objects and writes back whatever frames it
  returns, so the same logic also serves the threaded baseline;
* :class:`ClientAccessChannel` — owns a blocking
  :class:`~repro.net.connection.FrameConnection`, performs the
  resume handshake (nonce exchange, server-auth tag check), and
  exposes :meth:`request` for round-trip ops.

Ops are JSON objects inside the encrypted payload (the record layer
already provides integrity; JSON keeps the op schema free to evolve
without touching the wire codec):

``{"op": "query", "target": ...}``  -> what would this key open?
``{"op": "open",  "target": ...}``  -> actuate (grant/deny decision)
``{"op": "ping"}``                  -> channel liveness
``{"op": "bye"}``                   -> orderly close
"""

from __future__ import annotations

import hmac as _hmac
import json
import os
import time
import uuid
from typing import Callable, Dict, List, Optional

from repro.access.records import (
    CLIENT,
    SERVER,
    ChannelKeys,
    RecordChannel,
    confirm_tag,
    derive_channel_keys,
)
from repro.access.store import Ticket
from repro.errors import AccessError, RecordRejected
from repro.net.codec import RecordFrame, ResumeAccept
from repro.net.connection import FrameConnection
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import get_default_tracer

#: Nonce length for the resume handshake.
NONCE_BYTES = 16

#: Ops the server-side dispatcher understands.
KNOWN_OPS = ("query", "open", "ping", "bye")


def new_nonce() -> bytes:
    return os.urandom(NONCE_BYTES)


def new_channel_id() -> str:
    return uuid.UUID(bytes=os.urandom(16)).hex


def encode_op(op: str, **fields: object) -> bytes:
    """One application op as a record plaintext."""
    return json.dumps(
        {"op": op, **fields}, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_payload(plaintext: bytes) -> Dict[str, object]:
    try:
        payload = json.loads(plaintext.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise AccessError(f"malformed channel payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise AccessError("channel payload must be a JSON object")
    return payload


#: Server-side op handler: (op payload, ticket) -> result fields.
OpHandler = Callable[[Dict[str, object], Ticket], Dict[str, object]]


def default_op_handler(
    payload: Dict[str, object], ticket: Ticket
) -> Dict[str, object]:
    """The reference RFID-backend behaviour.

    ``query`` answers which resource class the ticket's peer may
    reach; ``open`` actuates it.  Real deployments replace this with
    their authorization callback — the channel only guarantees the
    request arrived authenticated under the agreed key.
    """
    op = payload.get("op")
    target = str(payload.get("target", "door"))
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "query":
        return {
            "ok": True,
            "peer": ticket.peer,
            "target": target,
            "allowed": True,
            "resumed": ticket.resumed,
        }
    if op == "open":
        return {
            "ok": True,
            "peer": ticket.peer,
            "target": target,
            "opened": True,
            "at": time.time(),
        }
    return {"ok": False, "error": f"unknown op {op!r}"}


class ServerAccessChannel:
    """Server half of one resumed secure channel.

    Construct via :meth:`accept`, which derives the channel keys from
    the ticket's resumption secret and the two nonces and produces
    the :class:`ResumeAccept` to send.  Afterwards, feed every
    inbound :class:`RecordFrame` to :meth:`handle_record`; it returns
    the sealed response record, or ``None`` when the client said
    ``bye`` (check :attr:`finished` and close the connection).
    """

    def __init__(
        self,
        channel_id: str,
        ticket: Ticket,
        records: RecordChannel,
        handler: OpHandler = default_op_handler,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.channel_id = channel_id
        self.ticket = ticket
        self.records = records
        self.handler = handler
        self.metrics = metrics
        self.finished = False
        self.ops_served = 0
        #: distributed-trace parent (a TraceContext) and tracer, set by
        #: the front end after a resume carrying wire trace context;
        #: ``access.op`` spans nest under the parent so the resumed
        #: channel's work lands in the client's stitched trace.
        self.trace_parent = None
        self.tracer = None

    @classmethod
    def accept(
        cls,
        ticket: Ticket,
        client_nonce: bytes,
        handler: OpHandler = default_op_handler,
        metrics: Optional[MetricsRegistry] = None,
        sender: str = "server",
    ) -> "tuple[ServerAccessChannel, ResumeAccept]":
        """Open the server half and build the handshake reply."""
        server_nonce = new_nonce()
        channel_id = new_channel_id()
        keys = derive_channel_keys(
            ticket.resume_secret, client_nonce, server_nonce
        )
        accept_frame = ResumeAccept(
            sender=sender,
            channel_id=channel_id,
            server_nonce=server_nonce,
            tag=confirm_tag(keys, channel_id, client_nonce, server_nonce),
        )
        channel = cls(
            channel_id=channel_id,
            ticket=ticket,
            records=RecordChannel(keys, SERVER),
            handler=handler,
            metrics=metrics,
        )
        return channel, accept_frame

    def _count(self, op: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "access.ops", labels={"op": op, "role": "server"}
            ).inc()

    def handle_record(self, record: RecordFrame) -> Optional[RecordFrame]:
        """Open one request record, dispatch, seal the response.

        :class:`RecordRejected` propagates to the caller (which should
        surface a typed wire error and drop the connection — the
        channel is poisoned).
        """
        tracer = self.tracer if self.tracer is not None else (
            get_default_tracer()
        )
        plaintext = self.records.open_record(record)
        payload = decode_payload(plaintext)
        op = str(payload.get("op", ""))
        self._count(op if op in KNOWN_OPS else "unknown")
        if op == "bye":
            self.finished = True
            return None
        if self.trace_parent is not None:
            op_span = tracer.span(
                "access.op", parent=self.trace_parent,
                op=op, channel=self.channel_id,
            )
        else:  # no wire context: inherit the thread's active span
            op_span = tracer.span(
                "access.op", op=op, channel=self.channel_id
            )
        with op_span:
            result = self.handler(payload, self.ticket)
        self.ops_served += 1
        return self.records.seal(
            json.dumps(result, separators=(",", ":"), sort_keys=True).encode(
                "utf-8"
            )
        )


class ClientAccessChannel:
    """Client half: resume handshake plus blocking request/response.

    Built by :meth:`WaveKeyNetClient.open_channel`; use as a context
    manager so ``bye`` and the socket close are never skipped."""

    def __init__(
        self,
        conn: FrameConnection,
        records: RecordChannel,
        channel_id: str,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.conn = conn
        self.records = records
        self.channel_id = channel_id
        self.metrics = metrics
        self._closed = False

    @staticmethod
    def complete_handshake(
        resume_secret: bytes,
        client_nonce: bytes,
        accept_frame: ResumeAccept,
    ) -> "tuple[ChannelKeys, RecordChannel]":
        """Verify the server-auth tag and derive this side's keys.

        Raises :class:`AccessError` when the tag does not verify —
        the peer does not hold the ticket's resumption secret.
        """
        keys = derive_channel_keys(
            resume_secret, client_nonce, accept_frame.server_nonce
        )
        expected = confirm_tag(
            keys,
            accept_frame.channel_id,
            client_nonce,
            accept_frame.server_nonce,
        )
        if not _hmac.compare_digest(expected, accept_frame.tag):
            raise AccessError(
                "resume accept tag mismatch: server does not hold the "
                "ticket secret"
            )
        return keys, RecordChannel(keys, CLIENT)

    def _count(self, op: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "access.ops", labels={"op": op, "role": "client"}
            ).inc()

    def request(
        self, op: str, timeout_s: float = 5.0, **fields: object
    ) -> Dict[str, object]:
        """Send one op and block for its response payload."""
        if self._closed:
            raise AccessError("channel is closed")
        self._count(op)
        self.conn.send(self.records.seal(encode_op(op, **fields)))
        reply = self.conn.recv(timeout_s=timeout_s)
        if not isinstance(reply, RecordFrame):
            raise AccessError(
                f"expected a record, got {type(reply).__name__}: {reply!r}"
            )
        return decode_payload(self.records.open_record(reply))

    def close(self) -> None:
        """Send ``bye`` (best effort) and close the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            if not self.records.poisoned and not self.conn.closed:
                self.conn.send(self.records.seal(encode_op("bye")))
        except (AccessError, RecordRejected, OSError):
            pass
        finally:
            self.conn.close()

    def __enter__(self) -> "ClientAccessChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
