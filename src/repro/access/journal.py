"""Crash-recoverable ticket journal with snapshot compaction.

The :class:`~repro.access.store.KeyStore` must survive a server
restart: live tickets keep resuming, revoked tickets stay dead.  The
persistence model is the classic append-only log + snapshot pair:

* every mutation (``issue`` / ``revoke`` / ``expire`` / ``evict``) is
  appended to ``<path>`` as one JSON line and flushed, so the journal
  is consistent up to the last whole line even if the process dies
  mid-write;
* replay tolerates a truncated trailing line (the tell-tale of a
  crash during append) by discarding it;
* when the log grows past ``compact_after`` entries, the store writes
  its live state to ``<path>.snapshot`` via a temp file and
  :func:`os.replace` (atomic on POSIX), then truncates the log.
  Recovery loads the snapshot first and replays the log on top.

Secrets in the journal are hex-encoded resumption secrets — the
agreed key itself is never persisted (it is discarded at grant time,
see :func:`repro.access.records.derive_resume_secret`).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import AccessError

#: Journal format version stamped on every line and snapshot.
JOURNAL_VERSION = 1

#: Mutation kinds a journal line may carry.
OPS = ("issue", "revoke", "expire", "evict", "touch")


class JournalCorrupt(AccessError):
    """A journal line or snapshot is structurally invalid.

    Only raised for damage *before* the final line — a truncated tail
    is expected crash residue and silently dropped.
    """


class TicketJournal:
    """Append-only mutation log for one :class:`KeyStore`.

    Thread-safe: appends take an internal lock so interleaved server
    threads cannot shear lines.  The journal never interprets the
    entries it stores — replay semantics live in the store.
    """

    def __init__(self, path: str, compact_after: int = 4096):
        if compact_after < 16:
            raise AccessError("compact_after must be >= 16")
        self.path = str(path)
        self.snapshot_path = self.path + ".snapshot"
        self.compact_after = int(compact_after)
        self._lock = threading.Lock()
        self._fh = None
        self._line_count = 0

    # -- appending -----------------------------------------------------

    def open(self) -> None:
        """Open (creating if needed) the log for appending."""
        with self._lock:
            if self._fh is None:
                directory = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(directory, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
                self._line_count = self._count_lines()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def _count_lines(self) -> int:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                return sum(1 for _ in fh)
        except FileNotFoundError:
            return 0

    def append(self, op: str, payload: Dict[str, object]) -> None:
        """Write one mutation line and flush it to the OS.

        ``payload`` must be JSON-serializable; the journal adds the
        ``v`` (format version) and ``op`` envelope fields.
        """
        if op not in OPS:
            raise AccessError(f"unknown journal op {op!r}")
        line = json.dumps(
            {"v": JOURNAL_VERSION, "op": op, **payload},
            separators=(",", ":"),
            sort_keys=True,
        )
        with self._lock:
            if self._fh is None:
                raise AccessError("journal is not open")
            self._fh.write(line + "\n")
            self._fh.flush()
            self._line_count += 1

    @property
    def pending_lines(self) -> int:
        """Log lines since the last compaction (compaction trigger)."""
        with self._lock:
            return self._line_count

    def needs_compaction(self) -> bool:
        return self.pending_lines >= self.compact_after

    # -- recovery ------------------------------------------------------

    def replay(self) -> Tuple[Optional[Dict[str, object]], List[Dict[str, object]]]:
        """Load persisted state: ``(snapshot_or_None, log_entries)``.

        The caller applies the snapshot first, then each log entry in
        order.  A truncated final log line is discarded; damage
        anywhere else raises :class:`JournalCorrupt`.
        """
        snapshot = self._load_snapshot()
        entries = list(self._iter_log())
        return snapshot, entries

    def _load_snapshot(self) -> Optional[Dict[str, object]]:
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        try:
            snap = json.loads(raw)
        except ValueError as exc:
            raise JournalCorrupt(
                f"snapshot {self.snapshot_path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(snap, dict) or snap.get("v") != JOURNAL_VERSION:
            raise JournalCorrupt(
                f"snapshot {self.snapshot_path} has unsupported version"
            )
        return snap

    def _iter_log(self) -> Iterator[Dict[str, object]]:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except ValueError as exc:
                if index == len(lines) - 1:
                    # Torn tail from a crash mid-append: drop it.
                    return
                raise JournalCorrupt(
                    f"journal {self.path} line {index + 1} is not valid "
                    f"JSON: {exc}"
                ) from exc
            if not isinstance(entry, dict) or entry.get("op") not in OPS:
                raise JournalCorrupt(
                    f"journal {self.path} line {index + 1} has no valid op"
                )
            yield entry

    # -- compaction ----------------------------------------------------

    def compact(self, state: Dict[str, object]) -> None:
        """Atomically persist ``state`` as the snapshot, then truncate
        the log.

        Crash-safe ordering: the temp snapshot is fully written and
        fsynced before :func:`os.replace` installs it; only then is the
        log truncated.  A crash between the two steps merely replays
        log entries already captured by the snapshot — replay is
        idempotent in the store.
        """
        payload = json.dumps(
            {"v": JOURNAL_VERSION, **state},
            separators=(",", ":"),
            sort_keys=True,
        )
        with self._lock:
            tmp = self.snapshot_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
            if self._fh is not None:
                self._fh.close()
            self._fh = open(self.path, "w", encoding="utf-8")
            self._line_count = 0
