"""AEAD-style record layer keyed from the WaveKey-agreed key.

The agreement (:mod:`repro.protocol.agreement`) hands both endpoints
the same ``l_k``-bit key; this module turns it into a secure channel:

* **key schedule** — every working key is expanded from the agreed key
  with :func:`repro.crypto.hashes.hkdf_stream` under a *distinct,
  fixed-length domain-separation context* (``wavekey-access/...``), so
  no two purposes ever share keystream.  The resumption secret is the
  only long-lived derivative; per-connection channel keys are
  freshened with both sides' nonces, so records from one resumption of
  a ticket can never replay into another;
* **records** — encrypt-then-MAC: the plaintext is XOR-encrypted
  under a per-record keystream (the direction's encryption key, with
  the 8-byte record sequence number as the HKDF context), then tagged
  with HMAC-SHA256 over ``seq || ciphertext`` under the direction's
  MAC key.  Per-direction keys make reflected records unverifiable;
* **strict sequencing** — each direction carries an explicit ``u64``
  counter.  A receiver accepts *only* the exact next sequence number:
  replays, reorders, and gaps all raise :class:`RecordRejected` and
  poison the channel (no resync — the peer reconnects and resumes).

Contexts are fixed-length ASCII and the per-record context is a
fixed 8-byte big-endian counter, so the ``key || context || counter``
preimages of :func:`hkdf_stream` are prefix-free across purposes —
``tests/access/test_records.py`` pins the non-collision property.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.hashes import hkdf_stream, hmac_digest, hmac_verify
from repro.errors import AccessError, ConfigurationError, RecordRejected
from repro.net.codec import RecordFrame

#: Bytes per derived working key.
KEY_BYTES = 32

#: Hard bound on one record's plaintext (fits DEFAULT_MAX_FRAME_BYTES
#: with headroom for the record header and tag).
MAX_RECORD_PLAINTEXT = (1 << 20) - 64

# Domain-separation contexts.  All fixed-length (16 bytes) so the
# hkdf preimages key || context || counter can never collide across
# purposes by length-extension ambiguity.
CTX_RESUME_SECRET = b"wk-access/resume"
CTX_REVOKE_KEY = b"wk-access/revoke"
CTX_CONFIRM_KEY = b"wk-access/confrm"
CTX_ENC_C2S = b"wk-access/enc-cs"
CTX_ENC_S2C = b"wk-access/enc-sc"
CTX_MAC_C2S = b"wk-access/mac-cs"
CTX_MAC_S2C = b"wk-access/mac-sc"

_ALL_CONTEXTS = (
    CTX_RESUME_SECRET, CTX_REVOKE_KEY, CTX_CONFIRM_KEY,
    CTX_ENC_C2S, CTX_ENC_S2C, CTX_MAC_C2S, CTX_MAC_S2C,
)
assert len({len(c) for c in _ALL_CONTEXTS}) == 1, "contexts must be fixed-length"
assert len(set(_ALL_CONTEXTS)) == len(_ALL_CONTEXTS), "contexts must be distinct"

#: Client -> server direction label.
CLIENT = "client"
#: Server -> client direction label.
SERVER = "server"


def _require_key(key: bytes, what: str) -> bytes:
    key = bytes(key)
    if len(key) < 16:
        raise ConfigurationError(f"{what} must be at least 16 bytes")
    return key


def derive_resume_secret(agreed_key: bytes) -> bytes:
    """The ticket's long-lived resumption secret.

    Both endpoints derive it from the agreed key at grant time; the
    secret itself never travels.  Everything else in the schedule
    hangs off this value, so the agreed key can be discarded once the
    ticket is stored.
    """
    return hkdf_stream(
        _require_key(agreed_key, "agreed key"), KEY_BYTES, CTX_RESUME_SECRET
    )


def derive_revocation_key(resume_secret: bytes) -> bytes:
    """Key authenticating out-of-channel :class:`RevokeNotice` frames."""
    return hkdf_stream(
        _require_key(resume_secret, "resume secret"),
        KEY_BYTES,
        CTX_REVOKE_KEY,
    )


def revocation_tag(resume_secret: bytes, ticket_id: str) -> bytes:
    """The HMAC a :class:`RevokeNotice` must carry for ``ticket_id``."""
    return hmac_digest(
        derive_revocation_key(resume_secret),
        b"revoke|" + ticket_id.encode("utf-8"),
    )


def verify_revocation_tag(
    resume_secret: bytes, ticket_id: str, tag: bytes
) -> bool:
    return hmac_verify(
        derive_revocation_key(resume_secret),
        b"revoke|" + ticket_id.encode("utf-8"),
        tag,
    )


@dataclass(frozen=True)
class ChannelKeys:
    """The four working keys of one resumed channel plus the confirm
    key authenticating the :class:`ResumeAccept` handshake."""

    enc_c2s: bytes
    enc_s2c: bytes
    mac_c2s: bytes
    mac_s2c: bytes
    confirm: bytes


def derive_channel_keys(
    resume_secret: bytes, client_nonce: bytes, server_nonce: bytes
) -> ChannelKeys:
    """Freshen per-connection keys from the resumption secret.

    The channel secret binds both nonces through HMAC (fixed-size
    digest inputs, so no concatenation ambiguity), then each working
    key gets its own domain-separated expansion.
    """
    if len(client_nonce) < 8 or len(server_nonce) < 8:
        raise ConfigurationError("channel nonces must be >= 8 bytes")
    secret = hmac_digest(
        _require_key(resume_secret, "resume secret"),
        struct.pack("!H", len(client_nonce)) + client_nonce + server_nonce,
    )
    return ChannelKeys(
        enc_c2s=hkdf_stream(secret, KEY_BYTES, CTX_ENC_C2S),
        enc_s2c=hkdf_stream(secret, KEY_BYTES, CTX_ENC_S2C),
        mac_c2s=hkdf_stream(secret, KEY_BYTES, CTX_MAC_C2S),
        mac_s2c=hkdf_stream(secret, KEY_BYTES, CTX_MAC_S2C),
        confirm=hkdf_stream(secret, KEY_BYTES, CTX_CONFIRM_KEY),
    )


def confirm_tag(
    keys: ChannelKeys,
    channel_id: str,
    client_nonce: bytes,
    server_nonce: bytes,
) -> bytes:
    """The :class:`ResumeAccept` tag: proves the server derived the
    same channel keys (i.e. holds the ticket's resumption secret)."""
    message = b"|".join((
        b"resume-accept",
        channel_id.encode("utf-8"),
        client_nonce.hex().encode("ascii"),
        server_nonce.hex().encode("ascii"),
    ))
    return hmac_digest(keys.confirm, message)


class RecordChannel:
    """One endpoint's sealed-record view of a resumed channel.

    ``role`` is :data:`CLIENT` or :data:`SERVER`; it fixes which
    direction this endpoint seals (sends) and which it opens
    (receives).  Sequence numbers are strict: :meth:`seal` stamps the
    next send counter, :meth:`open_record` accepts only the exact next
    receive counter and raises :class:`RecordRejected` — marking the
    channel :attr:`poisoned` — on any replay, reorder, gap, or forgery.
    """

    __slots__ = (
        "role", "poisoned", "_enc_send", "_mac_send", "_enc_recv",
        "_mac_recv", "_send_seq", "_recv_seq",
    )

    def __init__(self, keys: ChannelKeys, role: str):
        if role == CLIENT:
            self._enc_send, self._mac_send = keys.enc_c2s, keys.mac_c2s
            self._enc_recv, self._mac_recv = keys.enc_s2c, keys.mac_s2c
        elif role == SERVER:
            self._enc_send, self._mac_send = keys.enc_s2c, keys.mac_s2c
            self._enc_recv, self._mac_recv = keys.enc_c2s, keys.mac_c2s
        else:
            raise ConfigurationError(f"unknown channel role {role!r}")
        self.role = role
        self.poisoned = False
        self._send_seq = 0
        self._recv_seq = 0

    @property
    def send_seq(self) -> int:
        """Next sequence number :meth:`seal` will stamp."""
        return self._send_seq

    @property
    def recv_seq(self) -> int:
        """Next sequence number :meth:`open_record` will accept."""
        return self._recv_seq

    def _keystream(self, enc_key: bytes, seq: int, n: int) -> bytes:
        # The 8-byte seq is the HKDF context; hkdf_stream appends its
        # own 4-byte block counter, so (seq, block) pairs are unique
        # and fixed-length -> no keystream reuse across records.
        return hkdf_stream(enc_key, n, struct.pack("!Q", seq))

    def seal(self, plaintext: bytes) -> RecordFrame:
        """Encrypt-then-MAC one record and advance the send counter."""
        if self.poisoned:
            raise AccessError("channel poisoned: no further records")
        plaintext = bytes(plaintext)
        if len(plaintext) > MAX_RECORD_PLAINTEXT:
            raise AccessError(
                f"record plaintext of {len(plaintext)} bytes exceeds the "
                f"{MAX_RECORD_PLAINTEXT}-byte bound"
            )
        seq = self._send_seq
        stream = self._keystream(self._enc_send, seq, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
        tag = hmac_digest(
            self._mac_send, struct.pack("!Q", seq) + ciphertext
        )
        self._send_seq += 1
        return RecordFrame(seq=seq, ciphertext=ciphertext, tag=tag)

    def open_record(self, record: RecordFrame) -> bytes:
        """Verify, sequence-check, and decrypt one received record."""
        if self.poisoned:
            raise AccessError("channel poisoned: no further records")
        if not hmac_verify(
            self._mac_recv,
            struct.pack("!Q", record.seq) + record.ciphertext,
            record.tag,
        ):
            self.poisoned = True
            raise RecordRejected(
                f"record {record.seq}: authentication failed"
            )
        # MAC first, sequence second: an attacker must hold the key
        # even to probe the counter state.
        if record.seq != self._recv_seq:
            self.poisoned = True
            kind = "replayed" if record.seq < self._recv_seq else "gapped"
            raise RecordRejected(
                f"record {kind}: got seq {record.seq}, expected "
                f"{self._recv_seq}"
            )
        stream = self._keystream(
            self._enc_recv, record.seq, len(record.ciphertext)
        )
        self._recv_seq += 1
        return bytes(a ^ b for a, b in zip(record.ciphertext, stream))
