"""Post-agreement secure access layer.

Everything that happens *after* WaveKey agreement succeeds: turning
the agreed key into an AEAD-style record channel
(:mod:`~repro.access.records`), granting/expiring/revoking resumption
tickets (:mod:`~repro.access.store`) with crash-safe persistence
(:mod:`~repro.access.journal`), and running authenticated application
ops over the channel (:mod:`~repro.access.channel`).

The wire messages live in :mod:`repro.net.codec` (``TicketGrant``,
``ResumeRequest``, ``ResumeAccept``, ``RecordFrame``,
``RevokeNotice``); the server/client/gateway integration lives in
:mod:`repro.net` and :mod:`repro.cluster`.
"""

from repro.access.channel import (
    ClientAccessChannel,
    ServerAccessChannel,
    default_op_handler,
    decode_payload,
    encode_op,
    new_nonce,
)
from repro.access.journal import JournalCorrupt, TicketJournal
from repro.access.records import (
    ChannelKeys,
    RecordChannel,
    confirm_tag,
    derive_channel_keys,
    derive_resume_secret,
    derive_revocation_key,
    revocation_tag,
    verify_revocation_tag,
)
from repro.access.store import KeyStore, Ticket, new_ticket_id

__all__ = [
    "ChannelKeys",
    "ClientAccessChannel",
    "JournalCorrupt",
    "KeyStore",
    "RecordChannel",
    "ServerAccessChannel",
    "Ticket",
    "TicketJournal",
    "confirm_tag",
    "decode_payload",
    "default_op_handler",
    "derive_channel_keys",
    "derive_resume_secret",
    "derive_revocation_key",
    "encode_op",
    "new_nonce",
    "new_ticket_id",
    "revocation_tag",
    "verify_revocation_tag",
]
