"""Rigid-body rotation utilities.

Conventions: a rotation matrix ``R`` maps *body-frame* vectors to
*world-frame* vectors (``v_world = R @ v_body``).  Rotation vectors use
the axis-angle exponential map.  These are the same conventions the IMU
calibration pipeline (paper SIV-B.2) relies on: the accelerometer and
magnetometer observe world-fixed reference vectors in the body frame, and
gyroscope integration advances ``R`` with body-frame angular velocity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def skew(v: np.ndarray) -> np.ndarray:
    """The 3x3 skew-symmetric (cross-product) matrix of a 3-vector."""
    v = np.asarray(v, dtype=np.float64)
    if v.shape != (3,):
        raise ShapeError(f"skew expects a 3-vector, got shape {v.shape}")
    return np.array(
        [
            [0.0, -v[2], v[1]],
            [v[2], 0.0, -v[0]],
            [-v[1], v[0], 0.0],
        ]
    )


def rotation_from_rotvec(rotvec: np.ndarray) -> np.ndarray:
    """Exponential map: rotation vector -> rotation matrix (Rodrigues)."""
    rotvec = np.asarray(rotvec, dtype=np.float64)
    if rotvec.shape != (3,):
        raise ShapeError(
            f"rotation_from_rotvec expects a 3-vector, got {rotvec.shape}"
        )
    angle = float(np.linalg.norm(rotvec))
    if angle < 1e-12:
        return np.eye(3) + skew(rotvec)
    axis = rotvec / angle
    k = skew(axis)
    return np.eye(3) + np.sin(angle) * k + (1.0 - np.cos(angle)) * (k @ k)


def rotvec_from_rotation(rotation: np.ndarray) -> np.ndarray:
    """Logarithm map: rotation matrix -> rotation vector."""
    r = np.asarray(rotation, dtype=np.float64)
    if r.shape != (3, 3):
        raise ShapeError(f"expected a 3x3 matrix, got {r.shape}")
    cos_angle = np.clip((np.trace(r) - 1.0) / 2.0, -1.0, 1.0)
    angle = float(np.arccos(cos_angle))
    if angle < 1e-8:
        # First-order: R ~ I + [w]x.
        return np.array(
            [r[2, 1] - r[1, 2], r[0, 2] - r[2, 0], r[1, 0] - r[0, 1]]
        ) / 2.0
    if np.pi - angle < 1e-6:
        # Near pi: extract the axis from the symmetric part.
        m = (r + np.eye(3)) / 2.0
        axis = np.sqrt(np.clip(np.diag(m), 0.0, None))
        # Fix signs using off-diagonal elements.
        if axis[0] > 0:
            axis[1] = np.copysign(axis[1], m[0, 1])
            axis[2] = np.copysign(axis[2], m[0, 2])
        elif axis[1] > 0:
            axis[2] = np.copysign(axis[2], m[1, 2])
        norm = np.linalg.norm(axis)
        if norm < 1e-12:
            raise ShapeError("degenerate rotation near pi")
        return angle * axis / norm
    axis = np.array(
        [r[2, 1] - r[1, 2], r[0, 2] - r[2, 0], r[1, 0] - r[0, 1]]
    ) / (2.0 * np.sin(angle))
    return angle * axis


def integrate_angular_velocity(
    rotation: np.ndarray, omega_body: np.ndarray, dt: float
) -> np.ndarray:
    """Advance a body->world rotation by ``omega_body`` over ``dt`` seconds.

    Uses the exact exponential update ``R <- R @ exp([w dt]x)``, which is
    what the mobile device's pose-tracking loop applies to each gyroscope
    sample (paper SIV-B.2).
    """
    return rotation @ rotation_from_rotvec(
        np.asarray(omega_body, dtype=np.float64) * float(dt)
    )


def triad(
    v1_body: np.ndarray,
    v2_body: np.ndarray,
    v1_world: np.ndarray,
    v2_world: np.ndarray,
) -> np.ndarray:
    """TRIAD attitude determination.

    Given two non-collinear reference directions observed in the body
    frame (``v1_body``, ``v2_body`` — in practice gravity from the
    accelerometer and magnetic north from the magnetometer) and their
    known world-frame directions, return the body->world rotation.  This
    is how the paper obtains the *initial* pose at the start of the
    gesture (SIV-B.2).
    """

    def _frame(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        t1 = a / np.linalg.norm(a)
        cross = np.cross(a, b)
        norm = np.linalg.norm(cross)
        if norm < 1e-12:
            raise ShapeError("TRIAD reference vectors are collinear")
        t2 = cross / norm
        t3 = np.cross(t1, t2)
        return np.column_stack([t1, t2, t3])

    body = _frame(v1_body, v2_body)
    world = _frame(v1_world, v2_world)
    return world @ body.T
