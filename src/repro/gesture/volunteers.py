"""Volunteer gesture-style profiles and gesture sampling.

The paper's dataset is produced by six graduate-student volunteers
(SIV-E.1, SVI-A).  Each person waves differently — preferred tempo,
amplitude, dominant axes, tremor intensity — and those differences matter
for the mimicry attack (the imitator's own style leaks into the copied
gesture).  :class:`VolunteerProfile` captures the style statistics;
:func:`sample_gesture` draws a fresh random gesture from a profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.gesture.trajectory import GestureTrajectory
from repro.utils.rng import child_rng, ensure_rng


@dataclass(frozen=True)
class VolunteerProfile:
    """Per-volunteer gesture style statistics.

    Attributes
    ----------
    name:
        Identifier used in experiment reports.
    freq_band_hz:
        The volunteer's preferred motion band; component frequencies are
        drawn log-uniformly from it.
    amplitude_m:
        Typical dominant-component amplitude (metres).
    axis_bias:
        Relative motion energy in x/y/z (people rarely wave isotropically).
    n_components:
        Number of sinusoid components per gesture.
    rotation_amplitude_rad:
        Scale of the wrist-rotation process.
    tremor_amplitude_m:
        Physiological tremor amplitude.
    """

    name: str
    freq_band_hz: Tuple[float, float] = (0.5, 4.0)
    amplitude_m: float = 0.12
    axis_bias: Tuple[float, float, float] = (1.0, 1.0, 0.6)
    n_components: int = 6
    rotation_amplitude_rad: float = 0.35
    tremor_amplitude_m: float = 2e-4

    def __post_init__(self):
        low, high = self.freq_band_hz
        if not (0 < low < high):
            raise ConfigurationError(
                f"freq_band_hz must satisfy 0 < low < high, got "
                f"{self.freq_band_hz}"
            )
        if self.n_components < 1:
            raise ConfigurationError("n_components must be >= 1")
        if self.amplitude_m <= 0:
            raise ConfigurationError("amplitude_m must be > 0")


def default_volunteers() -> List[VolunteerProfile]:
    """Six volunteer profiles mirroring the paper's six participants."""
    return [
        VolunteerProfile(
            "volunteer-1", (0.5, 3.0), 0.14, (1.0, 0.9, 0.5), 6, 0.35
        ),
        VolunteerProfile(
            "volunteer-2", (0.8, 4.5), 0.10, (0.7, 1.0, 0.8), 7, 0.45
        ),
        VolunteerProfile(
            "volunteer-3", (0.4, 2.5), 0.18, (1.0, 0.6, 0.7), 5, 0.30
        ),
        VolunteerProfile(
            "volunteer-4", (0.6, 5.0), 0.09, (0.8, 0.8, 1.0), 8, 0.50
        ),
        VolunteerProfile(
            "volunteer-5", (0.5, 3.5), 0.12, (1.0, 1.0, 0.6), 6, 0.40
        ),
        VolunteerProfile(
            "volunteer-6", (0.7, 4.0), 0.15, (0.6, 1.0, 0.9), 6, 0.35
        ),
    ]


def sample_gesture(
    profile: VolunteerProfile,
    rng=None,
    active_s: float = 2.5,
    pause_s: float = 0.8,
) -> GestureTrajectory:
    """Draw one random gesture from ``profile``.

    Component amplitudes fall off with frequency (roughly 1/f, matching
    observed limb-motion spectra), are modulated by the profile's axis
    bias, and every amplitude/frequency/phase is drawn fresh — this is the
    per-gesture randomness WaveKey harvests for the key.
    """
    rng = ensure_rng(rng)
    k = profile.n_components
    low, high = profile.freq_band_hz
    freqs = np.exp(rng.uniform(np.log(low), np.log(high), size=k))
    freqs.sort()
    # 1/f amplitude falloff, normalized to the profile's scale, with
    # per-component lognormal variation so no two gestures share spectra.
    base = profile.amplitude_m * (freqs[0] / freqs)
    jitter = rng.lognormal(mean=0.0, sigma=0.35, size=(k, 3))
    axis = np.asarray(profile.axis_bias, float)
    amps = base[:, None] * jitter * axis[None, :]
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(k, 3))

    rot_k = max(2, k // 2)
    rot_freqs = np.exp(rng.uniform(np.log(low), np.log(high), size=rot_k))
    rot_base = profile.rotation_amplitude_rad * (rot_freqs[0] / rot_freqs)
    rot_amps = rot_base[:, None] * rng.lognormal(0.0, 0.3, size=(rot_k, 3))
    rot_phases = rng.uniform(0.0, 2.0 * np.pi, size=(rot_k, 3))

    return GestureTrajectory(
        position_amplitudes=amps,
        position_frequencies=freqs,
        position_phases=phases,
        rotation_amplitudes=rot_amps,
        rotation_frequencies=rot_freqs,
        rotation_phases=rot_phases,
        pause_s=pause_s,
        active_s=active_s,
        tremor_amplitude_m=profile.tremor_amplitude_m,
        tremor_phases=tuple(rng.uniform(0.0, 2.0 * np.pi, size=3)),
    )
