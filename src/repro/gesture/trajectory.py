"""Continuous-time gesture trajectories.

A gesture is modelled as a band-limited random process: a sum of
sinusoid components per axis whose frequencies live in the human arm-motion
band (~0.4-5 Hz), gated by a smooth envelope that is zero during the
initial *pause* the paper requires for clock synchronization (SIV-B.1)
and ramps up when the wave begins.  A small physiological tremor rides on
top throughout so the pre-gesture data is quiet but not degenerate.

Device orientation is a second band-limited rotation-vector process.
Body-frame angular velocity is derived from the orientation by exact
finite differencing of the rotation (``[w]x = R^T dR/dt``), so gyroscope
samples are kinematically consistent with the poses the calibration
pipeline reconstructs.

Everything is evaluated lazily at arbitrary time arrays: the IMU samples
at ~100 Hz, the RFID reader at 200 Hz, a camera attack at its own frame
rate — all from one trajectory object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.gesture.kinematics import rotation_from_rotvec
from repro.utils.validation import check_positive

_FD_STEP = 1e-4  # central-difference step for velocity/acceleration


@dataclass(frozen=True)
class SinusoidComponent:
    """One sinusoid of a trajectory axis: ``amp * sin(2 pi f t + phase)``."""

    amplitude: float
    frequency_hz: float
    phase: float


def _smoothstep(x: np.ndarray) -> np.ndarray:
    """C1 smooth ramp 0->1 on [0, 1] (quintic smootherstep)."""
    x = np.clip(x, 0.0, 1.0)
    return x * x * x * (x * (6.0 * x - 15.0) + 10.0)


class GestureTrajectory:
    """A random hand gesture: rigid-body motion of the held device+tag.

    Parameters
    ----------
    position_components:
        Array of shape ``(K, 3)`` of :class:`SinusoidComponent` parameters
        packed as ``(amplitude_m, frequency_hz, phase_rad)`` per axis —
        see :func:`from_components` for the structured constructor.
    rotation_components:
        Same layout for the rotation-vector process (amplitudes in rad).
    pause_s:
        Length of the initial stationary pause (paper: a short pause so
        both ends detect motion onset from a variance jump).
    active_s:
        Length of the active gesture after the pause.
    ramp_s:
        Envelope rise time from rest to full amplitude.
    tremor_amplitude_m / tremor_frequency_hz:
        Physiological tremor parameters (always on).
    """

    def __init__(
        self,
        position_amplitudes: np.ndarray,
        position_frequencies: np.ndarray,
        position_phases: np.ndarray,
        rotation_amplitudes: np.ndarray,
        rotation_frequencies: np.ndarray,
        rotation_phases: np.ndarray,
        pause_s: float = 0.8,
        active_s: float = 2.5,
        ramp_s: float = 0.25,
        tremor_amplitude_m: float = 2e-4,
        tremor_frequency_hz: float = 9.0,
        tremor_phases: Tuple[float, float, float] = (0.0, 2.1, 4.2),
    ):
        self.pos_amp = np.atleast_2d(np.asarray(position_amplitudes, float))
        self.pos_freq = np.asarray(position_frequencies, float).ravel()
        self.pos_phase = np.atleast_2d(np.asarray(position_phases, float))
        self.rot_amp = np.atleast_2d(np.asarray(rotation_amplitudes, float))
        self.rot_freq = np.asarray(rotation_frequencies, float).ravel()
        self.rot_phase = np.atleast_2d(np.asarray(rotation_phases, float))
        for name, amp, freq, phase in (
            ("position", self.pos_amp, self.pos_freq, self.pos_phase),
            ("rotation", self.rot_amp, self.rot_freq, self.rot_phase),
        ):
            if amp.shape != phase.shape or amp.shape[0] != freq.size:
                raise ConfigurationError(
                    f"{name} component arrays are inconsistent: "
                    f"amp {amp.shape}, freq {freq.shape}, phase {phase.shape}"
                )
            if amp.shape[1] != 3:
                raise ConfigurationError(
                    f"{name} amplitudes must have 3 columns, got {amp.shape}"
                )
        self.pause_s = check_positive("pause_s", pause_s, allow_zero=True)
        self.active_s = check_positive("active_s", active_s)
        self.ramp_s = check_positive("ramp_s", ramp_s)
        self.tremor_amplitude_m = check_positive(
            "tremor_amplitude_m", tremor_amplitude_m, allow_zero=True
        )
        self.tremor_frequency_hz = check_positive(
            "tremor_frequency_hz", tremor_frequency_hz
        )
        self.tremor_phases = np.asarray(tremor_phases, float)

    # -- time bounds ---------------------------------------------------------

    @property
    def total_s(self) -> float:
        """Total timeline length: pause + active gesture."""
        return self.pause_s + self.active_s

    @property
    def motion_onset_s(self) -> float:
        """Ground-truth time at which the active gesture begins."""
        return self.pause_s

    # -- kinematics ----------------------------------------------------------

    def _envelope(self, t: np.ndarray) -> np.ndarray:
        return _smoothstep((t - self.pause_s) / self.ramp_s)

    def position(self, t) -> np.ndarray:
        """Hand displacement (m) relative to the rest point; shape (..., 3)."""
        t = np.asarray(t, dtype=np.float64)
        tt = t[..., None]  # (..., 1) against (K,) component axes
        arg = (
            2.0 * np.pi * self.pos_freq * (tt - self.pause_s)
            + 0.0
        )
        # waves: (..., K, 3)
        waves = self.pos_amp * np.sin(arg[..., None] + self.pos_phase)
        gesture = waves.sum(axis=-2)
        gesture *= self._envelope(t)[..., None]
        tremor = self.tremor_amplitude_m * np.sin(
            2.0 * np.pi * self.tremor_frequency_hz * tt + self.tremor_phases
        )
        return gesture + tremor

    def velocity(self, t) -> np.ndarray:
        """Hand velocity (m/s) by central differencing; shape (..., 3)."""
        t = np.asarray(t, dtype=np.float64)
        h = _FD_STEP
        return (self.position(t + h) - self.position(t - h)) / (2.0 * h)

    def acceleration(self, t) -> np.ndarray:
        """Hand linear acceleration (m/s^2); shape (..., 3)."""
        t = np.asarray(t, dtype=np.float64)
        h = _FD_STEP
        return (
            self.position(t + h)
            - 2.0 * self.position(t)
            + self.position(t - h)
        ) / (h * h)

    def rotation_vector(self, t) -> np.ndarray:
        """Device rotation vector (rad) relative to the rest pose."""
        t = np.asarray(t, dtype=np.float64)
        tt = t[..., None]
        arg = 2.0 * np.pi * self.rot_freq * (tt - self.pause_s)
        waves = self.rot_amp * np.sin(arg[..., None] + self.rot_phase)
        rotvec = waves.sum(axis=-2)
        rotvec *= self._envelope(t)[..., None]
        return rotvec

    def orientation(self, t: float) -> np.ndarray:
        """Body->world rotation matrix at scalar time ``t``."""
        return rotation_from_rotvec(self.rotation_vector(float(t)))

    def orientations(self, t) -> np.ndarray:
        """Stack of body->world rotations for a time array; shape (N, 3, 3)."""
        t = np.asarray(t, dtype=np.float64).ravel()
        return np.stack([self.orientation(ti) for ti in t])

    def angular_velocity_body(self, t) -> np.ndarray:
        """Body-frame angular velocity (rad/s), from ``[w]x = R^T dR/dt``."""
        t = np.asarray(t, dtype=np.float64)
        scalar = t.ndim == 0
        t = np.atleast_1d(t)
        h = _FD_STEP
        out = np.empty((t.size, 3))
        for i, ti in enumerate(t):
            r = self.orientation(ti)
            dr = (self.orientation(ti + h) - self.orientation(ti - h)) / (
                2.0 * h
            )
            w_skew = r.T @ dr
            out[i] = [w_skew[2, 1], w_skew[0, 2], w_skew[1, 0]]
        return out[0] if scalar else out

    # -- introspection ---------------------------------------------------------

    def position_components(self):
        """Structured view of the position sinusoids (per axis)."""
        comps = []
        for k in range(self.pos_freq.size):
            comps.append(
                tuple(
                    SinusoidComponent(
                        amplitude=float(self.pos_amp[k, axis]),
                        frequency_hz=float(self.pos_freq[k]),
                        phase=float(self.pos_phase[k, axis]),
                    )
                    for axis in range(3)
                )
            )
        return comps

    def __repr__(self) -> str:
        return (
            f"GestureTrajectory(K={self.pos_freq.size}, "
            f"pause={self.pause_s:.2f}s, active={self.active_s:.2f}s)"
        )
