"""Human gesture-mimicry model.

In the gesture-mimicking attack (paper SV-B.2, SVI-E.1) an adversary
watches the victim wave and copies the gesture with their own device.
Human motor control reproduces the *coarse* trajectory but not the fine
temporal detail: reaction delay, limited tracking bandwidth (~1.5-2 Hz
for unrehearsed imitation), amplitude mis-scaling, phase error growing
with frequency, and leakage of the imitator's own motion style.  The
model here applies exactly those distortions to the victim's trajectory
components, producing a new :class:`GestureTrajectory` the attack
pipeline feeds through the standard IMU path.

References for the bandwidth/delay figures: visuo-manual tracking studies
put unrehearsed human tracking bandwidth near 1-2 Hz with 150-300 ms
latency; we default to the middle of those ranges and expose every knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gesture.trajectory import GestureTrajectory
from repro.gesture.volunteers import VolunteerProfile, sample_gesture
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MimicryModel:
    """Distortion parameters of a human imitator.

    Attributes
    ----------
    tracking_bandwidth_hz:
        Components above this frequency cannot be tracked; the imitator
        replaces them with motion from their own style.
    reaction_delay_s:
        Mean visuo-motor delay applied to tracked components.
    delay_jitter_s:
        Standard deviation of the per-component delay error.
    amplitude_error:
        Log-normal sigma of per-component amplitude mis-scaling.
    phase_error_per_hz:
        Phase error (rad) added per Hz of component frequency — fast
        components are copied with progressively worse timing.
    style_leakage:
        Fraction of the imitator's own gesture energy mixed in.
    """

    tracking_bandwidth_hz: float = 1.8
    reaction_delay_s: float = 0.22
    delay_jitter_s: float = 0.06
    amplitude_error: float = 0.25
    phase_error_per_hz: float = 0.9
    style_leakage: float = 0.35

    def __post_init__(self):
        if self.tracking_bandwidth_hz <= 0:
            raise ConfigurationError("tracking_bandwidth_hz must be > 0")
        if not (0.0 <= self.style_leakage <= 1.0):
            raise ConfigurationError("style_leakage must be in [0, 1]")


def mimic_trajectory(
    victim: GestureTrajectory,
    imitator: VolunteerProfile,
    model: MimicryModel = MimicryModel(),
    rng=None,
) -> GestureTrajectory:
    """Produce the imitator's best-effort copy of ``victim``.

    Tracked components (below the bandwidth) keep the victim's frequency
    but acquire delay-induced phase error, frequency-proportional phase
    error, and amplitude mis-scaling.  Untracked components are replaced
    by components drawn from the imitator's own style.  The imitator's own
    style also leaks additively into the copy.
    """
    rng = ensure_rng(rng)
    freqs = victim.pos_freq.copy()
    amps = victim.pos_amp.copy()
    phases = victim.pos_phase.copy()

    own = sample_gesture(
        imitator, rng, active_s=victim.active_s, pause_s=victim.pause_s
    )

    tracked = freqs <= model.tracking_bandwidth_hz
    for k in range(freqs.size):
        if tracked[k]:
            delay = model.reaction_delay_s + rng.normal(
                0.0, model.delay_jitter_s
            )
            phase_shift = (
                -2.0 * np.pi * freqs[k] * delay
                + rng.normal(0.0, model.phase_error_per_hz * freqs[k])
            )
            phases[k] = phases[k] + phase_shift
            amps[k] = amps[k] * rng.lognormal(
                0.0, model.amplitude_error, size=3
            )
        else:
            # Untracked: the imitator substitutes motion of their own.
            idx = rng.integers(0, own.pos_freq.size)
            freqs[k] = own.pos_freq[idx]
            amps[k] = own.pos_amp[idx] * rng.lognormal(0.0, 0.3, size=3)
            phases[k] = rng.uniform(0.0, 2.0 * np.pi, size=3)

    # Style leakage: blend in a scaled copy of the imitator's own gesture.
    leak = model.style_leakage
    freqs = np.concatenate([freqs, own.pos_freq])
    amps = np.concatenate([amps, leak * own.pos_amp])
    phases = np.concatenate([phases, own.pos_phase])

    # The imitator's wrist rotation is entirely their own (unobservable
    # at a glance) and is irrelevant to the position channel anyway.
    return GestureTrajectory(
        position_amplitudes=amps,
        position_frequencies=freqs,
        position_phases=phases,
        rotation_amplitudes=own.rot_amp,
        rotation_frequencies=own.rot_freq,
        rotation_phases=own.rot_phase,
        pause_s=victim.pause_s,
        active_s=victim.active_s,
        tremor_amplitude_m=imitator.tremor_amplitude_m,
        tremor_phases=tuple(rng.uniform(0.0, 2.0 * np.pi, size=3)),
    )
