"""Hand-gesture simulation.

WaveKey's entropy source is a brief random hand-waving gesture performed
while the user holds the mobile device and the RFID tag in the same hand
(paper SIV-A/B).  Real volunteers are not available in this environment,
so this package provides a physically grounded generative model of such
gestures:

* :class:`GestureTrajectory` — a continuous-time rigid-body motion
  (3-D position + device orientation) built from band-limited random
  sinusoid mixtures, with the paper's mandated initial pause used for
  clock synchronization between the mobile device and the RFID reader.
* :class:`VolunteerProfile` — per-volunteer style statistics (preferred
  frequency band, amplitude, axis bias, tremor) so multi-volunteer
  experiments (mimicry, randomness per key-chain) are meaningful.
* :func:`mimic_trajectory` — a human-motor-control model of one person
  imitating another's gesture, used by the gesture-mimicking attack
  (paper SVI-E.1).
"""

from repro.gesture.kinematics import (
    integrate_angular_velocity,
    rotation_from_rotvec,
    rotvec_from_rotation,
    skew,
    triad,
)
from repro.gesture.trajectory import GestureTrajectory, SinusoidComponent
from repro.gesture.volunteers import (
    VolunteerProfile,
    default_volunteers,
    sample_gesture,
)
from repro.gesture.mimicry import MimicryModel, mimic_trajectory

__all__ = [
    "GestureTrajectory",
    "SinusoidComponent",
    "VolunteerProfile",
    "default_volunteers",
    "sample_gesture",
    "MimicryModel",
    "mimic_trajectory",
    "skew",
    "rotation_from_rotvec",
    "rotvec_from_rotation",
    "integrate_angular_velocity",
    "triad",
]
