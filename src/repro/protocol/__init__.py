"""The WaveKey key-agreement protocol (paper SIV-D, Fig. 4).

A bidirectional batched 1-out-of-2 OT: each side obliviously transfers
one member of each of its ``l_s`` random sequence pairs, selected by the
*peer's* key-seed bits, then concatenates own-selected and received
sequences into a preliminary key.  Reconciliation runs the code-offset
secure sketch (the paper's ECC challenge) and confirms with an HMAC over
a nonce.  All OT instances of one direction are combined into three wire
messages, and the two announce messages must arrive within ``2 + tau``
seconds of the gesture start or the instance is discarded.
"""

from repro.protocol.messages import (
    ConfirmationResponse,
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    ReconciliationChallenge,
)
from repro.protocol.timing import ProtocolClock
from repro.protocol.transport import SimulatedTransport
from repro.protocol.agreement import (
    AgreementParty,
    KeyAgreementConfig,
    KeyAgreementOutcome,
    run_key_agreement,
)

__all__ = [
    "OTAnnounce",
    "OTResponse",
    "OTCiphertextBatch",
    "ReconciliationChallenge",
    "ConfirmationResponse",
    "ProtocolClock",
    "SimulatedTransport",
    "AgreementParty",
    "KeyAgreementConfig",
    "KeyAgreementOutcome",
    "run_key_agreement",
]
