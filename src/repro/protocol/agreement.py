"""Bidirectional OT key agreement (paper SIV-D.2, Fig. 4).

Both parties play both OT roles simultaneously: as *sender*, a party
obliviously transfers one member of each of its ``l_s`` random sequence
pairs, selected by the peer's key-seed bit; as *receiver*, it fetches
the peer's sequence selected by its own seed bit.  Each party then
concatenates, per index ``i``, its own ``x_i^{s_i}`` and the received
``y_i^{s_i}`` — so wherever the two seeds agree, the two preliminary
keys share that segment, and the overall key mismatch ratio is bounded
by the seed mismatch ratio.

Reconciliation (the paper's "ECC challenge") runs the code-offset secure
sketch sized so that up to ``ceil(eta * l_s)`` disagreeing seed bits —
i.e. that many fully corrupted key segments — are always corrected.
Confirmation is an HMAC over the challenge nonce under the reconciled
key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.crypto.segment_sketch import SegmentSecureSketch
from repro.crypto.hashes import hmac_digest, hmac_verify
from repro.crypto.group import Group
from repro.crypto.numbers import WAVEKEY_GROUP_512
from repro.crypto.ot import (
    OTCiphertexts,
    OTReceiver,
    OTSender,
    batch_announce,
    batch_respond,
)
from repro.crypto.pool import OTMaterialPool
from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    KeyAgreementFailure,
    ProtocolError,
    TransportError,
)
from repro.protocol.messages import (
    ConfirmationResponse,
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    ReconciliationChallenge,
    require_sender,
)
from repro.obs.tracing import Tracer, resolve_tracer
from repro.protocol.timing import ProtocolClock
from repro.protocol.transport import SimulatedTransport
from repro.utils.bits import BitSequence
from repro.utils.rng import child_rng, ensure_rng


@dataclass(frozen=True)
class KeyAgreementConfig:
    """Protocol parameters.

    ``eta`` is the calibrated ECC rate (SVI-C.2); ``tau_s`` the message
    deadline slack (SVI-C.3); ``gesture_window_s`` the 2 s acquisition
    window — announce messages must arrive by ``gesture_window_s +
    tau_s`` on the protocol clock.
    """

    key_length_bits: int = 256
    eta: float = 0.04
    tau_s: float = 0.12
    gesture_window_s: float = 2.0
    group: Group = WAVEKEY_GROUP_512
    nonce_bytes: int = 16

    def __post_init__(self):
        if self.key_length_bits < 8:
            raise ConfigurationError("key_length_bits must be >= 8")
        if not (0.0 < self.eta < 0.5):
            raise ConfigurationError("eta must be in (0, 0.5)")
        if self.tau_s <= 0 or self.gesture_window_s <= 0:
            raise ConfigurationError("tau_s and gesture_window_s must be > 0")

    @property
    def announce_deadline_s(self) -> float:
        """Latest acceptable arrival of ``M_A`` messages (2 + tau)."""
        return self.gesture_window_s + self.tau_s

    def segment_bits(self, seed_length: int) -> int:
        """``l_b = ceil(l_k / (2 l_s))`` (paper SIV-D.2)."""
        if seed_length < 1:
            raise ConfigurationError("seed_length must be >= 1")
        return max(1, math.ceil(self.key_length_bits / (2 * seed_length)))

    def material_bits(self, seed_length: int) -> int:
        """Length of the preliminary key ``K`` (2 l_s l_b >= l_k)."""
        return 2 * seed_length * self.segment_bits(seed_length)

    def tolerated_seed_mismatches(self, seed_length: int) -> int:
        """The Eq. 4 correction radius: ``floor(eta * l_s)`` disagreeing
        seed bits (at least 1) are always reconciled."""
        return max(1, math.floor(self.eta * seed_length))


@lru_cache(maxsize=32)
def _sketch_for(
    n_segments: int, segment_bits: int, tolerance: int
) -> SegmentSecureSketch:
    """RS construction is cached per protocol operating point."""
    return SegmentSecureSketch(n_segments, segment_bits, tolerance)


class AgreementParty:
    """One endpoint (mobile device or RFID server) of the agreement."""

    def __init__(
        self,
        name: str,
        seed: BitSequence,
        config: KeyAgreementConfig,
        rng=None,
        own_sequences_first: bool = True,
        pool: Optional[OTMaterialPool] = None,
    ):
        if len(seed) < 2:
            raise ConfigurationError("key-seed too short")
        self.name = name
        self.seed = seed
        self.config = config
        # Warm OT material: announce/respond draw precomputed
        # (exponent, power) tuples instead of exponentiating inline;
        # an exhausted (or absent) pool falls back to inline compute.
        self.pool = pool
        # Fig. 4 fixes the segment order as (x_i || y_i) on BOTH sides:
        # the mobile device's own pairs are the x's (own first), the
        # server's own pairs are the y's (own second).
        self.own_sequences_first = bool(own_sequences_first)
        self._rng = ensure_rng(rng)
        self.l_s = len(seed)
        self.l_b = config.segment_bits(self.l_s)

        pair_rng = child_rng(self._rng, "pairs")
        self.sequence_pairs: List[Tuple[BitSequence, BitSequence]] = [
            (
                BitSequence.random(self.l_b, pair_rng),
                BitSequence.random(self.l_b, pair_rng),
            )
            for _ in range(self.l_s)
        ]
        self._senders = [
            OTSender(config.group, child_rng(self._rng, "send", i))
            for i in range(self.l_s)
        ]
        self._receivers = [
            OTReceiver(config.group, child_rng(self._rng, "recv", i))
            for i in range(self.l_s)
        ]
        self._received_segments: Optional[List[BitSequence]] = None
        self.preliminary_key: Optional[BitSequence] = None
        self.final_key: Optional[BitSequence] = None
        self._nonce: Optional[bytes] = None

    # -- OT sender direction ---------------------------------------------------

    def craft_announce(self) -> OTAnnounce:
        """``M_A``: announce all OT instances this party sends."""
        group = self.config.group
        return OTAnnounce(
            sender=self.name,
            elements=tuple(
                group.encode_element(e)
                for e in batch_announce(self._senders, self.pool)
            ),
        )

    def craft_ciphertexts(self, response: OTResponse) -> OTCiphertextBatch:
        """``M_E``: encrypt both members of every pair against the
        peer's (seed-bit-driven) OT responses."""
        if len(response.elements) != self.l_s:
            raise ProtocolError(
                f"{self.name}: expected {self.l_s} OT responses, got "
                f"{len(response.elements)}"
            )
        group = self.config.group
        pairs = []
        for sender, element, (x0, x1) in zip(
            self._senders, response.elements, self.sequence_pairs
        ):
            # decode_element is the validation chokepoint for peer
            # bytes: range/on-curve/small-order rejects surface here as
            # ProtocolError and become failed outcomes, not crashes.
            pairs.append(
                sender.encrypt(
                    group.decode_element(element),
                    x0.to_bytes(),
                    x1.to_bytes(),
                )
            )
        return OTCiphertextBatch(sender=self.name, pairs=tuple(pairs))

    # -- OT receiver direction ---------------------------------------------------

    def craft_response(self, announce: OTAnnounce) -> OTResponse:
        """``M_B``: respond to the peer's announce with this party's
        seed bits as OT choices."""
        if len(announce.elements) != self.l_s:
            raise ProtocolError(
                f"{self.name}: expected {self.l_s} OT announces, got "
                f"{len(announce.elements)}"
            )
        group = self.config.group
        elements = tuple(
            group.encode_element(e)
            for e in batch_respond(
                self._receivers,
                [group.decode_element(e) for e in announce.elements],
                [int(self.seed[i]) for i in range(self.l_s)],
                self.pool,
            )
        )
        return OTResponse(sender=self.name, elements=elements)

    def receive_ciphertexts(self, batch: OTCiphertextBatch) -> None:
        """Decrypt the selected member of every received pair."""
        if len(batch.pairs) != self.l_s:
            raise ProtocolError(
                f"{self.name}: expected {self.l_s} ciphertext pairs, got "
                f"{len(batch.pairs)}"
            )
        segments = []
        for receiver, pair in zip(self._receivers, batch.pairs):
            plain = receiver.decrypt(pair)
            segments.append(BitSequence.from_bytes(plain, self.l_b))
        self._received_segments = segments

    # -- key assembly ---------------------------------------------------------

    def build_preliminary_key(self) -> BitSequence:
        """Interleave own-selected and received segments (Fig. 4)."""
        if self._received_segments is None:
            raise ProtocolError(
                f"{self.name}: ciphertexts not yet received"
            )
        parts: List[BitSequence] = []
        for i in range(self.l_s):
            own = self.sequence_pairs[i][int(self.seed[i])]
            received = self._received_segments[i]
            if self.own_sequences_first:
                parts.extend((own, received))
            else:
                parts.extend((received, own))
        self.preliminary_key = parts[0].concat(*parts[1:])
        return self.preliminary_key

    # -- reconciliation (initiator = mobile device) ------------------------------

    def craft_challenge(self) -> ReconciliationChallenge:
        """ECC sketch of the preliminary key plus a fresh nonce."""
        if self.preliminary_key is None:
            raise ProtocolError(f"{self.name}: preliminary key not built")
        sketch_helper = _sketch_for(
            self.l_s,
            2 * self.l_b,
            self.config.tolerated_seed_mismatches(self.l_s),
        )
        sketch = sketch_helper.sketch(
            self.preliminary_key, child_rng(self._rng, "sketch")
        )
        self._nonce = bytes(
            child_rng(self._rng, "nonce").integers(
                0, 256, size=self.config.nonce_bytes, dtype=np.uint8
            )
        )
        self.final_key = self.preliminary_key
        return ReconciliationChallenge(
            sender=self.name, sketch=sketch, nonce=self._nonce
        )

    def answer_challenge(
        self, challenge: ReconciliationChallenge
    ) -> ConfirmationResponse:
        """Responder: reconcile toward the initiator's key and confirm.

        Raises :class:`KeyAgreementFailure` when the keys differ beyond
        the ECC radius.
        """
        if self.preliminary_key is None:
            raise ProtocolError(f"{self.name}: preliminary key not built")
        sketch_helper = _sketch_for(
            self.l_s,
            2 * self.l_b,
            self.config.tolerated_seed_mismatches(self.l_s),
        )
        self.final_key = sketch_helper.recover(
            challenge.sketch, self.preliminary_key
        )
        tag = hmac_digest(self.final_key.to_bytes(), challenge.nonce)
        return ConfirmationResponse(sender=self.name, tag=tag)

    def verify_confirmation(self, response: ConfirmationResponse) -> None:
        """Initiator: check the responder's HMAC under the final key."""
        if self.final_key is None or self._nonce is None:
            raise ProtocolError(f"{self.name}: no challenge outstanding")
        if not hmac_verify(
            self.final_key.to_bytes(), self._nonce, response.tag
        ):
            raise KeyAgreementFailure(
                "HMAC confirmation failed: peers hold different keys"
            )

    def session_key(self) -> BitSequence:
        """The agreed key, truncated to the requested ``l_k`` bits.

        The reconciled material must cover the request: silently
        returning fewer than ``key_length_bits`` bits would hand the
        access layer a weaker key than the caller configured, so a
        short ``final_key`` is a hard protocol error, not a truncation.
        """
        if self.final_key is None:
            raise ProtocolError(f"{self.name}: agreement incomplete")
        if self.config.key_length_bits > len(self.final_key):
            raise ProtocolError(
                f"{self.name}: reconciled key holds {len(self.final_key)} "
                f"bits but key_length_bits requests "
                f"{self.config.key_length_bits}; gather longer seeds or "
                "lower the requested key length"
            )
        return self.final_key[: self.config.key_length_bits]


@dataclass
class KeyAgreementOutcome:
    """Result of one full protocol run."""

    success: bool
    mobile_key: Optional[BitSequence]
    server_key: Optional[BitSequence]
    elapsed_s: float
    failure_reason: Optional[str] = None
    seed_mismatch_bits: Optional[int] = None

    @property
    def keys_match(self) -> bool:
        return (
            self.mobile_key is not None
            and self.server_key is not None
            and self.mobile_key == self.server_key
        )


def run_key_agreement(
    seed_mobile: BitSequence,
    seed_server: BitSequence,
    config: KeyAgreementConfig = KeyAgreementConfig(),
    transport: SimulatedTransport = None,
    clock: ProtocolClock = None,
    rng=None,
    tracer: Tracer = None,
    pool: OTMaterialPool = None,
) -> KeyAgreementOutcome:
    """Execute the Fig. 4 protocol between two simulated endpoints.

    The clock starts at the gesture start; data acquisition occupies the
    first ``gesture_window_s`` seconds, after which the exchange begins.
    Announce messages are deadline-checked at ``2 + tau``.  Any
    reconciliation or confirmation failure is reported as an unsuccessful
    outcome rather than an exception — failures are a *measured quantity*
    in every experiment.

    When tracing is active (explicit ``tracer``, a caller span on this
    thread, or a process default) the run emits an ``agreement`` span
    with one child per protocol stage — ``ot.announce`` through
    ``reconcile.confirm`` — carrying both wall-clock and simulated
    protocol-timeline durations.

    ``pool`` supplies both simulated endpoints with warm OT material
    (sender ``(a, M_a)`` and receiver ``(b, g^b)`` tuples precomputed
    off the hot path); an exhausted pool falls back to inline
    exponentiation per instance, never to failure.
    """
    if len(seed_mobile) != len(seed_server):
        raise ConfigurationError("key-seeds must have equal length")
    rng = ensure_rng(rng)
    transport = transport or SimulatedTransport()
    clock = clock or ProtocolClock(start_s=config.gesture_window_s)
    tracer = resolve_tracer(tracer)

    mobile = AgreementParty(
        "mobile", seed_mobile, config, child_rng(rng, "mobile"),
        own_sequences_first=True, pool=pool,
    )
    server = AgreementParty(
        "server", seed_server, config, child_rng(rng, "server"),
        own_sequences_first=False, pool=pool,
    )
    mismatch = seed_mobile.hamming_distance(seed_server)

    def fail(reason: str) -> KeyAgreementOutcome:
        return KeyAgreementOutcome(
            success=False,
            mobile_key=None,
            server_key=None,
            elapsed_s=clock.now,
            failure_reason=reason,
            seed_mismatch_bits=mismatch,
        )

    def stage(name: str):
        """Protocol-stage span annotated with the simulated timeline."""
        return _StageSpan(tracer, clock, name)

    with tracer.span(
        "agreement", l_s=len(seed_mobile), seed_mismatch_bits=mismatch
    ) as root:
        try:
            # Exchange M_A (deadline-checked on arrival, SIV-D.2).
            with stage("ot.announce"):
                with clock.measure():
                    announce_m = mobile.craft_announce()
                    announce_r = server.craft_announce()
                # Receivers validate the claimed sender identity on every
                # delivered message: an interceptor substituting a frame
                # under its own name is rejected outright (anti-spoofing).
                announce_m = require_sender(
                    transport.deliver("mobile", "server", announce_m, clock),
                    "mobile",
                )
                clock.check_deadline(
                    config.announce_deadline_s, "M_A (mobile)"
                )
                announce_r = require_sender(
                    transport.deliver("server", "mobile", announce_r, clock),
                    "server",
                )
                clock.check_deadline(
                    config.announce_deadline_s, "M_A (server)"
                )

            # Exchange M_B.
            with stage("ot.respond"):
                with clock.measure():
                    response_m = mobile.craft_response(announce_r)
                    response_r = server.craft_response(announce_m)
                response_m = require_sender(
                    transport.deliver("mobile", "server", response_m, clock),
                    "mobile",
                )
                response_r = require_sender(
                    transport.deliver("server", "mobile", response_r, clock),
                    "server",
                )

            # Exchange M_E.
            with stage("ot.ciphertexts"):
                with clock.measure():
                    cipher_m = mobile.craft_ciphertexts(response_r)
                    cipher_r = server.craft_ciphertexts(response_m)
                cipher_m = require_sender(
                    transport.deliver("mobile", "server", cipher_m, clock),
                    "mobile",
                )
                cipher_r = require_sender(
                    transport.deliver("server", "mobile", cipher_r, clock),
                    "server",
                )

            with stage("ot.assemble"):
                with clock.measure():
                    mobile.receive_ciphertexts(cipher_r)
                    server.receive_ciphertexts(cipher_m)
                    mobile.build_preliminary_key()
                    server.build_preliminary_key()

            # Reconciliation challenge and HMAC confirmation.
            with stage("reconcile"):
                with stage("reconcile.challenge"):
                    with clock.measure():
                        challenge = mobile.craft_challenge()
                    challenge = require_sender(
                        transport.deliver(
                            "mobile", "server", challenge, clock
                        ),
                        "mobile",
                    )
                with stage("reconcile.answer"):
                    with clock.measure():
                        confirmation = server.answer_challenge(challenge)
                    confirmation = require_sender(
                        transport.deliver(
                            "server", "mobile", confirmation, clock
                        ),
                        "server",
                    )
                with stage("reconcile.confirm"):
                    with clock.measure():
                        mobile.verify_confirmation(confirmation)
        except DeadlineExceeded as exc:
            root.set_attribute("failure", f"deadline: {exc}")
            return fail(f"deadline: {exc}")
        except KeyAgreementFailure as exc:
            root.set_attribute("failure", f"agreement: {exc}")
            return fail(f"agreement: {exc}")
        except TransportError as exc:
            root.set_attribute("failure", f"transport: {exc}")
            return fail(f"transport: {exc}")
        except ProtocolError as exc:
            root.set_attribute("failure", f"protocol: {exc}")
            return fail(f"protocol: {exc}")
        root.set_attribute("protocol_elapsed_s", round(clock.now, 6))

    return KeyAgreementOutcome(
        success=True,
        mobile_key=mobile.session_key(),
        server_key=server.session_key(),
        elapsed_s=clock.now,
        seed_mismatch_bits=mismatch,
    )


#: Capability marker for the access server: injected agreement_fns that
#: understand the ``pool=`` keyword advertise it the same way, so the
#: server only forwards its pool to functions that can take it.
run_key_agreement.accepts_ot_pool = True


class _StageSpan:
    """A tracer span that also captures the simulated protocol clock.

    Wall time alone misrepresents the protocol: transport latency and
    the parties' modelled crafting time advance the *simulated*
    timeline, not the wall clock.  Each stage span therefore carries a
    ``protocol_s`` attribute with the simulated seconds the stage
    consumed.  Exceptions propagate — the caller converts them into a
    failed outcome — but still mark the span as errored.
    """

    __slots__ = ("_cm", "_clock", "_span", "_t0")

    def __init__(self, tracer, clock, name):
        self._cm = tracer.span(name)
        self._clock = clock
        self._span = None
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = self._clock.now
        self._span = self._cm.__enter__()
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._span.set_attribute(
            "protocol_s", round(self._clock.now - self._t0, 6)
        )
        return self._cm.__exit__(exc_type, exc, tb)
