"""Wire messages of the key-agreement protocol (Fig. 4).

Each dataclass corresponds to one of the combined messages: the paper
merges the per-instance OT messages of one direction into single wire
messages ``M_A``, ``M_B``, ``M_E``, followed by the reconciliation
challenge and the HMAC confirmation.  ``wire_size_bytes`` gives the
serialized size, used by the transport to model transmission delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.ot import OTCiphertexts
from repro.errors import ProtocolError
from repro.utils.bits import BitSequence


def require_sender(message, expected: str):
    """Anti-spoofing check: assert ``message`` claims the expected sender.

    Every wire message carries a ``sender`` identity; once a session has
    established who its peer is (the other protocol party, or the client
    named in the connection handshake), any message claiming a different
    identity is rejected with :class:`ProtocolError` instead of being
    processed.  Returns the message so call sites can stay expression
    shaped: ``msg = require_sender(transport.deliver(...), "mobile")``.
    """
    sender = getattr(message, "sender", None)
    if sender != expected:
        raise ProtocolError(
            f"sender mismatch on {type(message).__name__}: expected "
            f"{expected!r}, got {sender!r}"
        )
    return message


def _coerce_elements(elements: Tuple) -> Tuple[bytes, ...]:
    """Normalize OT elements to their wire form (encoded bytes).

    Group elements travel as opaque, group-defined encodings; a bare
    int (the historical MODP form, still used directly by tests and
    attack tooling) coerces to its minimal big-endian bytes, which is
    byte-identical to the pre-generic wire encoding.
    """
    coerced = []
    for element in elements:
        if isinstance(element, bytes):
            coerced.append(element)
        elif isinstance(element, int):
            if element < 0:
                raise ProtocolError("group elements are non-negative")
            coerced.append(
                element.to_bytes(max(1, (element.bit_length() + 7) // 8),
                                 "big")
            )
        else:
            raise ProtocolError(
                f"OT elements are bytes, got {type(element).__name__}"
            )
    return tuple(coerced)


@dataclass(frozen=True)
class OTAnnounce:
    """``M_A``: the concatenated encoded ``g^a_i`` of all OT instances."""

    sender: str
    elements: Tuple[bytes, ...]

    def __post_init__(self):
        if not self.elements:
            raise ProtocolError("empty OT announce")
        object.__setattr__(self, "elements", _coerce_elements(self.elements))

    def wire_size_bytes(self) -> int:
        return sum(len(e) for e in self.elements)


@dataclass(frozen=True)
class OTResponse:
    """``M_B``: the concatenated receiver responses ``n_i``."""

    sender: str
    elements: Tuple[bytes, ...]

    def __post_init__(self):
        if not self.elements:
            raise ProtocolError("empty OT response")
        object.__setattr__(self, "elements", _coerce_elements(self.elements))

    def wire_size_bytes(self) -> int:
        return sum(len(e) for e in self.elements)


@dataclass(frozen=True)
class OTCiphertextBatch:
    """``M_E``: the concatenated ciphertext pairs ``<e_i^0, e_i^1>``."""

    sender: str
    pairs: Tuple[OTCiphertexts, ...]

    def __post_init__(self):
        if not self.pairs:
            raise ProtocolError("empty OT ciphertext batch")

    def wire_size_bytes(self) -> int:
        return sum(len(p.e0) + len(p.e1) for p in self.pairs)


@dataclass(frozen=True)
class ReconciliationChallenge:
    """The initiator's ECC sketch of its preliminary key plus a nonce."""

    sender: str
    sketch: BitSequence
    nonce: bytes

    def __post_init__(self):
        if len(self.nonce) < 8:
            raise ProtocolError("nonce must be at least 8 bytes")

    def wire_size_bytes(self) -> int:
        return (len(self.sketch) + 7) // 8 + len(self.nonce)


@dataclass(frozen=True)
class ConfirmationResponse:
    """The responder's HMAC of the nonce under the reconciled key."""

    sender: str
    tag: bytes

    def __post_init__(self):
        if len(self.tag) != 32:
            raise ProtocolError("confirmation tag must be 32 bytes")

    def wire_size_bytes(self) -> int:
        return len(self.tag)
