"""Protocol time accounting.

The paper's deadline defence (SIV-D.2, SVI-C.3) hinges on *when* the two
announce messages arrive relative to the gesture start.  The simulator
tracks protocol time explicitly: real computation is measured with a
wall clock and added to the simulated timeline, network latency and any
attacker-induced delays are added as configured quantities.  This lets a
single run report both the realistic end-to-end latency (Table III) and
deadline violations by slow attackers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.errors import ConfigurationError, DeadlineExceeded


class ProtocolClock:
    """A simulated clock whose origin is the start of the gesture."""

    def __init__(self, start_s: float = 0.0):
        self._now = float(start_s)

    @property
    def now(self) -> float:
        """Seconds since the gesture started."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Add a simulated duration (latency, attacker delay...)."""
        if seconds < 0:
            raise ConfigurationError("cannot advance the clock backwards")
        self._now += float(seconds)

    @contextmanager
    def measure(self):
        """Context manager: wall-clock the enclosed computation and add
        its real duration to the simulated timeline."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._now += time.perf_counter() - start

    def check_deadline(self, deadline_s: float, what: str) -> None:
        """Raise :class:`DeadlineExceeded` if the timeline passed
        ``deadline_s``."""
        if self._now > deadline_s:
            raise DeadlineExceeded(
                f"{what} arrived at t={self._now * 1000:.1f} ms, after the "
                f"deadline of {deadline_s * 1000:.1f} ms"
            )

    def __repr__(self) -> str:
        return f"ProtocolClock(now={self._now:.4f}s)"
