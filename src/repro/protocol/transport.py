"""Simulated wireless transport between the mobile device and the server.

The channel (WiFi/Bluetooth in the paper) is modelled as a per-message
latency plus a bandwidth term, with two adversary hooks:

* ``taps`` — read-only observers (eavesdropping attack, SV-A);
* ``interceptor`` — a man-in-the-middle that may replace a message and
  add relay delay (SV-C); returning the message unchanged with zero
  delay makes the MitM a pure relay, and returning ``None`` drops the
  message entirely (the receiver sees :class:`MessageDropped`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, FrameTooLarge, MessageDropped
from repro.protocol.timing import ProtocolClock

#: tap(sender, receiver, message) -> None
TapFn = Callable[[str, str, object], None]
#: interceptor(sender, receiver, message) -> (message | None, extra_delay_s)
InterceptFn = Callable[[str, str, object], Tuple[object, float]]


class SimulatedTransport:
    """Message delivery with latency, observers, and MitM hooks."""

    def __init__(
        self,
        base_latency_s: float = 0.002,
        bandwidth_bytes_per_s: float = 2.5e6,
        taps: Optional[List[TapFn]] = None,
        interceptor: Optional[InterceptFn] = None,
        max_message_bytes: Optional[int] = None,
    ):
        if base_latency_s < 0 or bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("invalid transport parameters")
        if max_message_bytes is not None and max_message_bytes < 1:
            raise ConfigurationError("max_message_bytes must be >= 1")
        self.base_latency_s = float(base_latency_s)
        self.bandwidth_bytes_per_s = float(bandwidth_bytes_per_s)
        self.taps: List[TapFn] = list(taps or [])
        self.interceptor = interceptor
        self.max_message_bytes = max_message_bytes
        self.delivered_count = 0
        self.dropped_count = 0

    def transmission_delay(self, message) -> float:
        """Latency plus serialization time for one message."""
        size = message.wire_size_bytes()
        return self.base_latency_s + size / self.bandwidth_bytes_per_s

    def deliver(
        self, sender: str, receiver: str, message, clock: ProtocolClock
    ):
        """Deliver ``message``, advancing the protocol clock.

        Taps observe the original message; the interceptor may replace
        it, drop it (by returning ``None``), and add relay delay.
        Returns the (possibly substituted) message the receiver sees;
        raises :class:`MessageDropped` for dropped messages and
        :class:`FrameTooLarge` when ``max_message_bytes`` is configured
        and the message exceeds it (mirroring the frame limit the real
        wire in :mod:`repro.net` enforces).
        """
        size = message.wire_size_bytes()
        if (
            self.max_message_bytes is not None
            and size > self.max_message_bytes
        ):
            self.dropped_count += 1
            raise FrameTooLarge(
                f"{type(message).__name__} from {sender} is {size} bytes, "
                f"over the {self.max_message_bytes}-byte message limit"
            )
        clock.advance(self.transmission_delay(message))
        for tap in self.taps:
            tap(sender, receiver, message)
        if self.interceptor is not None:
            original = message
            message, extra_delay = self.interceptor(sender, receiver, message)
            if extra_delay:
                clock.advance(extra_delay)
            if message is None:
                self.dropped_count += 1
                raise MessageDropped(
                    f"{type(original).__name__} from {sender} to {receiver} "
                    "was dropped in transit"
                )
        self.delivered_count += 1
        return message
