"""Reed-Solomon codes over GF(2^m).

The key-agreement reconciliation operates at *segment* granularity: one
mismatched key-seed bit corrupts one whole ``2 l_b``-bit key segment
(SIV-D.2), i.e. errors arrive as symbol errors, which is exactly the
Reed-Solomon channel model.  A narrow-sense RS code with ``2t`` parity
symbols corrects any ``t`` symbol errors — no worst-case bit-count
inflation like a binary code would need.

Implementation: generator polynomial with roots ``alpha^1 .. alpha^2t``,
systematic encoding by polynomial division, decoding via syndromes,
Berlekamp-Massey, Chien search, and Forney's formula for the error
magnitudes.  Shortening (treating leading information symbols as zero)
lets the code length match the number of key segments exactly.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.crypto.gf2 import GF2m
from repro.errors import ConfigurationError, DecodingError
from repro.utils.rng import ensure_rng


class RSCode:
    """A (possibly shortened) narrow-sense Reed-Solomon code.

    Parameters
    ----------
    m:
        Symbol field degree: symbols are elements of GF(2^m).
    n:
        Transmitted code length in symbols (shortened from ``2^m - 1``).
    t:
        Symbol-error correction capability; the code has ``2t`` parity
        symbols and ``k = n - 2t`` information symbols.

    Codewords are integer arrays (message symbols first, parity last);
    position ``p`` carries the coefficient of ``x^(n - 1 - p)``.
    """

    def __init__(self, m: int, n: int, t: int):
        if t < 1:
            raise ConfigurationError(f"t must be >= 1, got {t}")
        self.field = GF2m(m)
        self.m = int(m)
        self.n = int(n)
        self.t = int(t)
        self.n_parity = 2 * self.t
        self.k = self.n - self.n_parity
        if self.k < 1:
            raise ConfigurationError(
                f"RS(n={n}, t={t}) leaves no information symbols"
            )
        if self.n > self.field.mult_order:
            raise ConfigurationError(
                f"RS length {n} exceeds field bound {self.field.mult_order}"
            )
        # g(x) = prod_{i=1..2t} (x + alpha^i), low-degree-first coeffs.
        g = np.array([1], dtype=np.int64)
        for i in range(1, self.n_parity + 1):
            g = self.field.poly_mul(
                g, np.array([self.field.pow_alpha(i), 1], dtype=np.int64)
            )
        self.generator = g  # degree 2t, monic

    # -- encoding ---------------------------------------------------------------

    def _poly_mod_generator(self, dividend: np.ndarray) -> np.ndarray:
        """Remainder of a GF(2^m)[x] polynomial (high-first array) mod g."""
        field = self.field
        r = dividend.astype(np.int64).copy()
        g_high_first = self.generator[::-1]
        steps = r.size - g_high_first.size + 1
        for i in range(steps):
            coef = int(r[i])
            if coef == 0:
                continue
            for j in range(g_high_first.size):
                gj = int(g_high_first[j])
                if gj:
                    r[i + j] ^= field.mul(coef, gj)
        return r[steps:]

    def encode(self, message: Sequence[int]) -> np.ndarray:
        """Systematic encoding of ``k`` symbols."""
        msg = np.asarray(list(message), dtype=np.int64)
        if msg.shape != (self.k,):
            raise ConfigurationError(
                f"message must be {self.k} symbols, got {msg.shape}"
            )
        if msg.size and (msg.min() < 0 or msg.max() >= self.field.order):
            raise ConfigurationError("message symbols outside the field")
        shifted = np.concatenate(
            [msg, np.zeros(self.n_parity, dtype=np.int64)]
        )
        parity = self._poly_mod_generator(shifted)
        return np.concatenate([msg, parity])

    def random_codeword(self, rng=None) -> np.ndarray:
        """Uniformly random codeword (for the code-offset sketch)."""
        rng = ensure_rng(rng)
        msg = rng.integers(0, self.field.order, size=self.k)
        return self.encode(msg)

    def is_codeword(self, word: Sequence[int]) -> bool:
        """All ``2t`` syndromes vanish."""
        return not self._syndromes(np.asarray(word, dtype=np.int64)).any()

    # -- decoding ----------------------------------------------------------------

    def _syndromes(self, received: np.ndarray) -> np.ndarray:
        field = self.field
        nonzero = np.nonzero(received)[0]
        syndromes = np.zeros(self.n_parity, dtype=np.int64)
        if nonzero.size == 0:
            return syndromes
        degrees = (self.n - 1 - nonzero).astype(np.int64)
        logs = np.array(
            [field.log(int(received[p])) for p in nonzero], dtype=np.int64
        )
        for j in range(1, self.n_parity + 1):
            terms = field.pow_alpha_vec(logs + j * degrees)
            syndromes[j - 1] = np.bitwise_xor.reduce(terms)
        return syndromes

    def _berlekamp_massey(self, syndromes: np.ndarray) -> np.ndarray:
        field = self.field
        size = self.n_parity + 1
        c = np.zeros(size, dtype=np.int64)
        b = np.zeros(size, dtype=np.int64)
        c[0] = 1
        b[0] = 1
        length = 0
        shift = 1
        b_disc = 1
        for step in range(self.n_parity):
            d = int(syndromes[step])
            for i in range(1, length + 1):
                if c[i] and syndromes[step - i]:
                    d ^= field.mul(int(c[i]), int(syndromes[step - i]))
            if d == 0:
                shift += 1
                continue
            coef = field.div(d, b_disc)
            if 2 * length <= step:
                old_c = c.copy()
                for i in range(size - shift):
                    if b[i]:
                        c[i + shift] ^= field.mul(coef, int(b[i]))
                length = step + 1 - length
                b = old_c
                b_disc = d
                shift = 1
            else:
                for i in range(size - shift):
                    if b[i]:
                        c[i + shift] ^= field.mul(coef, int(b[i]))
                shift += 1
        degree = int(np.max(np.nonzero(c)[0])) if c.any() else 0
        if degree > length:
            raise DecodingError("error locator inconsistent (too noisy)")
        return c[: length + 1]

    def decode(self, received: Sequence[int]) -> np.ndarray:
        """Correct up to ``t`` symbol errors; returns the codeword.

        Raises :class:`DecodingError` beyond the correction radius.
        """
        r = np.asarray(list(received), dtype=np.int64).copy()
        if r.shape != (self.n,):
            raise ConfigurationError(
                f"received word must be {self.n} symbols, got {r.shape}"
            )
        field = self.field
        syndromes = self._syndromes(r)
        if not syndromes.any():
            return r
        locator = self._berlekamp_massey(syndromes)
        n_errors = locator.size - 1
        if n_errors == 0 or n_errors > self.t:
            raise DecodingError(
                f"{n_errors} symbol errors exceed capability t={self.t}"
            )
        # Chien search over the transmitted (shortened) positions.
        degrees = np.arange(self.n - 1, -1, -1, dtype=np.int64)
        points = (-degrees) % field.mult_order
        values = field.poly_eval_at_alpha_powers(locator, points)
        error_positions = np.nonzero(values == 0)[0]
        if error_positions.size != n_errors:
            raise DecodingError(
                f"locator of degree {n_errors} has "
                f"{error_positions.size} roots in the shortened range"
            )
        # Forney: Omega(x) = S(x) Lambda(x) mod x^{2t}; for b = 1,
        # e_k = Omega(X_k^{-1}) / Lambda'(X_k^{-1}).
        full = field.poly_mul(syndromes, locator)
        omega = full[: self.n_parity]
        # Formal derivative in characteristic 2: odd-degree terms only.
        lambda_prime = locator[1::2].copy()
        deriv = np.zeros(max(locator.size - 1, 1), dtype=np.int64)
        deriv[0 : locator.size - 1 : 2] = lambda_prime
        for p in error_positions:
            degree = self.n - 1 - int(p)
            x_inv = field.pow_alpha(-degree)
            num = field.poly_eval(omega, x_inv)
            den = field.poly_eval(deriv, x_inv)
            if den == 0:
                raise DecodingError("Forney denominator vanished")
            magnitude = field.div(num, den)
            if magnitude == 0:
                raise DecodingError("Forney produced a zero magnitude")
            r[p] ^= magnitude
        if not self.is_codeword(r):
            raise DecodingError("correction did not land on a codeword")
        return r

    def message_of(self, codeword: Sequence[int]) -> np.ndarray:
        """Systematic message symbols."""
        cw = np.asarray(list(codeword), dtype=np.int64)
        if cw.shape != (self.n,):
            raise ConfigurationError(
                f"codeword must be {self.n} symbols, got {cw.shape}"
            )
        return cw[: self.k].copy()

    def __repr__(self) -> str:
        return f"RSCode(GF(2^{self.m}), n={self.n}, k={self.k}, t={self.t})"
