"""Segment-level code-offset secure sketch (the protocol's ECC).

The preliminary keys ``K_M`` / ``K_R`` (SIV-D.2) disagree in whole
*segments*: segment ``i`` (``x_i || y_i``, ``2 l_b`` bits) is corrupted
exactly when seed bits ``sm_i != sr_i``.  The right erasure/error model
is therefore symbols-of-``2 l_b``-bits, and the right code is
Reed-Solomon.

Large keys make single-symbol fields impractical (a 2048-bit key has
58-bit segments), so we *interleave*: each segment is split into
``ceil(segment_bits / 8)`` byte-sized chunks, and chunk ``j`` of every
segment forms the ``j``-th RS(GF(256)) instance.  A mismatched segment
corrupts at most one symbol in every instance, so ``t`` segment
mismatches stay within every instance's radius — the construction
corrects ANY ``t`` segment mismatches deterministically, matching the
Eq. 4 semantics (success iff seed mismatch count <= floor(eta l_s)).

The sketch is the standard code-offset: ``sketch_j = symbols_j xor C_j``
for a fresh random codeword ``C_j`` per instance; it leaks at most the
code redundancy (``2t`` symbols per instance).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.crypto.rs import RSCode
from repro.errors import (
    ConfigurationError,
    DecodingError,
    KeyAgreementFailure,
)
from repro.utils.bits import BitSequence
from repro.utils.rng import ensure_rng

_SYMBOL_BITS = 8  # GF(256) symbols


class SegmentSecureSketch:
    """Code-offset sketch correcting whole-segment mismatches."""

    def __init__(
        self, n_segments: int, segment_bits: int, max_segment_errors: int
    ):
        if n_segments < 3:
            raise ConfigurationError("need at least 3 segments")
        if segment_bits < 1:
            raise ConfigurationError("segment_bits must be >= 1")
        if max_segment_errors < 1:
            raise ConfigurationError("max_segment_errors must be >= 1")
        if n_segments > (1 << _SYMBOL_BITS) - 1:
            raise ConfigurationError(
                f"{n_segments} segments exceed the GF(256) RS length bound"
            )
        if n_segments - 2 * max_segment_errors < 1:
            raise ConfigurationError(
                f"cannot correct {max_segment_errors} of {n_segments} "
                f"segments: RS needs n - 2t >= 1"
            )
        self.n_segments = int(n_segments)
        self.segment_bits = int(segment_bits)
        self.max_segment_errors = int(max_segment_errors)
        self.n_chunks = math.ceil(segment_bits / _SYMBOL_BITS)
        self.code = RSCode(_SYMBOL_BITS, n_segments, max_segment_errors)

    # -- geometry ---------------------------------------------------------------

    @property
    def n_bits(self) -> int:
        """Length of the keys this sketch reconciles."""
        return self.n_segments * self.segment_bits

    @property
    def tolerance(self) -> int:
        """Number of whole-segment mismatches always corrected."""
        return self.max_segment_errors

    @property
    def leakage_bits(self) -> int:
        """Upper bound on the entropy the public sketch reveals."""
        return self.n_chunks * self.code.n_parity * _SYMBOL_BITS

    def _to_symbols(self, key: BitSequence) -> np.ndarray:
        """(n_segments, n_chunks) array of GF(256) symbols, zero-padded."""
        padded_bits = self.n_chunks * _SYMBOL_BITS
        segments = key.array.reshape(self.n_segments, self.segment_bits)
        if padded_bits != self.segment_bits:
            pad = np.zeros(
                (self.n_segments, padded_bits - self.segment_bits),
                dtype=np.uint8,
            )
            segments = np.concatenate([segments, pad], axis=1)
        weights = 1 << np.arange(_SYMBOL_BITS - 1, -1, -1)
        return (
            segments.reshape(self.n_segments, self.n_chunks, _SYMBOL_BITS)
            @ weights
        ).astype(np.int64)

    def _from_symbols(self, symbols: np.ndarray) -> BitSequence:
        bits = (
            (symbols[..., None] >> np.arange(_SYMBOL_BITS - 1, -1, -1)) & 1
        ).astype(np.uint8)
        bits = bits.reshape(self.n_segments, -1)[:, : self.segment_bits]
        return BitSequence(bits.reshape(-1))

    def _check_key(self, key) -> BitSequence:
        key_bits = BitSequence(key)
        if len(key_bits) != self.n_bits:
            raise ConfigurationError(
                f"key must be {self.n_bits} bits, got {len(key_bits)}"
            )
        return key_bits

    # -- sketch / recover ---------------------------------------------------------

    def sketch(self, key, rng=None) -> BitSequence:
        """Public reconciliation message for ``key``."""
        rng = ensure_rng(rng)
        key_bits = self._check_key(key)
        symbols = self._to_symbols(key_bits)
        masked = np.empty_like(symbols)
        for j in range(self.n_chunks):
            masked[:, j] = symbols[:, j] ^ self.code.random_codeword(rng)
        return self._from_symbols_raw(masked)

    def _from_symbols_raw(self, symbols: np.ndarray) -> BitSequence:
        """Serialize the full padded symbol grid (sketch wire format)."""
        bits = (
            (symbols[..., None] >> np.arange(_SYMBOL_BITS - 1, -1, -1)) & 1
        ).astype(np.uint8)
        return BitSequence(bits.reshape(-1))

    def _to_symbols_raw(self, bits: BitSequence) -> np.ndarray:
        expected = self.n_segments * self.n_chunks * _SYMBOL_BITS
        if len(bits) != expected:
            raise ConfigurationError(
                f"sketch must be {expected} bits, got {len(bits)}"
            )
        weights = 1 << np.arange(_SYMBOL_BITS - 1, -1, -1)
        return (
            bits.array.reshape(self.n_segments, self.n_chunks, _SYMBOL_BITS)
            @ weights
        ).astype(np.int64)

    @property
    def sketch_bits(self) -> int:
        """Wire size of the public sketch."""
        return self.n_segments * self.n_chunks * _SYMBOL_BITS

    def recover(self, sketch, approximate_key) -> BitSequence:
        """Recover the sketch owner's exact key from a noisy copy.

        Raises :class:`KeyAgreementFailure` when more than ``tolerance``
        segments differ.
        """
        sketch_symbols = self._to_symbols_raw(BitSequence(sketch))
        approx_symbols = self._to_symbols(self._check_key(approximate_key))
        recovered = np.empty_like(approx_symbols)
        for j in range(self.n_chunks):
            noisy_codeword = sketch_symbols[:, j] ^ approx_symbols[:, j]
            try:
                codeword = self.code.decode(noisy_codeword)
            except DecodingError as exc:
                raise KeyAgreementFailure(
                    f"reconciliation failed on chunk {j}: {exc}"
                ) from exc
            recovered[:, j] = sketch_symbols[:, j] ^ codeword
        result = self._from_symbols(recovered)
        # Padding bits must reconstruct as zero; anything else means the
        # decoder landed on a wrong codeword.
        padded = self._to_symbols(result)
        if not np.array_equal(padded, recovered):
            raise KeyAgreementFailure(
                "reconciliation produced inconsistent padding"
            )
        return result

    def __repr__(self) -> str:
        return (
            f"SegmentSecureSketch(segments={self.n_segments}, "
            f"segment_bits={self.segment_bits}, "
            f"t={self.max_segment_errors})"
        )
