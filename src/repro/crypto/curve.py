"""Curve25519 from scratch: X25519 ladder + twisted-Edwards group law.

``repro.crypto.ecc`` is the paper's *error-correcting-code* secure
sketch; this module is the *elliptic-curve* arithmetic (the other
"ECC") that gives the OT a production-grade group.  A 512-bit MODP
modulus is a simulation toy (well under 128-bit security against
index calculus) and a real 128-bit MODP level means 2048-bit
exponentiations; Curve25519 reaches ~128-bit security with 255-bit
field elements, which is why the RFID/mobile key-establishment
literature assumes curve groups on constrained devices.

Two coordinate systems, cross-checked against each other:

* the **X25519 Montgomery ladder** of RFC 7748 (x-coordinate only,
  constant shape) — used for the RFC test vectors and as an
  independent reference for scalar multiplication;
* the **twisted-Edwards form** ``-x^2 + y^2 = 1 + d x^2 y^2``
  (birationally equivalent, RFC 8032 point arithmetic in extended
  homogeneous coordinates) — used by the OT, because Chou-Orlandi
  needs full group-law arithmetic: the receiver's masked reply is
  ``M_b = M_a + g^b`` and the sender's second key is
  ``(M_b - M_a) * a``, neither of which the x-only ladder can form.

Scalars are clamped per RFC 7748 (multiples of 8 in
``[2^254, 2^254 + 8*(2^251 - 1)]``): the cofactor-8 curve has small
torsion components the clamping annihilates.  Scalars are deliberately
*not* reduced mod ``L`` before variable-base multiplication, so the
multiple-of-8 property holds even against adversarial mixed-torsion
inputs.  Wire elements are the canonical 32-byte RFC 8032 encoding
(little-endian ``y`` with the sign of ``x`` in bit 255);
:func:`decode_point` rejects non-canonical (``y >= p``) and off-curve
encodings and :meth:`Curve25519Group.decode_element` additionally
rejects the eight small-order points.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.crypto.group import Group
from repro.errors import CryptoError, ProtocolError
from repro.utils.rng import ensure_rng

#: The field prime 2^255 - 19.
P = (1 << 255) - 19

#: Order of the prime-order subgroup (both forms share it).
L = (1 << 252) + 27742317777372353535851937790883648493

#: Twisted-Edwards ``d`` = -121665/121666 mod p.
D = (-121665 * pow(121666, P - 2, P)) % P

#: A square root of -1 (p = 5 mod 8), used in point decompression.
SQRT_M1 = pow(2, (P - 1) // 4, P)

#: Montgomery ladder constant (A - 2) / 4 for A = 486662.
_A24 = 121665

#: The RFC 7748 X25519 base point (u = 9), encoded.
X25519_BASE = (9).to_bytes(32, "little")


# -- X25519 (RFC 7748 s5) ------------------------------------------------------


def clamp_scalar(data: bytes) -> int:
    """Clamp 32 scalar bytes per RFC 7748 and return the integer."""
    if len(data) != 32:
        raise CryptoError("X25519 scalars are exactly 32 bytes")
    k = bytearray(data)
    k[0] &= 248
    k[31] &= 127
    k[31] |= 64
    return int.from_bytes(k, "little")


def x25519(scalar: bytes, u: bytes) -> bytes:
    """The X25519 function of RFC 7748 s5: ``scalar * u`` on the ladder."""
    if len(u) != 32:
        raise CryptoError("X25519 u-coordinates are exactly 32 bytes")
    k = clamp_scalar(scalar)
    x1 = int.from_bytes(u, "little") & ((1 << 255) - 1)
    x2, z2 = 1, 0
    x3, z3 = x1, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t
        a = (x2 + z2) % P
        aa = a * a % P
        b = (x2 - z2) % P
        bb = b * b % P
        e = (aa - bb) % P
        c = (x3 + z3) % P
        d = (x3 - z3) % P
        da = d * a % P
        cb = c * b % P
        x3 = (da + cb) % P
        x3 = x3 * x3 % P
        z3 = (da - cb) % P
        z3 = x1 * (z3 * z3 % P) % P
        x2 = aa * bb % P
        z2 = e * ((aa + _A24 * e) % P) % P
    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    return (x2 * pow(z2, P - 2, P) % P).to_bytes(32, "little")


# -- twisted-Edwards points (RFC 8032 s5.1) ------------------------------------


class EdwardsPoint:
    """A point in extended homogeneous coordinates ``(X : Y : Z : T)``.

    Invariants: ``Z != 0``, ``x = X/Z``, ``y = Y/Z``, ``T = XY/Z``.
    The formulas are the complete a=-1 set of RFC 8032 s5.1.4 — no
    exceptional cases, so add/double work for every input pair.
    """

    __slots__ = ("x", "y", "z", "t")

    def __init__(self, x: int, y: int, z: int, t: int):
        self.x = x
        self.y = y
        self.z = z
        self.t = t

    def add(self, other: "EdwardsPoint") -> "EdwardsPoint":
        a = (self.y - self.x) * (other.y - other.x) % P
        b = (self.y + self.x) * (other.y + other.x) % P
        c = 2 * self.t * other.t % P * D % P
        d = 2 * self.z * other.z % P
        e = (b - a) % P
        f = (d - c) % P
        g = (d + c) % P
        h = (b + a) % P
        return EdwardsPoint(e * f % P, g * h % P, f * g % P, e * h % P)

    def double(self) -> "EdwardsPoint":
        a = self.x * self.x % P
        b = self.y * self.y % P
        c = 2 * self.z * self.z % P
        h = (a + b) % P
        s = (self.x + self.y) % P
        e = (h - s * s) % P
        g = (a - b) % P
        f = (c + g) % P
        return EdwardsPoint(e * f % P, g * h % P, f * g % P, e * h % P)

    def negate(self) -> "EdwardsPoint":
        return EdwardsPoint((-self.x) % P, self.y, self.z, (-self.t) % P)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EdwardsPoint):
            return NotImplemented
        return (
            (self.x * other.z - other.x * self.z) % P == 0
            and (self.y * other.z - other.y * self.z) % P == 0
        )

    def __hash__(self) -> int:
        inv_z = pow(self.z, P - 2, P)
        return hash((self.x * inv_z % P, self.y * inv_z % P))

    def __repr__(self) -> str:
        return f"EdwardsPoint({self.encode().hex()})"

    def is_identity(self) -> bool:
        return self.x % P == 0 and (self.y - self.z) % P == 0

    def is_small_order(self) -> bool:
        """Order dividing the cofactor 8 (identity included)."""
        return self.double().double().double().is_identity()

    def is_on_curve(self) -> bool:
        x, y, z, t = self.x, self.y, self.z, self.t
        if z % P == 0:
            return False
        if (x * y - z * t) % P != 0:
            return False
        return (y * y - x * x - z * z - D * t * t % P) % P == 0

    def montgomery_u(self) -> int:
        """The birational map to Montgomery form: ``u = (1+y)/(1-y)``."""
        inv_z = pow(self.z, P - 2, P)
        y = self.y * inv_z % P
        if y == 1:
            raise CryptoError("the identity has no Montgomery u-coordinate")
        return (1 + y) * pow(1 - y, P - 2, P) % P

    def encode(self) -> bytes:
        """Canonical 32-byte encoding: LE ``y``, sign of ``x`` in bit 255."""
        inv_z = pow(self.z, P - 2, P)
        x = self.x * inv_z % P
        y = self.y * inv_z % P
        data = bytearray(y.to_bytes(32, "little"))
        if x & 1:
            data[31] |= 0x80
        return bytes(data)


def _identity() -> EdwardsPoint:
    return EdwardsPoint(0, 1, 1, 0)


def _recover_x(y: int, sign: int) -> int:
    """RFC 8032 s5.1.3 decompression; raises on off-curve encodings."""
    x2 = (y * y - 1) * pow(D * y * y + 1, P - 2, P) % P
    if x2 == 0:
        if sign:
            raise ProtocolError(
                "invalid curve25519 encoding: x = 0 with sign bit set"
            )
        return 0
    x = pow(x2, (P + 3) // 8, P)
    if x * x % P != x2:
        x = x * SQRT_M1 % P
    if x * x % P != x2:
        raise ProtocolError("curve25519 encoding is not on the curve")
    if (x & 1) != sign:
        x = P - x
    return x


def decode_point(data: bytes) -> EdwardsPoint:
    """Parse a canonical 32-byte encoding (small-order points allowed)."""
    if len(data) != 32:
        raise ProtocolError(
            f"curve25519 elements are 32 bytes, got {len(data)}"
        )
    sign = data[31] >> 7
    y = int.from_bytes(data, "little") & ((1 << 255) - 1)
    if y >= P:
        raise ProtocolError(
            "non-canonical curve25519 encoding (y >= p)"
        )
    x = _recover_x(y, sign)
    return EdwardsPoint(x, y, 1, x * y % P)


#: Base point: y = 4/5 (mod p) with even x — the RFC 8032 generator of
#: the order-L subgroup, the Edwards image of the Montgomery u = 9.
_BASE_Y = 4 * pow(5, P - 2, P) % P
_BASE_X = _recover_x(_BASE_Y, 0)
BASE_POINT = EdwardsPoint(_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % P)


def scalar_mul(point: EdwardsPoint, n: int) -> EdwardsPoint:
    """``n * point`` via a fixed 4-bit window (~255 doubles + 64 adds).

    Negative scalars reduce mod ``L`` (callers only pass them for
    subgroup points); non-negative scalars are used as-is so clamping's
    multiple-of-8 property survives adversarial mixed-torsion inputs.
    """
    if n < 0:
        n %= L
    if n == 0:
        return _identity()
    table: List[EdwardsPoint] = [_identity(), point]
    for _ in range(14):
        table.append(table[-1].add(point))
    nibbles = []
    while n:
        nibbles.append(n & 15)
        n >>= 4
    acc = table[nibbles[-1]]
    for digit in reversed(nibbles[:-1]):
        acc = acc.double().double().double().double()
        if digit:
            acc = acc.add(table[digit])
    return acc


def scalar_mul_naive(point: EdwardsPoint, n: int) -> EdwardsPoint:
    """Left-to-right double-and-add: the reference the window and comb
    paths are cross-checked against."""
    if n < 0:
        n %= L
    acc = _identity()
    for t in range(n.bit_length() - 1, -1, -1):
        acc = acc.double()
        if (n >> t) & 1:
            acc = acc.add(point)
    return acc


class EdwardsComb:
    """Fixed-base windowed table over Edwards additions.

    The exact shape of :class:`~repro.crypto.numbers.FixedBaseComb`
    with point addition for multiplication: digit row ``i`` holds
    ``(k << (window * i)) * base`` for every ``k < 2^window``, so a
    fixed-base scalar mult is one addition per non-zero digit and no
    doublings at all.  Window 4 over 256 bits costs 1024 stored points
    and ~64 additions per exponentiation, ~4x fewer point operations
    than the variable-base window.
    """

    __slots__ = ("base", "window", "digits", "_tables")

    def __init__(
        self, base: EdwardsPoint, bits: int = 256, window: int = 4
    ):
        if not (1 <= window <= 8):
            raise CryptoError("comb window must be in [1, 8]")
        self.base = base
        self.window = window
        self.digits = -(-bits // window)
        radix = 1 << window
        tables: List[List[EdwardsPoint]] = []
        b = base
        for _ in range(self.digits):
            row = [_identity(), b]
            for _ in range(radix - 2):
                row.append(row[-1].add(b))
            tables.append(row)
            b = row[-1].add(b)
        self._tables = tables

    @property
    def entries(self) -> int:
        return self.digits * (1 << self.window)

    def power(self, exponent: int) -> EdwardsPoint:
        """``exponent * base`` for exponents within the table range."""
        if exponent < 0 or exponent.bit_length() > self.digits * self.window:
            return scalar_mul(self.base, exponent % L)
        acc = _identity()
        mask = (1 << self.window) - 1
        i = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = acc.add(self._tables[i][digit])
            exponent >>= self.window
            i += 1
        return acc


class Curve25519Group(Group):
    """The prime-order subgroup of Curve25519 as an OT :class:`Group`.

    Elements are :class:`EdwardsPoint` objects; ``mul`` is point
    addition, ``div`` adds the negation, ``power`` is a fixed-base comb
    multiple of the base point, and exponents are RFC 7748 clamped
    scalars (so exponent arithmetic for the precomputed sender factor
    happens mod the subgroup order ``L``).
    """

    name = "curve25519"

    def __init__(self):
        self._comb: Optional[EdwardsComb] = None
        self._comb_lock = threading.Lock()

    def __eq__(self, other) -> bool:
        return isinstance(other, Curve25519Group)

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return "Curve25519Group()"

    @property
    def bits(self) -> int:
        return 255

    @property
    def exponent_modulus(self) -> int:
        return L

    def random_exponent(self, rng) -> int:
        rng = ensure_rng(rng)
        raw = bytes(rng.integers(0, 256, size=32, dtype=np.uint8))
        return clamp_scalar(raw)

    @property
    def comb_enabled(self) -> bool:
        return True

    def comb(self) -> EdwardsComb:
        table = self._comb
        if table is None:
            with self._comb_lock:
                table = self._comb
                if table is None:
                    table = EdwardsComb(BASE_POINT)
                    self._comb = table
        return table

    def power(self, exponent: int) -> EdwardsPoint:
        return self.comb().power(exponent % L)

    def power_naive(self, exponent: int) -> EdwardsPoint:
        return scalar_mul_naive(BASE_POINT, exponent % L)

    def exp(self, element: EdwardsPoint, exponent: int) -> EdwardsPoint:
        return scalar_mul(element, exponent)

    def mul(self, a: EdwardsPoint, b: EdwardsPoint) -> EdwardsPoint:
        return a.add(b)

    def div(self, a: EdwardsPoint, b: EdwardsPoint) -> EdwardsPoint:
        return a.add(b.negate())

    def contains(self, element) -> bool:
        return (
            isinstance(element, EdwardsPoint)
            and element.is_on_curve()
            and not element.is_small_order()
        )

    def encode_element(self, element: EdwardsPoint) -> bytes:
        return element.encode()

    def decode_element(self, data: bytes) -> EdwardsPoint:
        point = decode_point(data)
        if point.is_small_order():
            raise ProtocolError(
                "curve25519 element has small order"
            )
        return point


#: The module-level singleton the protocol/CLI use (value-equal to any
#: other instance; stocks and configs key off it like a group constant).
CURVE25519_GROUP = Curve25519Group()
