"""1-out-of-2 Oblivious Transfer (paper Fig. 3).

WaveKey uses the computationally efficient OT of Chou & Orlandi ("The
simplest protocol for oblivious transfer", LATINCRYPT 2015), in the form
the paper presents:

* the sender draws ``a`` and announces ``M_a = g^a mod u``;
* the receiver draws ``b`` and answers ``M_b = g^b`` to select secret 0,
  or ``M_b = M_a * g^b`` to select secret 1;
* the sender encrypts secret 0 under ``H(M_b^a)`` and secret 1 under
  ``H((M_b / M_a)^a)`` — exactly one of which equals the receiver's
  ``H(M_a^b)``.

The batched helpers run ``l_s`` independent instances and concatenate
their wire messages, which is how the protocol compresses all instances
into the three messages ``M_A``, ``M_B``, ``M_E`` of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashes import hash_group_element
from repro.crypto.numbers import DHGroup
from repro.crypto.symmetric import xor_cipher
from repro.errors import CryptoError, ProtocolError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class OTCiphertexts:
    """The sender's final message: both encrypted secrets."""

    e0: bytes
    e1: bytes


class OTSender:
    """Sender role of one 1-out-of-2 OT instance."""

    def __init__(self, group: DHGroup, rng=None):
        self.group = group
        self._rng = ensure_rng(rng)
        self._a: int = None
        self._m_a: int = None

    def announce(self) -> int:
        """Phase 1: draw ``a`` and return ``M_a = g^a``."""
        self._a = self.group.random_exponent(self._rng)
        self._m_a = self.group.power(self._a)
        return self._m_a

    def encrypt(
        self, m_b: int, secret0: bytes, secret1: bytes
    ) -> OTCiphertexts:
        """Phase 3: encrypt both secrets against the receiver's ``M_b``."""
        if self._a is None:
            raise ProtocolError("OTSender.encrypt before announce")
        if not self.group.contains(m_b):
            raise ProtocolError("receiver message outside the group")
        if len(secret0) != len(secret1):
            raise CryptoError("OT secrets must have equal length")
        k0 = hash_group_element(pow(m_b, self._a, self.group.prime))
        k1 = hash_group_element(
            pow(self.group.div(m_b, self._m_a), self._a, self.group.prime)
        )
        return OTCiphertexts(
            e0=xor_cipher(secret0, k0, b"ot0"),
            e1=xor_cipher(secret1, k1, b"ot1"),
        )


class OTReceiver:
    """Receiver role of one 1-out-of-2 OT instance."""

    def __init__(self, group: DHGroup, rng=None):
        self.group = group
        self._rng = ensure_rng(rng)
        self._b: int = None
        self._choice: int = None
        self._m_a: int = None

    def respond(self, m_a: int, choice: int) -> int:
        """Phase 2: answer ``M_a`` with ``M_b`` crafted for ``choice``."""
        if choice not in (0, 1):
            raise ProtocolError(f"OT choice must be 0 or 1, got {choice}")
        if not self.group.contains(m_a):
            raise ProtocolError("sender message outside the group")
        self._b = self.group.random_exponent(self._rng)
        self._choice = choice
        self._m_a = m_a
        m_b = self.group.power(self._b)
        if choice == 1:
            m_b = self.group.mul(m_a, m_b)
        return m_b

    def decrypt(self, ciphertexts: OTCiphertexts) -> bytes:
        """Phase 4: recover the selected secret."""
        if self._b is None:
            raise ProtocolError("OTReceiver.decrypt before respond")
        key = hash_group_element(
            pow(self._m_a, self._b, self.group.prime)
        )
        cipher = ciphertexts.e1 if self._choice else ciphertexts.e0
        context = b"ot1" if self._choice else b"ot0"
        return xor_cipher(cipher, key, context)


def run_batch_ot(
    group: DHGroup,
    secret_pairs: Sequence[Tuple[bytes, bytes]],
    choices: Sequence[int],
    sender_rng=None,
    receiver_rng=None,
) -> List[bytes]:
    """Run ``len(secret_pairs)`` OT instances end to end (test helper).

    The production protocol in :mod:`repro.protocol.agreement` drives the
    same :class:`OTSender`/:class:`OTReceiver` objects through explicit
    wire messages; this helper exists for direct unit testing of the
    primitive and for documentation.
    """
    if len(secret_pairs) != len(choices):
        raise ProtocolError("one choice bit per secret pair is required")
    sender_rng = ensure_rng(sender_rng)
    receiver_rng = ensure_rng(receiver_rng)
    outputs: List[bytes] = []
    for (secret0, secret1), choice in zip(secret_pairs, choices):
        sender = OTSender(group, sender_rng)
        receiver = OTReceiver(group, receiver_rng)
        m_a = sender.announce()
        m_b = receiver.respond(m_a, int(choice))
        outputs.append(receiver.decrypt(sender.encrypt(m_b, secret0, secret1)))
    return outputs
