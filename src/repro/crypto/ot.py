"""1-out-of-2 Oblivious Transfer (paper Fig. 3).

WaveKey uses the computationally efficient OT of Chou & Orlandi ("The
simplest protocol for oblivious transfer", LATINCRYPT 2015), in the form
the paper presents:

* the sender draws ``a`` and announces ``M_a = g^a mod u``;
* the receiver draws ``b`` and answers ``M_b = g^b`` to select secret 0,
  or ``M_b = M_a * g^b`` to select secret 1;
* the sender encrypts secret 0 under ``H(M_b^a)`` and secret 1 under
  ``H((M_b / M_a)^a)`` — exactly one of which equals the receiver's
  ``H(M_a^b)``.

The batched helpers run ``l_s`` independent instances and concatenate
their wire messages, which is how the protocol compresses all instances
into the three messages ``M_A``, ``M_B``, ``M_E`` of Fig. 4.

Fast path (two layers, both falling back to the naive arithmetic):

* the fixed-base exponentiations ``g^a`` / ``g^b`` run through the
  per-group :class:`~repro.crypto.numbers.FixedBaseComb` tables, and
  the sender's second key collapses to one multiplication via the
  precomputed factor ``M_a^{-a}`` (``(M_b / M_a)^a = M_b^a *
  M_a^{-a}``);
* both tuples can be drawn ready-made from an
  :class:`~repro.crypto.pool.OTMaterialPool` (the ``material=``
  arguments and the pool-aware batch helpers), leaving only the
  per-peer variable-base exponentiations on the request path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.group import Group
from repro.crypto.pool import (
    OTMaterialPool,
    ReceiverMaterial,
    SenderMaterial,
    sender_k1_factor,
)
from repro.crypto.symmetric import xor_cipher
from repro.errors import CryptoError, ProtocolError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class OTCiphertexts:
    """The sender's final message: both encrypted secrets."""

    e0: bytes
    e1: bytes


class OTSender:
    """Sender role of one 1-out-of-2 OT instance."""

    def __init__(self, group: Group, rng=None):
        self.group = group
        self._rng = ensure_rng(rng)
        self._a: Optional[int] = None
        self._m_a = None
        self._k1_factor = None

    def announce(self, material: Optional[SenderMaterial] = None):
        """Phase 1: draw ``a`` and return ``M_a = g^a``.

        With pooled ``material`` the tuple was precomputed off the hot
        path; claiming it enforces single use.
        """
        if material is not None:
            material.claim(self.group)
            self._a = material.a
            self._m_a = material.m_a
            self._k1_factor = material.k1_factor
        else:
            self._a = self.group.random_exponent(self._rng)
            self._m_a = self.group.power(self._a)
            # One extra comb exponentiation here converts encrypt()'s
            # second key from (inverse + pow) into one multiplication.
            # Without the comb the trade is a wash, so the naive clone
            # keeps the reference division-based arithmetic.
            self._k1_factor = (
                sender_k1_factor(self.group, self._a)
                if self.group.comb_enabled
                else None
            )
        return self._m_a

    def encrypt(self, m_b, secret0: bytes, secret1: bytes) -> OTCiphertexts:
        """Phase 3: encrypt both secrets against the receiver's ``M_b``."""
        if self._a is None:
            raise ProtocolError("OTSender.encrypt before announce")
        if not self.group.contains(m_b):
            raise ProtocolError("receiver message outside the group")
        if len(secret0) != len(secret1):
            raise CryptoError("OT secrets must have equal length")
        k0_element = self.group.exp(m_b, self._a)
        if self._k1_factor is not None:
            # (M_b / M_a)^a == M_b^a * M_a^{-a}, with M_a^{-a}
            # precomputed at announce/pool time.
            k1_element = self.group.mul(k0_element, self._k1_factor)
        else:
            k1_element = self.group.exp(
                self.group.div(m_b, self._m_a), self._a
            )
        k0 = self.group.hash_element(k0_element)
        k1 = self.group.hash_element(k1_element)
        return OTCiphertexts(
            e0=xor_cipher(secret0, k0, b"ot0"),
            e1=xor_cipher(secret1, k1, b"ot1"),
        )


class OTReceiver:
    """Receiver role of one 1-out-of-2 OT instance."""

    def __init__(self, group: Group, rng=None):
        self.group = group
        self._rng = ensure_rng(rng)
        self._b: Optional[int] = None
        self._choice: Optional[int] = None
        self._m_a = None

    def respond(
        self,
        m_a,
        choice: int,
        material: Optional[ReceiverMaterial] = None,
    ):
        """Phase 2: answer ``M_a`` with ``M_b`` crafted for ``choice``."""
        if choice not in (0, 1):
            raise ProtocolError(f"OT choice must be 0 or 1, got {choice}")
        if not self.group.contains(m_a):
            raise ProtocolError("sender message outside the group")
        if material is not None:
            material.claim(self.group)
            self._b = material.b
            m_b = material.g_b
        else:
            self._b = self.group.random_exponent(self._rng)
            m_b = self.group.power(self._b)
        self._choice = choice
        self._m_a = m_a
        if choice == 1:
            m_b = self.group.mul(m_a, m_b)
        return m_b

    def decrypt(self, ciphertexts: OTCiphertexts) -> bytes:
        """Phase 4: recover the selected secret."""
        if self._b is None:
            raise ProtocolError("OTReceiver.decrypt before respond")
        key = self.group.hash_element(
            self.group.exp(self._m_a, self._b)
        )
        cipher = ciphertexts.e1 if self._choice else ciphertexts.e0
        context = b"ot1" if self._choice else b"ot0"
        return xor_cipher(cipher, key, context)


# -- pool-aware batched helpers ------------------------------------------------


def batch_announce(
    senders: Sequence[OTSender],
    pool: Optional[OTMaterialPool] = None,
) -> list:
    """Announce all ``senders``, drawing warm tuples from ``pool``.

    The pool hands back at most what it holds; the remainder is
    computed inline (each shortfall already counted as a pool miss),
    so exhaustion degrades gracefully instead of erroring.
    """
    if not senders:
        return []
    materials: Sequence[Optional[SenderMaterial]] = ()
    if pool is not None:
        materials = pool.take_senders(senders[0].group, len(senders))
    return [
        sender.announce(materials[i] if i < len(materials) else None)
        for i, sender in enumerate(senders)
    ]


def batch_respond(
    receivers: Sequence[OTReceiver],
    elements: Sequence,
    choices: Sequence[int],
    pool: Optional[OTMaterialPool] = None,
) -> list:
    """Respond to a batch of announces, drawing warm tuples from ``pool``."""
    if len(receivers) != len(elements) or len(receivers) != len(choices):
        raise ProtocolError(
            "batch_respond requires one announce element and one choice "
            "per receiver"
        )
    if not receivers:
        return []
    materials: Sequence[Optional[ReceiverMaterial]] = ()
    if pool is not None:
        materials = pool.take_receivers(receivers[0].group, len(receivers))
    return [
        receiver.respond(
            element,
            int(choice),
            materials[i] if i < len(materials) else None,
        )
        for i, (receiver, element, choice) in enumerate(
            zip(receivers, elements, choices)
        )
    ]


def run_batch_ot(
    group: Group,
    secret_pairs: Sequence[Tuple[bytes, bytes]],
    choices: Sequence[int],
    sender_rng=None,
    receiver_rng=None,
    pool: Optional[OTMaterialPool] = None,
) -> List[bytes]:
    """Run ``len(secret_pairs)`` OT instances end to end (test helper).

    The production protocol in :mod:`repro.protocol.agreement` drives the
    same :class:`OTSender`/:class:`OTReceiver` objects through explicit
    wire messages; this helper exists for direct unit testing of the
    primitive and for documentation.  A ``pool`` exercises the same warm
    material fast path the protocol uses.
    """
    if len(secret_pairs) != len(choices):
        raise ProtocolError("one choice bit per secret pair is required")
    sender_rng = ensure_rng(sender_rng)
    receiver_rng = ensure_rng(receiver_rng)
    senders = [OTSender(group, sender_rng) for _ in secret_pairs]
    receivers = [OTReceiver(group, receiver_rng) for _ in secret_pairs]
    announces = batch_announce(senders, pool)
    responses = batch_respond(receivers, announces, choices, pool)
    outputs: List[bytes] = []
    for sender, receiver, m_b, (secret0, secret1) in zip(
        senders, receivers, responses, secret_pairs
    ):
        outputs.append(
            receiver.decrypt(sender.encrypt(m_b, secret0, secret1))
        )
    return outputs
