"""Binary BCH codes: construction, systematic encoding, BM decoding.

The paper reconciles the two preliminary keys with an unnamed "ECC" that
tolerates a bit-mismatch ratio ``eta`` (SIV-D.2, Eq. 4).  We use binary
BCH codes — the standard choice for fuzzy-extractor/secure-sketch
constructions — built from first principles:

* generator polynomial = lcm of the minimal polynomials of
  ``alpha^1 .. alpha^2t`` over GF(2) (computed via cyclotomic cosets);
* systematic encoding by polynomial division over GF(2);
* decoding via syndromes, Berlekamp-Massey, and a vectorized Chien
  search (binary codes need no Forney step — located errors are flipped).

Shortening is supported so the code length can match the key length
exactly: a shortened code is the subset of codewords whose high-degree
information bits are zero; those positions are simply never transmitted.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.crypto.gf2 import GF2m
from repro.errors import ConfigurationError, DecodingError
from repro.utils.bits import BitSequence
from repro.utils.rng import ensure_rng


def _cyclotomic_coset(i: int, n: int) -> frozenset:
    """The 2-cyclotomic coset of ``i`` modulo ``n``."""
    coset = set()
    x = i % n
    while x not in coset:
        coset.add(x)
        x = (2 * x) % n
    return frozenset(coset)


def _gf2_poly_mod(dividend: np.ndarray, divisor: np.ndarray) -> np.ndarray:
    """Remainder of GF(2)[x] division; index 0 = highest degree.

    ``divisor[0]`` must be 1.  Returns the remainder with
    ``len(divisor) - 1`` coefficients (high degree first).
    """
    r = dividend.astype(np.uint8).copy()
    g = divisor.astype(np.uint8)
    steps = r.size - g.size + 1
    for i in range(steps):
        if r[i]:
            r[i : i + g.size] ^= g
    return r[steps:]


class BCHCode:
    """A (possibly shortened) binary BCH code.

    Parameters
    ----------
    m:
        Field degree; the parent code has length ``2^m - 1``.
    t:
        Designed error-correction capability (bits per codeword).
    length:
        Transmitted codeword length after shortening (defaults to the
        full ``2^m - 1``).

    Codewords are bit arrays with the **message first** (high-degree
    coefficients) and parity last, matching systematic encoding.
    """

    def __init__(self, m: int, t: int, length: Optional[int] = None):
        if t < 1:
            raise ConfigurationError(f"t must be >= 1, got {t}")
        self.field = GF2m(m)
        self.m = int(m)
        self.t = int(t)
        self.n_full = self.field.mult_order

        self.generator = self._build_generator()
        self.n_parity = self.generator.size - 1
        self.k_full = self.n_full - self.n_parity
        if self.k_full < 1:
            raise ConfigurationError(
                f"BCH(m={m}, t={t}) has no information bits "
                f"(parity {self.n_parity} >= n {self.n_full})"
            )

        self.length = self.n_full if length is None else int(length)
        if not (self.n_parity < self.length <= self.n_full):
            raise ConfigurationError(
                f"shortened length {self.length} must be in "
                f"({self.n_parity}, {self.n_full}]"
            )
        self.k = self.length - self.n_parity

    # -- construction ----------------------------------------------------------

    def _build_generator(self) -> np.ndarray:
        """Generator polynomial over GF(2), index 0 = highest degree."""
        field = self.field
        seen: Set[frozenset] = set()
        # Generator as a GF(2^m) polynomial, index = degree (low first).
        g = np.array([1], dtype=np.int64)
        for i in range(1, 2 * self.t + 1):
            coset = _cyclotomic_coset(i, self.n_full)
            if coset in seen:
                continue
            seen.add(coset)
            # Minimal polynomial: product of (x + alpha^j) over the coset.
            minimal = np.array([1], dtype=np.int64)
            for j in sorted(coset):
                factor = np.array(
                    [field.pow_alpha(j), 1], dtype=np.int64
                )  # alpha^j + x
                minimal = field.poly_mul(minimal, factor)
            if any(c not in (0, 1) for c in minimal):
                raise ConfigurationError(
                    "minimal polynomial has coefficients outside GF(2)"
                )
            g = field.poly_mul(g, minimal)
        if any(c not in (0, 1) for c in g):
            raise ConfigurationError("generator not a GF(2) polynomial")
        # Convert to high-degree-first bit array.
        return g[::-1].astype(np.uint8)

    # -- encoding ----------------------------------------------------------------

    def encode(self, message) -> BitSequence:
        """Systematic encoding of a ``k``-bit message."""
        msg = BitSequence(message)
        if len(msg) != self.k:
            raise ConfigurationError(
                f"message must be {self.k} bits, got {len(msg)}"
            )
        shifted = np.concatenate(
            [msg.array, np.zeros(self.n_parity, dtype=np.uint8)]
        )
        parity = _gf2_poly_mod(shifted, self.generator)
        return BitSequence(np.concatenate([msg.array, parity]))

    def random_codeword(self, rng=None) -> BitSequence:
        """A uniformly random codeword (for the code-offset sketch)."""
        rng = ensure_rng(rng)
        return self.encode(BitSequence.random(self.k, rng))

    def is_codeword(self, word) -> bool:
        """Whether ``word`` has an all-zero remainder mod the generator."""
        bits = BitSequence(word)
        if len(bits) != self.length:
            return False
        remainder = _gf2_poly_mod(bits.array, self.generator)
        return not remainder.any()

    # -- decoding -------------------------------------------------------------

    def _syndromes(self, received: np.ndarray) -> np.ndarray:
        """``S_j = r(alpha^j)`` for ``j = 1 .. 2t``.

        Bit ``p`` of the transmitted word is the coefficient of
        ``x^(length - 1 - p)``; shortened (never-transmitted) positions
        are zero and contribute nothing.
        """
        nonzero = np.nonzero(received)[0]
        degrees = (self.length - 1 - nonzero).astype(np.int64)
        syndromes = np.zeros(2 * self.t, dtype=np.int64)
        if degrees.size == 0:
            return syndromes
        field = self.field
        for j in range(1, 2 * self.t + 1):
            terms = field.pow_alpha_vec(j * degrees)
            syndromes[j - 1] = np.bitwise_xor.reduce(terms)
        return syndromes

    def _berlekamp_massey(self, syndromes: np.ndarray) -> np.ndarray:
        """Error-locator polynomial (index = degree, low first)."""
        field = self.field
        c = np.zeros(2 * self.t + 1, dtype=np.int64)
        b = np.zeros(2 * self.t + 1, dtype=np.int64)
        c[0] = 1
        b[0] = 1
        length = 0
        shift = 1
        b_disc = 1
        for n in range(2 * self.t):
            # Discrepancy d = S_n + sum_{i=1..L} c_i S_{n-i}.
            d = int(syndromes[n])
            for i in range(1, length + 1):
                if c[i] and syndromes[n - i]:
                    d ^= field.mul(int(c[i]), int(syndromes[n - i]))
            if d == 0:
                shift += 1
                continue
            coef = field.div(d, b_disc)
            if 2 * length <= n:
                old_c = c.copy()
                for i in range(0, 2 * self.t + 1 - shift):
                    if b[i]:
                        c[i + shift] ^= field.mul(coef, int(b[i]))
                length = n + 1 - length
                b = old_c
                b_disc = d
                shift = 1
            else:
                for i in range(0, 2 * self.t + 1 - shift):
                    if b[i]:
                        c[i + shift] ^= field.mul(coef, int(b[i]))
                shift += 1
        degree = np.max(np.nonzero(c)[0]) if c.any() else 0
        if degree > length:
            raise DecodingError("error locator inconsistent (too noisy)")
        return c[: length + 1]

    def decode(self, received) -> BitSequence:
        """Correct up to ``t`` bit errors; returns the nearest codeword.

        Raises :class:`repro.errors.DecodingError` when the word lies
        outside every decoding sphere (more than ``t`` errors), which the
        key-agreement protocol converts into an agreement failure.
        """
        word = BitSequence(received)
        if len(word) != self.length:
            raise ConfigurationError(
                f"received word must be {self.length} bits, got {len(word)}"
            )
        r = word.array.copy()
        syndromes = self._syndromes(r)
        if not syndromes.any():
            return BitSequence(r)
        locator = self._berlekamp_massey(syndromes)
        n_errors = locator.size - 1
        if n_errors == 0 or n_errors > self.t:
            raise DecodingError(
                f"{n_errors} errors exceeds capability t={self.t}"
            )
        # Chien search: bit position p (degree d = length-1-p) is in error
        # iff locator(alpha^{-d}) == 0.
        degrees = np.arange(self.length - 1, -1, -1, dtype=np.int64)
        points = (-degrees) % self.field.mult_order
        values = self.field.poly_eval_at_alpha_powers(locator, points)
        error_positions = np.nonzero(values == 0)[0]
        if error_positions.size != n_errors:
            raise DecodingError(
                f"locator of degree {n_errors} has "
                f"{error_positions.size} roots in the shortened range"
            )
        r[error_positions] ^= 1
        corrected = BitSequence(r)
        if not self.is_codeword(corrected):
            raise DecodingError("correction did not land on a codeword")
        return corrected

    def message_of(self, codeword) -> BitSequence:
        """Extract the systematic message bits of a codeword."""
        bits = BitSequence(codeword)
        if len(bits) != self.length:
            raise ConfigurationError(
                f"codeword must be {self.length} bits, got {len(bits)}"
            )
        return bits[: self.k]

    def __repr__(self) -> str:
        return (
            f"BCHCode(m={self.m}, t={self.t}, length={self.length}, "
            f"k={self.k})"
        )


def design_bch(n_bits: int, t: int) -> BCHCode:
    """Smallest-field BCH code of exactly ``n_bits`` length correcting
    ``t`` errors (used by the reconciliation layer to match the key
    length)."""
    if n_bits < 2:
        raise ConfigurationError("code length must be >= 2 bits")
    m_min = max(3, int(np.ceil(np.log2(n_bits + 1))))
    last_error = None
    for m in range(m_min, 15):
        if (1 << m) - 1 < n_bits:
            continue
        try:
            code = BCHCode(m, t)
        except ConfigurationError as exc:
            last_error = exc
            continue
        if code.n_parity < n_bits:
            return BCHCode(m, t, length=n_bits)
        last_error = ConfigurationError(
            f"BCH(m={m}, t={t}) parity {code.n_parity} >= {n_bits}"
        )
    raise ConfigurationError(
        f"no supported BCH code covers n_bits={n_bits}, t={t}: {last_error}"
    )
