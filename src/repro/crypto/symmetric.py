"""Symmetric encryption for OT payloads.

The OT sender encrypts each secret under a hash-derived key (Fig. 3's
``E``).  Because every OT instance derives a fresh key, a keystream XOR
is a one-time pad here; the keystream comes from
:func:`repro.crypto.hashes.hkdf_stream`.
"""

from __future__ import annotations

from repro.crypto.hashes import hkdf_stream
from repro.errors import CryptoError


def xor_cipher(data: bytes, key: bytes, context: bytes = b"") -> bytes:
    """Encrypt/decrypt ``data`` with the keystream of ``key``.

    XOR is an involution, so the same call decrypts.
    """
    if not key:
        raise CryptoError("empty symmetric key")
    stream = hkdf_stream(key, len(data), context)
    # One big-int XOR instead of a Python-level loop: int.from_bytes /
    # int.to_bytes run in C, so the per-byte interpreter overhead
    # disappears and large payloads XOR at memory bandwidth.
    n = len(data)
    if n == 0:
        return b""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream[:n], "big")
    ).to_bytes(n, "big")
