"""Warm OT material: precomputed exponent pairs, refilled off the hot path.

Every WaveKey establishment runs ``l_s`` (~100) Chou-Orlandi OT
instances in each direction, and each instance begins with a fixed-base
exponentiation nothing about the peer influences: the sender's
``M_a = g^a`` and the receiver's ``g^b``.  Both are therefore
*precomputable* — the "simplest OT" structure the paper relies on makes
the sender's ``(a, M_a)`` reusable-ahead-of-time as long as each tuple
is consumed exactly once.

:class:`OTMaterialPool` keeps bounded per-group stocks of

* :class:`SenderMaterial` — ``(a, M_a, k1_factor)`` where ``k1_factor =
  M_a^{-a} = g^{-a^2}`` lets the sender derive its second OT key with
  one modular multiplication instead of a modular inverse plus a full
  exponentiation (``(M_b / M_a)^a = M_b^a * M_a^{-a}``);
* :class:`ReceiverMaterial` — ``(b, g^b)``.

A background refill thread tops stocks up to their high watermark
whenever a take drains them below the low watermark, so the request
path performs only the per-peer *variable-base* exponentiations.  An
empty stock is never an error: takes simply return fewer tuples than
asked and the caller computes the remainder inline (counted as
``crypto.pool.miss``) — pool exhaustion degrades to exactly the
pre-pool cost, it never fails a session.

Material is single-use by construction: :meth:`~SenderMaterial.claim`
flips a consumed flag and raises :class:`~repro.errors.CryptoError` on
any second claim, so one tuple can never key two sessions (reusing an
OT exponent across sessions would let a peer correlate them).

Observability: ``crypto.pool.hit`` / ``crypto.pool.miss`` /
``crypto.pool.produced`` counters and ``crypto.pool.depth`` gauges are
labeled by material ``kind`` and ``group``, so operators can tell the
stocks apart when a server keeps both a MODP and a curve group warm;
refills record a group-labeled ``crypto.pool.refill_s`` histogram and run under a
``crypto.pool.refill`` span so exhaustion shows up in traces.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.crypto.group import Group
from repro.errors import ConfigurationError, CryptoError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, resolve_tracer
from repro.utils.rng import ensure_rng

#: Residues produced per lock window during a refill, so a refill
#: never starves takers (or the GIL) for long stretches.
_REFILL_CHUNK = 16


def sender_k1_factor(group: Group, a: int):
    """``M_a^{-a} = g^{-a^2}`` for a sender exponent ``a``.

    Computed via the *fixed-base* path (the exponent is reduced mod
    :attr:`~repro.crypto.group.Group.exponent_modulus` — ``p - 1`` by
    Fermat for MODP, the subgroup order ``L`` for the curve), so
    deriving it costs one comb exponentiation — cheap at
    material-creation time, and it converts the sender's second OT key
    from ``inverse + exp`` into a single group multiplication on the
    hot path.
    """
    return group.power((-a * a) % group.exponent_modulus)


class SenderMaterial:
    """One precomputed, single-use sender tuple ``(a, M_a, k1_factor)``."""

    __slots__ = ("group", "a", "m_a", "k1_factor", "_consumed")

    def __init__(self, group: Group, a: int, m_a, k1_factor):
        self.group = group
        self.a = a
        self.m_a = m_a
        self.k1_factor = k1_factor
        self._consumed = False

    def claim(self, group: Group) -> None:
        """Mark consumed; reuse or cross-group use is a hard error."""
        if group != self.group:
            raise CryptoError(
                f"OT material for group {self.group.name!r} used with "
                f"group {group.name!r}"
            )
        if self._consumed:
            raise CryptoError(
                "OT sender material reused: each (a, M_a) tuple keys "
                "exactly one session"
            )
        self._consumed = True


class ReceiverMaterial:
    """One precomputed, single-use receiver tuple ``(b, g^b)``."""

    __slots__ = ("group", "b", "g_b", "_consumed")

    def __init__(self, group: Group, b: int, g_b):
        self.group = group
        self.b = b
        self.g_b = g_b
        self._consumed = False

    def claim(self, group: Group) -> None:
        """Mark consumed; reuse or cross-group use is a hard error."""
        if group != self.group:
            raise CryptoError(
                f"OT material for group {self.group.name!r} used with "
                f"group {group.name!r}"
            )
        if self._consumed:
            raise CryptoError(
                "OT receiver material reused: each (b, g^b) tuple keys "
                "exactly one session"
            )
        self._consumed = True


class _GroupStock:
    """Per-group double stock (sender + receiver) with one lock."""

    __slots__ = ("group", "senders", "receivers", "lock")

    def __init__(self, group: Group):
        self.group = group
        self.senders: Deque[SenderMaterial] = deque()
        self.receivers: Deque[ReceiverMaterial] = deque()
        self.lock = threading.Lock()


class OTMaterialPool:
    """Bounded, background-refilled stocks of precomputed OT material.

    Parameters
    ----------
    depth:
        High watermark: target number of tuples of *each* kind held per
        group.
    low_watermark:
        Refill trigger: when a take leaves a stock below this depth the
        refill thread is woken.  Defaults to ``depth // 2``.
    refill_interval_s:
        Idle poll period of the refill thread (it is also woken
        immediately on watermark breach).
    rng:
        Injectable randomness (int seed / numpy Generator / None) so
        tests can pin the produced exponents.
    """

    def __init__(
        self,
        depth: int = 256,
        low_watermark: Optional[int] = None,
        refill_interval_s: float = 0.05,
        rng=None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if depth < 1:
            raise ConfigurationError("pool depth must be >= 1")
        if low_watermark is None:
            low_watermark = depth // 2
        if not (0 <= low_watermark < depth):
            raise ConfigurationError(
                "low_watermark must be in [0, depth)"
            )
        if refill_interval_s <= 0:
            raise ConfigurationError("refill_interval_s must be > 0")
        self.depth = depth
        self.low_watermark = low_watermark
        self.refill_interval_s = refill_interval_s
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self._rng = ensure_rng(rng)
        self._rng_lock = threading.Lock()
        self._stocks: Dict[Group, _GroupStock] = {}
        self._stocks_lock = threading.Lock()
        self._wake = threading.Event()
        self._running = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "OTMaterialPool":
        """Launch the background refill worker (idempotent)."""
        if self._running:
            return self
        self._running = True
        self._thread = threading.Thread(
            target=self._refill_loop, name="ot-pool-refill", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the refill worker; takes keep working (as misses)."""
        if not self._running:
            return
        self._running = False
        self._wake.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "OTMaterialPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- stocks ------------------------------------------------------------

    def register(self, group: Group) -> None:
        """Key a stock for ``group`` (refilled from the next cycle on)."""
        self._stock(group)
        self._wake.set()

    def _stock(self, group: Group) -> _GroupStock:
        stock = self._stocks.get(group)
        if stock is None:
            with self._stocks_lock:
                stock = self._stocks.get(group)
                if stock is None:
                    stock = _GroupStock(group)
                    self._stocks[group] = stock
        return stock

    def depths(self, group: Group) -> Tuple[int, int]:
        """Current ``(sender, receiver)`` stock depth for ``group``."""
        stock = self._stock(group)
        with stock.lock:
            return len(stock.senders), len(stock.receivers)

    # -- takes (hot path) --------------------------------------------------

    def take_senders(self, group: Group, n: int) -> List[SenderMaterial]:
        """Pop up to ``n`` sender tuples; shortfalls are counted misses."""
        return self._take(group, n, "sender")

    def take_receivers(
        self, group: Group, n: int
    ) -> List[ReceiverMaterial]:
        """Pop up to ``n`` receiver tuples; shortfalls are counted misses."""
        return self._take(group, n, "receiver")

    def _take(self, group: Group, n: int, kind: str) -> list:
        if n < 0:
            raise ConfigurationError("take count must be >= 0")
        stock = self._stock(group)
        queue = stock.senders if kind == "sender" else stock.receivers
        taken: list = []
        with stock.lock:
            while queue and len(taken) < n:
                taken.append(queue.popleft())
            depth = len(queue)
        hits, misses = len(taken), n - len(taken)
        labels = {"kind": kind, "group": group.name}
        if hits:
            self.metrics.counter("crypto.pool.hit", labels=labels).inc(hits)
        if misses:
            self.metrics.counter("crypto.pool.miss", labels=labels).inc(misses)
        self._set_depth(group, kind, depth)
        if depth < self.low_watermark:
            self._wake.set()
        return taken

    def _set_depth(self, group: Group, kind: str, depth: int) -> None:
        self.metrics.gauge(
            "crypto.pool.depth", labels={"kind": kind, "group": group.name}
        ).set(depth)

    # -- production (off the hot path) -------------------------------------

    def _make_sender(self, group: Group, rng) -> SenderMaterial:
        a = group.random_exponent(rng)
        return SenderMaterial(
            group, a, group.power(a), sender_k1_factor(group, a)
        )

    def _make_receiver(self, group: Group, rng) -> ReceiverMaterial:
        b = group.random_exponent(rng)
        return ReceiverMaterial(group, b, group.power(b))

    def fill(self, group: Optional[Group] = None) -> int:
        """Synchronously top every (or one) stock up to ``depth``.

        Returns the number of tuples produced.  Production happens in
        chunks of :data:`_REFILL_CHUNK` outside the stock lock so a
        concurrent take is never blocked behind a long refill.
        """
        if group is not None:
            stocks = [self._stock(group)]
        else:
            with self._stocks_lock:
                stocks = list(self._stocks.values())
        produced_total = 0
        for stock in stocks:
            produced = self._fill_stock(stock)
            produced_total += produced
        return produced_total

    def _fill_stock(self, stock: _GroupStock) -> int:
        group = stock.group
        produced = {"sender": 0, "receiver": 0}
        start = time.monotonic()
        while True:
            with stock.lock:
                want_s = self.depth - len(stock.senders)
                want_r = self.depth - len(stock.receivers)
            if want_s <= 0 and want_r <= 0:
                break
            batch_s: List[SenderMaterial] = []
            batch_r: List[ReceiverMaterial] = []
            with self._rng_lock:
                for _ in range(min(want_s, _REFILL_CHUNK)):
                    batch_s.append(self._make_sender(group, self._rng))
                for _ in range(min(want_r, _REFILL_CHUNK)):
                    batch_r.append(self._make_receiver(group, self._rng))
            with stock.lock:
                stock.senders.extend(batch_s)
                stock.receivers.extend(batch_r)
                depth_s = len(stock.senders)
                depth_r = len(stock.receivers)
            produced["sender"] += len(batch_s)
            produced["receiver"] += len(batch_r)
            self._set_depth(group, "sender", depth_s)
            self._set_depth(group, "receiver", depth_r)
        total = produced["sender"] + produced["receiver"]
        if total:
            elapsed = time.monotonic() - start
            self.metrics.histogram(
                "crypto.pool.refill_s", labels={"group": group.name}
            ).observe(elapsed)
            for kind, count in produced.items():
                if count:
                    self.metrics.counter(
                        "crypto.pool.produced",
                        labels={"kind": kind, "group": group.name},
                    ).inc(count)
            tracer = resolve_tracer(self.tracer)
            if tracer.enabled:
                tracer.record_span(
                    "crypto.pool.refill",
                    start_s=start,
                    end_s=start + elapsed,
                    group=group.name,
                    produced=total,
                )
        return total

    def _refill_loop(self) -> None:
        while self._running:
            self._wake.wait(self.refill_interval_s)
            self._wake.clear()
            if not self._running:
                return
            self.fill()
