"""The abstract group interface the OT stack is generic over.

The Chou-Orlandi OT (paper Fig. 3) only needs a cyclic group with a
fixed generator: announce is ``g^a``, the receiver's masked reply is
``g^b`` or ``M_a * g^b``, and both key derivations are one variable-base
exponentiation (plus, on the sender side, one division — or one
multiplication by the precomputed ``M_a^{-a}``).  :class:`Group`
captures exactly that contract so the same :class:`~repro.crypto.ot`
machinery runs over the multiplicative MODP groups of
:mod:`repro.crypto.numbers` *and* the Curve25519 group of
:mod:`repro.crypto.curve` (where "multiplication" is point addition and
"exponentiation" is scalar multiplication — the abstract operation
names stay multiplicative to match the paper's notation).

Group elements are opaque to callers: integers for MODP, Edwards
points for the curve.  The wire and the key-derivation hash only ever
see :meth:`Group.encode_element` bytes, and
:meth:`Group.decode_element` is the single validation chokepoint for
untrusted peer material (range / on-curve / small-order checks live
there and in :meth:`Group.contains`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto.hashes import hash_group_element
from repro.errors import ConfigurationError


class Group(ABC):
    """A cyclic group with a fixed generator, written multiplicatively.

    Implementations: :class:`~repro.crypto.numbers.DHGroup` (integers
    mod a safe prime) and
    :class:`~repro.crypto.curve.Curve25519Group` (the prime-order
    subgroup of Curve25519 in twisted-Edwards form).
    """

    #: Stable identifier: names the group on the wire (``Hello``
    #: negotiation), in metrics labels, and in the key-derivation
    #: domain separation of :meth:`hash_element`.
    name: str

    # -- scalars -----------------------------------------------------------

    @property
    @abstractmethod
    def exponent_modulus(self) -> int:
        """The modulus exponent arithmetic lives in (``p - 1`` for MODP
        by Fermat, the subgroup order ``L`` for the curve)."""

    @abstractmethod
    def random_exponent(self, rng) -> int:
        """Draw a secret exponent under this group's policy."""

    # -- fixed-base exponentiation (the precomputable hot path) ------------

    @property
    @abstractmethod
    def comb_enabled(self) -> bool:
        """Whether :meth:`power` routes through a precomputed table."""

    @abstractmethod
    def power(self, exponent: int):
        """``g^exponent`` via the fixed-base fast path."""

    @abstractmethod
    def power_naive(self, exponent: int):
        """``g^exponent`` via the reference (table-free) arithmetic."""

    # -- element arithmetic ------------------------------------------------

    @abstractmethod
    def exp(self, element, exponent: int):
        """``element^exponent`` (variable base; no table)."""

    @abstractmethod
    def mul(self, a, b):
        """The group operation (modular product / point addition)."""

    @abstractmethod
    def div(self, a, b):
        """``a * b^{-1}`` (modular inverse / point subtraction)."""

    @abstractmethod
    def contains(self, element) -> bool:
        """Whether ``element`` is an acceptable peer element (range /
        on-curve / small-order checks)."""

    # -- wire representation -----------------------------------------------

    @abstractmethod
    def encode_element(self, element) -> bytes:
        """Canonical byte encoding (what the wire and the KDF see)."""

    @abstractmethod
    def decode_element(self, data: bytes):
        """Parse untrusted peer bytes into a validated element.

        Raises :class:`~repro.errors.ProtocolError` on anything that
        is not the canonical encoding of an acceptable element.
        """

    # -- key derivation ----------------------------------------------------

    def hash_element(self, element, context: bytes = b"wavekey-ot") -> bytes:
        """Derive a 32-byte key from ``element`` (the ``H`` of Fig. 3).

        Hashes the canonical encoding with the group id mixed into the
        domain separation, so the same scalar relationship in two
        different groups can never yield the same symmetric key.
        """
        return hash_group_element(
            self.encode_element(element), context, group_id=self.name
        )


#: CLI spellings accepted by :func:`resolve_group`.
GROUP_CHOICES = ("modp512", "curve25519")


def resolve_group(name: str) -> Group:
    """Map a CLI/wire group name to its module-level group instance.

    Accepts the CLI spellings (``modp512``, ``curve25519``) and the
    wire ids (``wavekey-512``, ``curve25519``).  Imports lazily so the
    registry creates no module cycle with the implementations.
    """
    if name in ("modp512", "wavekey-512"):
        from repro.crypto.numbers import WAVEKEY_GROUP_512

        return WAVEKEY_GROUP_512
    if name == "curve25519":
        from repro.crypto.curve import CURVE25519_GROUP

        return CURVE25519_GROUP
    raise ConfigurationError(
        f"unknown group {name!r} (choices: {', '.join(GROUP_CHOICES)})"
    )
