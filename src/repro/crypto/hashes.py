"""Hashing, HMAC, and key derivation.

The OT protocol hashes group elements into symmetric keys; the key
confirmation step HMACs a nonce under the agreed key (paper Fig. 4).
All constructions are standard SHA-256-based.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Union

from repro.errors import CryptoError


def _int_to_bytes(value: int) -> bytes:
    value = int(value)
    if value < 0:
        raise CryptoError("group elements are non-negative")
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def hash_group_element(
    element: Union[int, bytes],
    context: bytes = b"wavekey-ot",
    group_id: str = "",
) -> bytes:
    """Derive a 32-byte symmetric key from a group element (the ``H`` of
    Fig. 3), domain-separated by ``context`` and ``group_id``.

    ``element`` is the canonical encoding produced by
    :meth:`~repro.crypto.group.Group.encode_element` (a bare int is
    accepted and minimally big-endian encoded, for MODP callers).  A
    non-empty ``group_id`` is mixed into the separation so the same
    exponent relationship in two different groups can never derive the
    same key; the empty default keeps the historical digest layout.
    """
    h = hashlib.sha256()
    h.update(context)
    if group_id:
        h.update(b"|")
        h.update(group_id.encode("ascii"))
    h.update(b"|")
    h.update(element if isinstance(element, bytes) else _int_to_bytes(element))
    return h.digest()


def hkdf_stream(key: bytes, n_bytes: int, context: bytes = b"") -> bytes:
    """Expand ``key`` into an ``n_bytes`` keystream (counter-mode SHA-256).

    Used as the encryption pad for OT payloads: with a fresh key per OT
    instance this is a one-time pad keyed by the DH-derived secret.
    """
    if n_bytes < 0:
        raise CryptoError("keystream length must be non-negative")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < n_bytes:
        h = hashlib.sha256()
        h.update(key)
        h.update(context)
        h.update(counter.to_bytes(4, "big"))
        blocks.append(h.digest())
        counter += 1
    return b"".join(blocks)[:n_bytes]


def hmac_digest(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 of ``message`` under ``key``."""
    return hmac.new(key, message, hashlib.sha256).digest()


def hmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time HMAC verification."""
    return hmac.compare_digest(hmac_digest(key, message), tag)
