"""Finite-field arithmetic over GF(2^m).

Backs the BCH error-correcting codes.  Elements are represented as
integers in ``[0, 2^m)`` (polynomial basis); multiplication and division
go through discrete log/antilog tables built once per field, with numpy
vectorized variants for the hot paths (syndrome computation and Chien
search over thousands of positions).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError, CryptoError

#: Primitive polynomials for GF(2^m), m = 3..14 (low bits beyond x^m).
#: Encoded as integers including the x^m term, e.g. m=4: x^4 + x + 1 = 0b10011.
_PRIMITIVE_POLYS: Dict[int, int] = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
}


class GF2m:
    """The field GF(2^m) with log/antilog tables."""

    def __init__(self, m: int):
        if m not in _PRIMITIVE_POLYS:
            raise ConfigurationError(
                f"GF(2^m) supported for m in "
                f"{sorted(_PRIMITIVE_POLYS)}, got {m}"
            )
        self.m = int(m)
        self.order = 1 << m
        self.mult_order = self.order - 1  # order of the multiplicative group
        self.primitive_poly = _PRIMITIVE_POLYS[m]

        exp = np.zeros(2 * self.mult_order, dtype=np.int64)
        log = np.zeros(self.order, dtype=np.int64)
        x = 1
        for i in range(self.mult_order):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.order:
                x ^= self.primitive_poly
        if x != 1:
            raise CryptoError(f"polynomial for m={m} is not primitive")
        # Duplicate the exp table so exp[(i + j)] never needs a modulo for
        # single products.
        exp[self.mult_order :] = exp[: self.mult_order]
        self._exp = exp
        self._log = log

    # -- scalar ops ----------------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise CryptoError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return int(
            self._exp[(self._log[a] - self._log[b]) % self.mult_order]
        )

    def inv(self, a: int) -> int:
        if a == 0:
            raise CryptoError("zero has no inverse in GF(2^m)")
        return int(self._exp[self.mult_order - self._log[a]])

    def pow_alpha(self, exponent: int) -> int:
        """``alpha ** exponent`` for the primitive element alpha."""
        return int(self._exp[exponent % self.mult_order])

    def log(self, a: int) -> int:
        if a == 0:
            raise CryptoError("log of zero in GF(2^m)")
        return int(self._log[a])

    # -- vector ops ----------------------------------------------------------

    def pow_alpha_vec(self, exponents: np.ndarray) -> np.ndarray:
        """Vectorized ``alpha ** e`` for an integer exponent array."""
        exps = np.asarray(exponents, dtype=np.int64) % self.mult_order
        return self._exp[exps]

    def poly_eval_at_alpha_powers(
        self, coefficients: np.ndarray, powers: np.ndarray
    ) -> np.ndarray:
        """Evaluate ``sum_k c_k X^k`` at ``X = alpha^p`` for each ``p``.

        ``coefficients[k]`` is the GF element multiplying ``X^k``; the
        evaluation is vectorized over the ``powers`` array (the Chien
        search hot path).
        """
        coefficients = np.asarray(coefficients, dtype=np.int64)
        powers = np.asarray(powers, dtype=np.int64)
        acc = np.zeros(powers.shape, dtype=np.int64)
        for k, coeff in enumerate(coefficients):
            if coeff == 0:
                continue
            log_c = self._log[coeff]
            term = self._exp[(log_c + k * powers) % self.mult_order]
            acc ^= term
        return acc

    # -- polynomials over GF(2^m), coefficient index = degree ----------------

    def poly_mul(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Product of two GF(2^m)[x] polynomials."""
        p = np.asarray(p, dtype=np.int64)
        q = np.asarray(q, dtype=np.int64)
        out = np.zeros(p.size + q.size - 1, dtype=np.int64)
        for i, a in enumerate(p):
            if a == 0:
                continue
            log_a = self._log[a]
            nz = q != 0
            out[i : i + q.size][nz] ^= self._exp[log_a + self._log[q[nz]]]
        return out

    def poly_eval(self, p: np.ndarray, x: int) -> int:
        """Horner evaluation of a polynomial at a field element."""
        acc = 0
        for coeff in np.asarray(p, dtype=np.int64)[::-1]:
            acc = self.mul(acc, x) ^ int(coeff)
        return acc

    def __repr__(self) -> str:
        return f"GF2m(m={self.m})"
