"""Code-offset secure sketch (the paper's ECC reconciliation).

In Fig. 4 the mobile device "sends the error correction code (ECC) of
its key K_M"; the server "adjusts its key K_R accordingly to obtain K_M".
The standard instantiation of that contract is the *code-offset*
construction (Juels-Wattenberg fuzzy commitment / Dodis et al. secure
sketch):

* mobile: pick a uniformly random BCH codeword ``C``; publish
  ``sketch = K_M xor C``;
* server: compute ``sketch xor K_R = C xor (K_M xor K_R)`` and BCH-decode
  it; when the two keys differ in at most ``t`` bits the decoder returns
  ``C`` and the server recovers ``K_M = sketch xor C``.

The sketch leaks at most ``n - k`` bits of ``K_M`` (the code redundancy)
— accounted for by sizing the key material above the target entropy.

Naming note: "ECC" here abbreviates *error-correcting code*, following
the paper's terminology — it is unrelated to elliptic-curve
cryptography, which lives in :mod:`repro.crypto.curve`.
"""

from __future__ import annotations

from repro.crypto.bch import BCHCode
from repro.errors import ConfigurationError, DecodingError, KeyAgreementFailure
from repro.utils.bits import BitSequence
from repro.utils.rng import ensure_rng


class SecureSketch:
    """Code-offset secure sketch over a BCH code."""

    def __init__(self, code: BCHCode):
        self.code = code

    @property
    def n_bits(self) -> int:
        """Length of keys this sketch operates on."""
        return self.code.length

    @property
    def tolerance(self) -> int:
        """Maximum number of differing bits the sketch can reconcile."""
        return self.code.t

    @property
    def leakage_bits(self) -> int:
        """Upper bound on entropy revealed by publishing a sketch."""
        return self.code.n_parity

    def sketch(self, key, rng=None) -> BitSequence:
        """Produce the public reconciliation message for ``key``."""
        key_bits = BitSequence(key)
        if len(key_bits) != self.n_bits:
            raise ConfigurationError(
                f"key must be {self.n_bits} bits, got {len(key_bits)}"
            )
        codeword = self.code.random_codeword(ensure_rng(rng))
        return key_bits ^ codeword

    def recover(self, sketch, approximate_key) -> BitSequence:
        """Recover the sketch owner's exact key from a noisy copy.

        Raises :class:`repro.errors.KeyAgreementFailure` when the copies
        differ in more than ``tolerance`` bits — the failure path every
        attack in SV is designed to hit.
        """
        sketch_bits = BitSequence(sketch)
        approx = BitSequence(approximate_key)
        if len(sketch_bits) != self.n_bits or len(approx) != self.n_bits:
            raise ConfigurationError(
                f"sketch and key must both be {self.n_bits} bits"
            )
        try:
            codeword = self.code.decode(sketch_bits ^ approx)
        except DecodingError as exc:
            raise KeyAgreementFailure(
                f"reconciliation failed: {exc}"
            ) from exc
        return sketch_bits ^ codeword
