"""Number-theoretic primitives: primality testing and DH groups.

The paper's OT runs in a prime-order-ish multiplicative group described
by "two large prime numbers g and u" (Fig. 3's modulus ``u`` and base
``g``).  Production deployments should use a standardized group; we ship
the RFC 3526 1536- and 2048-bit MODP groups (generator 2, safe primes)
and a generator for small test groups so unit tests stay fast.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.crypto.group import Group
from repro.errors import CryptoError, ProtocolError
from repro.utils.rng import ensure_rng

#: Default comb window width (bits per digit).  Chosen empirically for
#: the 512-bit simulation group: window 6 gives ~6x over ``pow`` at a
#: ~5500-entry table (built once, lazily, in single-digit milliseconds);
#: wider windows buy little more while the table grows 2x per bit.
#: Override per call site, or process-wide via ``WAVEKEY_COMB_WINDOW``.
DEFAULT_COMB_WINDOW = int(os.environ.get("WAVEKEY_COMB_WINDOW", "6"))

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def _rng_randint_below(rng, bound: int) -> int:
    """Uniform integer in [0, bound) using a numpy Generator for bigints."""
    if bound <= 0:
        raise CryptoError("bound must be positive")
    n_bits = bound.bit_length()
    n_bytes = (n_bits + 7) // 8
    while True:
        raw = int.from_bytes(bytes(rng.integers(0, 256, size=n_bytes,
                                                dtype=np.uint8)), "big")
        raw &= (1 << n_bits) - 1
        if raw < bound:
            return raw


def is_probable_prime(n: int, rounds: int = 40, rng=None) -> bool:
    """Miller-Rabin primality test (error probability <= 4^-rounds)."""
    n = int(n)
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = ensure_rng(rng if rng is not None else 0xC0FFEE)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + _rng_randint_below(rng, n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


class FixedBaseComb:
    """Fixed-base windowed precomputation (Lim-Lee / BGMW family).

    The exponent is read as ``d = ceil(bits / window)`` digits of
    ``window`` bits each; for every digit position ``i`` the table holds
    ``base ** (k * 2 ** (window * i)) mod modulus`` for all ``k`` in
    ``[0, 2 ** window)``.  An exponentiation is then just one modular
    multiplication per non-zero digit — no squarings at all — which
    beats CPython's (C-level, but generic) sliding-window ``pow`` by
    ~4-6x at window 6 on 512-bit operands.

    Trade-off: the table costs ``d * 2 ** window`` residues of storage
    and ``d * 2 ** window`` multiplications to build, so a comb only
    pays for itself on bases that are exponentiated many times (a
    group generator, not a per-session peer element).  Exponents
    outside ``[0, 2 ** (window * d))`` fall back to the built-in
    ``pow`` — correctness never depends on the table covering the
    input.
    """

    __slots__ = ("base", "modulus", "window", "digits", "_tables")

    def __init__(
        self,
        base: int,
        modulus: int,
        max_exponent_bits: Optional[int] = None,
        window: int = DEFAULT_COMB_WINDOW,
    ):
        if modulus < 3:
            raise CryptoError("comb modulus too small")
        if not (0 < base < modulus):
            raise CryptoError("comb base outside (0, modulus)")
        if not (1 <= window <= 16):
            raise CryptoError("comb window must be in [1, 16]")
        bits = max_exponent_bits or modulus.bit_length()
        if bits < 1:
            raise CryptoError("max_exponent_bits must be >= 1")
        self.base = base
        self.modulus = modulus
        self.window = window
        self.digits = math.ceil(bits / window)
        radix = 1 << window
        tables = []
        b = base % modulus
        for _ in range(self.digits):
            row = [1] * radix
            row[1] = b
            for k in range(2, radix):
                row[k] = row[k - 1] * b % modulus
            tables.append(row)
            # base ** (2 ** (window * (i + 1))) for the next digit row.
            b = row[radix - 1] * b % modulus
        self._tables = tables

    @property
    def entries(self) -> int:
        """Total residues held (table-size knob: digits * 2**window)."""
        return self.digits * (1 << self.window)

    def power(self, exponent: int) -> int:
        """``base ** exponent mod modulus``, bit-exact with ``pow``."""
        exponent = int(exponent)
        if exponent < 0 or exponent.bit_length() > self.digits * self.window:
            return pow(self.base, exponent, self.modulus)
        acc = 1
        modulus = self.modulus
        tables = self._tables
        mask = (1 << self.window) - 1
        shift = self.window
        i = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = acc * tables[i][digit] % modulus
            exponent >>= shift
            i += 1
        return acc


@dataclass(frozen=True)
class DHGroup(Group):
    """A multiplicative group mod a safe prime, with a fixed generator.

    ``power`` (the fixed-base hot path: every OT announce/respond is a
    ``g ** x mod p``) runs through a lazily built, per-group-cached
    :class:`FixedBaseComb` table; ``power_naive`` retains the plain
    ``pow`` path as fallback and cross-check.  The comb can be disabled
    or re-tuned without touching the frozen value identity via
    :meth:`with_comb` — clones compare and hash equal to the original.
    """

    prime: int
    generator: int
    name: str = "custom"

    def __post_init__(self):
        if self.prime < 5:
            raise CryptoError("group prime too small")
        if not (1 < self.generator < self.prime):
            raise CryptoError("generator outside (1, prime)")
        # Non-field state (cache + config) on a frozen dataclass: not
        # part of equality/hash, never serialized, set via the escape
        # hatch because plain attribute assignment is blocked.
        object.__setattr__(self, "_comb_lock", threading.Lock())
        object.__setattr__(self, "_combs", {})
        object.__setattr__(self, "_comb_enabled", True)
        object.__setattr__(self, "_comb_window", None)
        object.__setattr__(self, "_exponent_bits", None)

    def _configured_clone(self, **overrides) -> "DHGroup":
        """Value-equal clone carrying this group's policy overrides."""
        clone = DHGroup(self.prime, self.generator, self.name)
        for key in ("_comb_enabled", "_comb_window", "_exponent_bits"):
            object.__setattr__(
                clone, key, overrides.get(key, getattr(self, key))
            )
        return clone

    @property
    def bits(self) -> int:
        return self.prime.bit_length()

    @property
    def comb_enabled(self) -> bool:
        """Whether :meth:`power` routes through the comb fast path."""
        return self._comb_enabled

    def with_comb(
        self, enabled: bool = True, window: Optional[int] = None
    ) -> "DHGroup":
        """A clone of this group with the comb fast path configured.

        The clone is value-equal to the original (same prime/generator/
        name) but holds its own table cache, so benchmarks can A/B the
        naive and comb paths on the same group without mutating shared
        module-level group constants.
        """
        if window is not None and not (1 <= window <= 16):
            raise CryptoError("comb window must be in [1, 16]")
        return self._configured_clone(
            _comb_enabled=bool(enabled), _comb_window=window
        )

    @property
    def exponent_bits(self) -> Optional[int]:
        """Secret-exponent length policy (None = full ``prime`` width)."""
        return self._exponent_bits

    def with_exponent_bits(self, bits: Optional[int]) -> "DHGroup":
        """A clone drawing secret exponents of ``bits`` bits.

        Short-exponent Diffie-Hellman (RFC 7919 s5.2, NIST SP 800-56A):
        a uniformly drawn ``n``-bit exponent gives ``n/2`` bits of
        security against Pollard's lambda, so sizing ``n`` to at least
        twice the modulus' own (index-calculus) security level loses
        nothing while shrinking every ``pow`` by the same factor the
        exponent shrank.  ``None`` restores full-width draws — the
        reference configuration benchmarks compare against.
        """
        if bits is not None:
            bits = int(bits)
            if bits < 64:
                raise CryptoError(
                    "short exponents below 64 bits are never a sound "
                    "trade; pass None for full-width draws"
                )
            if bits >= (self.prime - 2).bit_length():
                bits = None  # not actually short: keep full-width draws
        return self._configured_clone(_exponent_bits=bits)

    def comb(self, window: Optional[int] = None) -> FixedBaseComb:
        """The (lazily built, cached) comb table for the generator."""
        width = window or self._comb_window or DEFAULT_COMB_WINDOW
        combs: Dict[int, FixedBaseComb] = self._combs
        table = combs.get(width)
        if table is None:
            with self._comb_lock:
                table = combs.get(width)
                if table is None:
                    table = FixedBaseComb(
                        self.generator, self.prime, window=width
                    )
                    combs[width] = table
        return table

    def comb_for(
        self, base: int, window: Optional[int] = None
    ) -> FixedBaseComb:
        """An *uncached* comb for an arbitrary in-group base.

        Only profitable when ``base`` will be exponentiated at least
        ~``digits`` times (table build costs ``entries``
        multiplications); per-session peer elements such as a single
        OT instance's ``M_a`` are used once or twice and should stay
        on ``pow``.
        """
        width = window or self._comb_window or DEFAULT_COMB_WINDOW
        return FixedBaseComb(base, self.prime, window=width)

    def random_exponent(self, rng) -> int:
        """Uniform secret exponent in [1, prime - 2].

        Under a :meth:`with_exponent_bits` policy the draw narrows to
        ``[1, 2 ** exponent_bits - 1]``; the resulting group elements
        remain (computationally) indistinguishable while every
        exponentiation shortens proportionally.
        """
        if self._exponent_bits is not None:
            return 1 + _rng_randint_below(
                ensure_rng(rng), (1 << self._exponent_bits) - 1
            )
        return 1 + _rng_randint_below(ensure_rng(rng), self.prime - 2)

    def power(self, exponent: int) -> int:
        """``generator ** exponent mod prime`` (comb fast path)."""
        if self._comb_enabled:
            return self.comb().power(exponent)
        return pow(self.generator, exponent, self.prime)

    def power_naive(self, exponent: int) -> int:
        """``generator ** exponent mod prime`` via built-in ``pow``.

        Retained as the reference implementation the comb is
        cross-checked against, and as the fallback for comb-disabled
        clones.
        """
        return pow(self.generator, exponent, self.prime)

    def exp(self, element: int, exponent: int) -> int:
        """``element ** exponent mod prime`` (variable base)."""
        return pow(element, exponent, self.prime)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.prime

    def div(self, a: int, b: int) -> int:
        """``a / b`` via the modular inverse of ``b``."""
        return (a * pow(b, -1, self.prime)) % self.prime

    def contains(self, element) -> bool:
        return isinstance(element, int) and 0 < element < self.prime

    @property
    def exponent_modulus(self) -> int:
        """Exponents live mod ``p - 1`` (Fermat)."""
        return self.prime - 1

    def encode_element(self, element: int) -> bytes:
        """Minimal big-endian bytes — the historical wire encoding."""
        element = int(element)
        if element < 0:
            raise CryptoError("group elements are non-negative")
        return element.to_bytes(max(1, (element.bit_length() + 7) // 8), "big")

    def decode_element(self, data: bytes) -> int:
        if not data:
            raise ProtocolError("empty group element")
        element = int.from_bytes(data, "big")
        if not self.contains(element):
            raise ProtocolError("element outside the group")
        return element


def generate_dh_group(bits: int, rng=None, max_tries: int = 100_000) -> DHGroup:
    """Generate a safe-prime group of the requested size (for tests).

    A safe prime ``p = 2q + 1`` with ``q`` prime makes the subgroup
    structure simple; we use generator 4 (a quadratic residue, generating
    the order-q subgroup) to avoid leaking the low-order bit.
    """
    if bits < 16:
        raise CryptoError("group size below 16 bits is meaningless")
    rng = ensure_rng(rng)
    for _ in range(max_tries):
        q = _rng_randint_below(rng, 1 << (bits - 1)) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        if is_probable_prime(q, rounds=20, rng=rng) and is_probable_prime(
            p, rounds=20, rng=rng
        ):
            return DHGroup(prime=p, generator=4, name=f"random-{bits}")
    raise CryptoError(f"no safe prime found in {max_tries} tries")


_RFC3526_1536_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
)

_RFC3526_2048_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF"
)

#: RFC 3526 group 5 (1536-bit MODP, generator 2).
RFC3526_GROUP_1536 = DHGroup(
    prime=int(_RFC3526_1536_HEX, 16), generator=2, name="rfc3526-1536"
)

#: RFC 3526 group 14 (2048-bit MODP, generator 2).
RFC3526_GROUP_2048 = DHGroup(
    prime=int(_RFC3526_2048_HEX, 16), generator=2, name="rfc3526-2048"
)

_WAVEKEY_512_HEX = (
    "838c2b668d8a71c35b38d652f29a284b22eaf31893fbe4b927a26e368fc7c027"
    "498ea9bbaa9063443b67c04d363e8d69d0cd2d7ecc7d7f58c765fb58745c6a1f"
)

#: Fixed 512-bit safe-prime group (generator 4, a quadratic residue),
#: produced by :func:`generate_dh_group` with seed 20240707.  This is the
#: *simulation default*: it keeps the ~100 batched OT modexps of one key
#: establishment in the paper's sub-second compute budget on commodity
#: Python.  Production deployments should pass an RFC 3526 group (or an
#: elliptic-curve OT) to the protocol instead.
#:
#: Fast-path policy: secret exponents are drawn at 256 bits (RFC 7919
#: s5.2 short-exponent DH).  A 512-bit MODP modulus offers well under
#: 128 bits of index-calculus security, so 256-bit exponents (128-bit
#: Pollard-lambda resistance) are never the weak link, and every
#: variable-base ``pow`` on the OT hot path halves in cost.  Recover
#: the paper-literal reference behaviour with
#: ``WAVEKEY_GROUP_512.with_exponent_bits(None).with_comb(False)``.
WAVEKEY_GROUP_512 = DHGroup(
    prime=int(_WAVEKEY_512_HEX, 16), generator=4, name="wavekey-512"
).with_exponent_bits(256)
