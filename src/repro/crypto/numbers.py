"""Number-theoretic primitives: primality testing and DH groups.

The paper's OT runs in a prime-order-ish multiplicative group described
by "two large prime numbers g and u" (Fig. 3's modulus ``u`` and base
``g``).  Production deployments should use a standardized group; we ship
the RFC 3526 1536- and 2048-bit MODP groups (generator 2, safe primes)
and a generator for small test groups so unit tests stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CryptoError
from repro.utils.rng import ensure_rng

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def _rng_randint_below(rng, bound: int) -> int:
    """Uniform integer in [0, bound) using a numpy Generator for bigints."""
    if bound <= 0:
        raise CryptoError("bound must be positive")
    n_bits = bound.bit_length()
    n_bytes = (n_bits + 7) // 8
    while True:
        raw = int.from_bytes(bytes(rng.integers(0, 256, size=n_bytes,
                                                dtype=np.uint8)), "big")
        raw &= (1 << n_bits) - 1
        if raw < bound:
            return raw


def is_probable_prime(n: int, rounds: int = 40, rng=None) -> bool:
    """Miller-Rabin primality test (error probability <= 4^-rounds)."""
    n = int(n)
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = ensure_rng(rng if rng is not None else 0xC0FFEE)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + _rng_randint_below(rng, n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class DHGroup:
    """A multiplicative group mod a safe prime, with a fixed generator."""

    prime: int
    generator: int
    name: str = "custom"

    def __post_init__(self):
        if self.prime < 5:
            raise CryptoError("group prime too small")
        if not (1 < self.generator < self.prime):
            raise CryptoError("generator outside (1, prime)")

    @property
    def bits(self) -> int:
        return self.prime.bit_length()

    def random_exponent(self, rng) -> int:
        """Uniform secret exponent in [1, prime - 2]."""
        return 1 + _rng_randint_below(ensure_rng(rng), self.prime - 2)

    def power(self, exponent: int) -> int:
        """``generator ** exponent mod prime``."""
        return pow(self.generator, exponent, self.prime)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.prime

    def div(self, a: int, b: int) -> int:
        """``a / b`` via the modular inverse of ``b``."""
        return (a * pow(b, -1, self.prime)) % self.prime

    def contains(self, element: int) -> bool:
        return 0 < element < self.prime


def generate_dh_group(bits: int, rng=None, max_tries: int = 100_000) -> DHGroup:
    """Generate a safe-prime group of the requested size (for tests).

    A safe prime ``p = 2q + 1`` with ``q`` prime makes the subgroup
    structure simple; we use generator 4 (a quadratic residue, generating
    the order-q subgroup) to avoid leaking the low-order bit.
    """
    if bits < 16:
        raise CryptoError("group size below 16 bits is meaningless")
    rng = ensure_rng(rng)
    for _ in range(max_tries):
        q = _rng_randint_below(rng, 1 << (bits - 1)) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        if is_probable_prime(q, rounds=20, rng=rng) and is_probable_prime(
            p, rounds=20, rng=rng
        ):
            return DHGroup(prime=p, generator=4, name=f"random-{bits}")
    raise CryptoError(f"no safe prime found in {max_tries} tries")


_RFC3526_1536_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
)

_RFC3526_2048_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF"
)

#: RFC 3526 group 5 (1536-bit MODP, generator 2).
RFC3526_GROUP_1536 = DHGroup(
    prime=int(_RFC3526_1536_HEX, 16), generator=2, name="rfc3526-1536"
)

#: RFC 3526 group 14 (2048-bit MODP, generator 2).
RFC3526_GROUP_2048 = DHGroup(
    prime=int(_RFC3526_2048_HEX, 16), generator=2, name="rfc3526-2048"
)

_WAVEKEY_512_HEX = (
    "838c2b668d8a71c35b38d652f29a284b22eaf31893fbe4b927a26e368fc7c027"
    "498ea9bbaa9063443b67c04d363e8d69d0cd2d7ecc7d7f58c765fb58745c6a1f"
)

#: Fixed 512-bit safe-prime group (generator 4, a quadratic residue),
#: produced by :func:`generate_dh_group` with seed 20240707.  This is the
#: *simulation default*: it keeps the ~100 batched OT modexps of one key
#: establishment in the paper's sub-second compute budget on commodity
#: Python.  Production deployments should pass an RFC 3526 group (or an
#: elliptic-curve OT) to the protocol instead.
WAVEKEY_GROUP_512 = DHGroup(
    prime=int(_WAVEKEY_512_HEX, 16), generator=4, name="wavekey-512"
)
