"""Cryptographic substrate.

Everything the WaveKey key-agreement protocol (paper SIV-D) needs,
implemented from scratch on the Python standard library + numpy:

* :mod:`repro.crypto.group` — the abstract :class:`Group` interface the
  OT stack is generic over, plus :func:`resolve_group` for name-based
  selection (``modp512`` / ``curve25519``).
* :mod:`repro.crypto.numbers` — Miller-Rabin primality, safe-prime /
  DH-group generation, and the RFC 3526 MODP groups used by default.
* :mod:`repro.crypto.curve` — from-scratch Curve25519: the X25519
  Montgomery ladder (RFC 7748) and the twisted-Edwards form whose point
  addition the Chou-Orlandi OT needs.  Naming note: this module is the
  *elliptic curve*; :mod:`repro.crypto.ecc` is the *error-correcting
  code* reconciliation (the paper's "ECC" abbreviation), not curves.
* :mod:`repro.crypto.ot` — the computationally efficient 1-out-of-2
  Oblivious Transfer of Chou & Orlandi (paper Fig. 3), with the batched
  variant the protocol uses to combine all instances into three messages.
* :mod:`repro.crypto.pool` — warm OT material: single-use sender/receiver
  exponent tuples precomputed off the hot path by a watermark-driven
  background refill worker, so the request path only pays the per-peer
  variable-base exponentiations.
* :mod:`repro.crypto.gf2` / :mod:`repro.crypto.bch` — GF(2^m) arithmetic
  and binary BCH codes (Berlekamp-Massey + Chien search).
* :mod:`repro.crypto.ecc` — the code-offset secure sketch built on BCH
  that implements the paper's ECC-based reconciliation.
* :mod:`repro.crypto.hashes` / :mod:`repro.crypto.symmetric` — SHA-256
  hashing, HMAC, and the hash-keystream cipher used for OT payloads.
"""

from repro.crypto.group import GROUP_CHOICES, Group, resolve_group
from repro.crypto.curve import CURVE25519_GROUP, Curve25519Group, x25519
from repro.crypto.numbers import (
    DHGroup,
    FixedBaseComb,
    RFC3526_GROUP_1536,
    RFC3526_GROUP_2048,
    WAVEKEY_GROUP_512,
    generate_dh_group,
    is_probable_prime,
)
from repro.crypto.hashes import hash_group_element, hkdf_stream, hmac_digest
from repro.crypto.pool import (
    OTMaterialPool,
    ReceiverMaterial,
    SenderMaterial,
)
from repro.crypto.symmetric import xor_cipher
from repro.crypto.ot import (
    OTReceiver,
    OTSender,
    batch_announce,
    batch_respond,
    run_batch_ot,
)
from repro.crypto.gf2 import GF2m
from repro.crypto.bch import BCHCode, design_bch
from repro.crypto.ecc import SecureSketch
from repro.crypto.rs import RSCode
from repro.crypto.segment_sketch import SegmentSecureSketch

__all__ = [
    "Group",
    "GROUP_CHOICES",
    "resolve_group",
    "CURVE25519_GROUP",
    "Curve25519Group",
    "x25519",
    "DHGroup",
    "FixedBaseComb",
    "RFC3526_GROUP_1536",
    "RFC3526_GROUP_2048",
    "WAVEKEY_GROUP_512",
    "generate_dh_group",
    "is_probable_prime",
    "hash_group_element",
    "hkdf_stream",
    "hmac_digest",
    "xor_cipher",
    "OTSender",
    "OTReceiver",
    "OTMaterialPool",
    "SenderMaterial",
    "ReceiverMaterial",
    "batch_announce",
    "batch_respond",
    "run_batch_ot",
    "GF2m",
    "BCHCode",
    "design_bch",
    "SecureSketch",
    "RSCode",
    "SegmentSecureSketch",
]
