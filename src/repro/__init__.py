"""WaveKey reproduction library.

A from-scratch reproduction of *WaveKey: Secure Mobile Ad Hoc Access to
RFID-Protected Systems* (Han et al., ICDCS 2024): cross-modal deep
learning over simulated IMU and UHF-RFID backscatter data, equiprobable
quantization into key-seeds, and a bidirectional Oblivious-Transfer key
agreement with ECC reconciliation.

Quick start::

    import repro

    bundle = repro.load_default_bundle()     # pretrained IMU-En / RF-En
    system = repro.WaveKeySystem(bundle)
    result = system.establish_key(rng=7)
    assert result.success
    print(result.key.to_bytes().hex())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

# repro.net must initialize before repro.access: net.client/net.server
# import the access channel endpoints at module level, while the access
# modules only need the net leaf modules (codec, connection).  Entering
# the cycle from the net side lets those leaves load without pulling a
# partially-initialized repro.access.  Keep this import first.
from repro.net import (
    ClientTicket,
    FaultInjectionProxy,
    NetClientConfig,
    WaveKeyNetClient,
    WaveKeyTCPServer,
)
from repro.access import (
    ClientAccessChannel,
    KeyStore,
    RecordChannel,
    ServerAccessChannel,
    TicketJournal,
)
from repro.core import (
    KeyEstablishmentResult,
    KeySeedPipeline,
    WaveKeyModelBundle,
    WaveKeySystem,
    train_wavekey_models,
)
from repro.core.pretrained import load_default_bundle
from repro.datasets import DatasetConfig, generate_dataset
from repro.errors import (
    AccessError,
    KeyAgreementFailure,
    ProtocolError,
    TicketError,
    TransportError,
    WaveKeyError,
)
from repro.gesture import VolunteerProfile, default_volunteers, sample_gesture
from repro.obs import (
    EventLog,
    LayerProfiler,
    MetricsRegistry,
    Span,
    Tracer,
    format_trace_tree,
    load_trace_jsonl,
    merge_snapshots,
    render_prometheus,
    set_default_tracer,
    use_default_tracer,
)
from repro.protocol import KeyAgreementConfig, run_key_agreement
from repro.service import (
    AccessRequest,
    LoadProfile,
    ServiceConfig,
    WaveKeyAccessServer,
    run_load,
)
from repro.utils.bits import BitSequence

__version__ = "1.0.0"

__all__ = [
    "WaveKeyModelBundle",
    "WaveKeySystem",
    "KeyEstablishmentResult",
    "KeySeedPipeline",
    "train_wavekey_models",
    "load_default_bundle",
    "DatasetConfig",
    "generate_dataset",
    "VolunteerProfile",
    "default_volunteers",
    "sample_gesture",
    "KeyAgreementConfig",
    "run_key_agreement",
    "BitSequence",
    "WaveKeyError",
    "ProtocolError",
    "KeyAgreementFailure",
    "TransportError",
    "AccessError",
    "TicketError",
    "ClientAccessChannel",
    "ClientTicket",
    "KeyStore",
    "RecordChannel",
    "ServerAccessChannel",
    "TicketJournal",
    "FaultInjectionProxy",
    "NetClientConfig",
    "WaveKeyNetClient",
    "WaveKeyTCPServer",
    "AccessRequest",
    "LoadProfile",
    "ServiceConfig",
    "WaveKeyAccessServer",
    "run_load",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "EventLog",
    "LayerProfiler",
    "format_trace_tree",
    "load_trace_jsonl",
    "merge_snapshots",
    "render_prometheus",
    "set_default_tracer",
    "use_default_tracer",
    "__version__",
]
