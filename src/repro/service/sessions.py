"""Per-session state for the access-control server.

A session is one user at the reader: admission, a bounded number of
establishment attempts (gesture acquisition -> batched encoding -> OT
agreement), and a terminal state.  The :class:`SessionManager` owns the
registry, enforces legal state transitions, and emits every transition
to the structured event log so tests and operators can reconstruct any
session's history.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.utils.bits import BitSequence


class SessionState(enum.Enum):
    """Lifecycle of one key-establishment session."""

    QUEUED = "queued"          # admitted, waiting for a worker
    ENCODING = "encoding"      # windows submitted to the micro-batcher
    AGREEING = "agreeing"      # OT + reconciliation in flight
    ESTABLISHED = "established"  # terminal: key agreed
    FAILED = "failed"          # terminal: attempts exhausted
    TIMED_OUT = "timed_out"    # terminal: tau/session deadline violated
    SHED = "shed"              # terminal: rejected at admission

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = {
    SessionState.ESTABLISHED,
    SessionState.FAILED,
    SessionState.TIMED_OUT,
    SessionState.SHED,
}

_LEGAL = {
    SessionState.QUEUED: {
        SessionState.ENCODING,
        SessionState.TIMED_OUT,
    },
    SessionState.ENCODING: {
        SessionState.AGREEING,
        SessionState.ENCODING,   # next attempt after a retry
        SessionState.FAILED,
        SessionState.TIMED_OUT,
    },
    SessionState.AGREEING: {
        SessionState.ESTABLISHED,
        SessionState.ENCODING,   # retry
        SessionState.FAILED,
        SessionState.TIMED_OUT,
    },
}

_id_counter = itertools.count(1)


def _next_session_id() -> str:
    return f"s{next(_id_counter):06d}"


@dataclass
class AccessRequest:
    """One user's key-establishment request.

    ``volunteer``/``device``/``tag``/``environment`` override the
    server's deployment defaults per session (a lineup service hands a
    fresh tag to every visitor); ``rng_seed`` makes the session's
    gesture and protocol randomness reproducible.  ``agreement_fn``
    (same signature as the server-wide one) replaces the in-process
    two-party agreement for this session only — the network front end
    uses it to run the exchange over the client's connection.
    ``trace_context`` (a :class:`repro.obs.tracing.TraceContext`
    extracted from the wire, or ``None``) parents the session's root
    span on the caller's distributed trace.
    """

    rng_seed: int
    volunteer: object = None
    device: object = None
    tag: object = None
    environment: object = None
    dynamic: bool = False
    agreement_fn: object = None
    trace_context: object = None
    session_id: str = field(default_factory=_next_session_id)


@dataclass(frozen=True)
class RejectionReason:
    """Structured load-shedding verdict attached to SHED sessions."""

    code: str                 # e.g. "queue_full"
    detail: str
    queue_depth: int
    queue_capacity: int


@dataclass
class SessionRecord:
    """Everything the server knows about one session."""

    session_id: str
    request: AccessRequest
    state: SessionState = SessionState.QUEUED
    attempts: int = 0
    key: Optional[BitSequence] = None
    failure_reason: Optional[str] = None
    rejection: Optional[RejectionReason] = None
    #: stage -> seconds; keys: queue_wait_s, encode_s, agree_s, total_s,
    #: and protocol_elapsed_s (the simulated protocol timeline).
    timings: Dict[str, float] = field(default_factory=dict)
    #: the session's root tracing span (None when tracing is off).
    trace: Optional[object] = None

    @property
    def success(self) -> bool:
        return self.state is SessionState.ESTABLISHED


class SessionTicket:
    """Caller-side handle: blocks on ``result()`` until terminal.

    Event-driven callers (the network front end's event loop) register
    :meth:`add_done_callback` instead of blocking a thread on
    :meth:`result`; callbacks fire on the thread that completed the
    session, so they must be cheap and must hand real work elsewhere.
    """

    def __init__(self, record: SessionRecord):
        self._record = record
        self._done = threading.Event()
        self._callbacks: List[object] = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float = None) -> SessionRecord:
        if not self._done.wait(timeout):
            raise ServiceError(
                f"session {self._record.session_id} not finished in time"
            )
        return self._record

    def add_done_callback(self, callback) -> None:
        """Call ``callback(record)`` once the session is terminal.

        Fires immediately (on the caller's thread) when the session is
        already done; otherwise fires on the completing thread.  Late
        registrations never get lost — exactly-once per callback.
        """
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self._record)

    def _complete(self) -> None:
        with self._lock:
            callbacks, self._callbacks = self._callbacks, []
            self._done.set()
        for callback in callbacks:
            callback(self._record)


class SessionManager:
    """Registry + transition enforcement + event emission."""

    def __init__(self, metrics: MetricsRegistry, events: EventLog):
        self.metrics = metrics
        self.events = events
        self._records: Dict[str, SessionRecord] = {}
        self._tickets: Dict[str, SessionTicket] = {}
        self._lock = threading.Lock()

    def open(self, request: AccessRequest) -> SessionTicket:
        record = SessionRecord(
            session_id=request.session_id, request=request
        )
        ticket = SessionTicket(record)
        with self._lock:
            if request.session_id in self._records:
                raise ServiceError(
                    f"duplicate session id {request.session_id!r}"
                )
            self._records[request.session_id] = record
            self._tickets[request.session_id] = ticket
        return ticket

    def transition(
        self, record: SessionRecord, new_state: SessionState, **fields
    ) -> None:
        """Move ``record`` to ``new_state``, emit the event, and update
        counters.  Raises :class:`ServiceError` on an illegal move."""
        old = record.state
        if new_state is not old and new_state not in _LEGAL.get(old, set()):
            raise ServiceError(
                f"illegal transition {old.value} -> {new_state.value} "
                f"for session {record.session_id}"
            )
        record.state = new_state
        self.events.emit(
            new_state.value, session_id=record.session_id, **fields
        )
        if new_state.terminal:
            self.metrics.counter(f"service.{new_state.value}").inc()
            with self._lock:
                ticket = self._tickets.pop(record.session_id, None)
            if ticket is not None:
                ticket._complete()

    def shed(
        self, request: AccessRequest, rejection: RejectionReason
    ) -> SessionTicket:
        """Open and immediately terminate a session as SHED."""
        ticket = self.open(request)
        record = ticket._record
        record.rejection = rejection
        record.failure_reason = f"{rejection.code}: {rejection.detail}"
        record.state = SessionState.SHED
        self.events.emit(
            SessionState.SHED.value,
            session_id=record.session_id,
            code=rejection.code,
            queue_depth=rejection.queue_depth,
            queue_capacity=rejection.queue_capacity,
        )
        self.metrics.counter("service.shed").inc()
        with self._lock:
            self._tickets.pop(record.session_id, None)
        ticket._complete()
        return ticket

    def abort(self, record: SessionRecord, reason: str) -> None:
        """Force a session to FAILED from *any* non-terminal state.

        Last-resort path for internal server errors; unlike
        :meth:`transition` it skips legality checks so the waiting
        caller is always released.
        """
        if record.state.terminal:
            return
        record.failure_reason = reason
        record.state = SessionState.FAILED
        self.events.emit(
            SessionState.FAILED.value,
            session_id=record.session_id,
            reason=reason,
            aborted=True,
        )
        self.metrics.counter("service.failed").inc()
        with self._lock:
            ticket = self._tickets.pop(record.session_id, None)
        if ticket is not None:
            ticket._complete()

    def get(self, session_id: str) -> SessionRecord:
        with self._lock:
            if session_id not in self._records:
                raise ServiceError(f"unknown session {session_id!r}")
            return self._records[session_id]

    def records(self) -> List[SessionRecord]:
        with self._lock:
            return list(self._records.values())

    def count(self, state: SessionState) -> int:
        with self._lock:
            return sum(1 for r in self._records.values() if r.state is state)
