"""Server tuning knobs.

One frozen dataclass holds every operational parameter of the
access-control server: worker-pool width, admission-queue depth,
micro-batching policy (max batch size + max wait latency, the standard
model-serving trade-off), retry bounds, and the wall-clock session
deadline.  Protocol-level parameters (key length, eta, the tau deadline)
stay in :class:`repro.protocol.KeyAgreementConfig` — the service config
only governs *how* sessions are scheduled, never the cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServiceConfig:
    """Operational parameters of :class:`WaveKeyAccessServer`.

    Attributes
    ----------
    workers:
        Session-processing threads.  Each worker drives one session at a
        time through acquisition -> encode -> key agreement.
    queue_capacity:
        Bound on sessions admitted but not yet picked up by a worker.
        Submissions beyond it are load-shed with a structured
        :class:`RejectionReason` instead of queueing without bound.
    max_batch_size / max_batch_wait_s:
        Micro-batching policy: an encoder batch is launched as soon as
        ``max_batch_size`` windows are pending, or ``max_batch_wait_s``
        after the first pending window arrived, whichever happens first.
        ``max_batch_size=1`` degenerates to per-request inference.
    max_attempts:
        Total establishment attempts per session (first try + retries).
        The paper's deployments retry the gesture when agreement fails;
        the bound keeps a hopeless session from looping forever.
    retry_on_timeout:
        Whether a tau-deadline violation inside the protocol is retried
        like any other failure (default: no — a deadline miss under load
        will usually repeat, so the session reports TIMED_OUT).
    session_deadline_s:
        Wall-clock budget per session measured from admission; exceeded
        budgets end the session as TIMED_OUT at the next checkpoint.
    ot_pool_depth:
        High watermark of the warm OT material pool: precomputed
        sender/receiver exponent tuples held per kind for the agreement
        group (:class:`repro.crypto.pool.OTMaterialPool`).  ``0``
        disables the pool entirely — every OT instance exponentiates
        inline, as the protocol always still can.
    ot_pool_low_watermark:
        Refill trigger depth; ``None`` means ``ot_pool_depth // 2``.
    ot_pool_refill_s:
        Idle poll interval of the pool's background refill worker (the
        worker is additionally woken immediately whenever a take
        drains a stock below the low watermark).
    """

    workers: int = 2
    queue_capacity: int = 32
    max_batch_size: int = 16
    max_batch_wait_s: float = 0.002
    max_attempts: int = 3
    retry_on_timeout: bool = False
    session_deadline_s: float = 30.0
    ot_pool_depth: int = 256
    ot_pool_low_watermark: Optional[int] = None
    ot_pool_refill_s: float = 0.05

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if self.max_batch_wait_s < 0:
            raise ConfigurationError("max_batch_wait_s must be >= 0")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.session_deadline_s <= 0:
            raise ConfigurationError("session_deadline_s must be > 0")
        if self.ot_pool_depth < 0:
            raise ConfigurationError("ot_pool_depth must be >= 0")
        if self.ot_pool_low_watermark is not None and not (
            0 <= self.ot_pool_low_watermark < max(self.ot_pool_depth, 1)
        ):
            raise ConfigurationError(
                "ot_pool_low_watermark must be in [0, ot_pool_depth)"
            )
        if self.ot_pool_refill_s <= 0:
            raise ConfigurationError("ot_pool_refill_s must be > 0")
