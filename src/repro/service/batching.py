"""Micro-batching inference scheduler.

Concurrent sessions each need one IMU-En or RF-En forward pass for a
single sensor window.  Running them one-by-one wastes the encoders'
throughput: a single stacked forward over N windows costs far less than
N single-window forwards (the convolutions amortize their im2col and
BLAS dispatch overhead).  :class:`MicroBatcher` is the classic
model-serving answer: requests enqueue, a scheduler thread coalesces
everything pending into one batch, launches it when either the batch is
full or the oldest request has waited ``max_wait_s``, and distributes
the per-item results back to the waiting sessions.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError, ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, current_span, resolve_tracer

#: batch_fn(items) -> per-item results, len-preserving.
BatchFn = Callable[[Sequence[object]], Sequence[object]]


class BatchFuture:
    """Handle for one submitted item; ``result()`` blocks until ready."""

    def __init__(self):
        self._done = threading.Event()
        self._result: Optional[object] = None
        self._exception: Optional[BaseException] = None
        self.batch_size: Optional[int] = None  # size of the fulfilling batch
        self.queue_wait_s: float = 0.0  # enqueue -> batch launch
        self.compute_s: float = 0.0     # batch_fn duration for the batch

    def _fulfill(
        self,
        result: object,
        batch_size: int,
        queue_wait_s: float,
        compute_s: float,
    ) -> None:
        self._result = result
        self.batch_size = batch_size
        self.queue_wait_s = queue_wait_s
        self.compute_s = compute_s
        self._done.set()

    def _fail(self, exception: BaseException, batch_size: int) -> None:
        self._exception = exception
        self.batch_size = batch_size
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float = None) -> object:
        if not self._done.wait(timeout):
            raise ServiceError("batched inference result not ready in time")
        if self._exception is not None:
            raise self._exception
        return self._result


class _Pending:
    __slots__ = ("item", "future", "enqueued_at", "trace_parent")

    def __init__(self, item: object, future: BatchFuture, trace_parent=None):
        self.item = item
        self.future = future
        self.enqueued_at = time.monotonic()
        # The submitter's active span: the scheduler thread parents this
        # item's inference span to it (explicit cross-thread handoff).
        self.trace_parent = trace_parent


class MicroBatcher:
    """Coalesces pending items and runs ``batch_fn`` over them.

    Launch policy: fire as soon as ``max_batch_size`` items are pending,
    or ``max_wait_s`` after the oldest pending item arrived.  With
    ``max_batch_size=1`` every item runs alone (the per-request baseline
    the throughput benchmark compares against).

    Metrics (under ``<name>.``): ``items`` and ``batches`` counters, a
    ``batch_size`` histogram, and a ``queue_wait_s`` latency histogram
    measuring enqueue -> launch.
    """

    def __init__(
        self,
        name: str,
        batch_fn: BatchFn,
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        metrics: MetricsRegistry = None,
        tracer: Tracer = None,
    ):
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ConfigurationError("max_wait_s must be >= 0")
        self.name = name
        self.batch_fn = batch_fn
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self._queue: List[_Pending] = []
        self._cond = threading.Condition()
        self._running = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "MicroBatcher":
        with self._cond:
            if self._running:
                raise ServiceError(f"{self.name}: already started")
            self._running = True
        self._thread = threading.Thread(
            target=self._run, name=f"microbatch-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        with self._cond:
            if not self._running:
                return
            self._running = False
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        # Anything still pending will never run; fail it loudly.
        with self._cond:
            leftovers, self._queue = self._queue, []
        for pending in leftovers:
            pending.future._fail(
                ServiceError(f"{self.name}: batcher stopped"), 0
            )

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission --------------------------------------------------------

    def submit(self, item: object) -> BatchFuture:
        """Enqueue one item; returns a :class:`BatchFuture`."""
        future = BatchFuture()
        pending = _Pending(item, future, trace_parent=current_span())
        with self._cond:
            if not self._running:
                raise ServiceError(f"{self.name}: batcher is not running")
            self._queue.append(pending)
            self._cond.notify_all()
        self.metrics.counter(f"{self.name}.items").inc()
        return future

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- scheduler thread --------------------------------------------------

    def _take_batch(self) -> List[_Pending]:
        """Block until a batch is due; empty list means shutdown."""
        with self._cond:
            while True:
                if self._queue:
                    oldest = self._queue[0].enqueued_at
                    deadline = oldest + self.max_wait_s
                    now = time.monotonic()
                    if (
                        len(self._queue) >= self.max_batch_size
                        or now >= deadline
                        or not self._running
                    ):
                        batch = self._queue[: self.max_batch_size]
                        del self._queue[: len(batch)]
                        return batch
                    self._cond.wait(deadline - now)
                elif self._running:
                    self._cond.wait()
                else:
                    return []

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if not batch:
                return
            launch = time.monotonic()
            size = len(batch)
            wait_hist = self.metrics.histogram(f"{self.name}.queue_wait_s")
            for pending in batch:
                wait_hist.observe(launch - pending.enqueued_at)
            tracer = resolve_tracer(self.tracer)
            # The stacked forward serves several sessions at once; its
            # span hangs under the first item's submitter so the shared
            # work appears in exactly one tree, while every session gets
            # its own retroactive per-item span below.
            batch_parent = next(
                (p.trace_parent for p in batch if p.trace_parent), None
            )
            try:
                with tracer.span(
                    f"{self.name}.batch",
                    parent=batch_parent,
                    batch_size=size,
                ):
                    results = self.batch_fn([p.item for p in batch])
                if len(results) != size:
                    raise ServiceError(
                        f"{self.name}: batch_fn returned {len(results)} "
                        f"results for {size} items"
                    )
            except BaseException as exc:  # noqa: BLE001 — relayed to callers
                for pending in batch:
                    pending.future._fail(exc, size)
                continue
            finally:
                self.metrics.counter(f"{self.name}.batches").inc()
                self.metrics.histogram(
                    f"{self.name}.batch_size",
                    bounds=(1, 2, 4, 8, 16, 32, 64, 128),
                ).observe(size)
            done = time.monotonic()
            compute_s = done - launch
            for pending, result in zip(batch, results):
                if pending.trace_parent is not None:
                    tracer.record_span(
                        f"{self.name}.infer",
                        parent=pending.trace_parent,
                        start_s=pending.enqueued_at,
                        end_s=done,
                        batch_size=size,
                        queue_wait_s=round(launch - pending.enqueued_at, 6),
                        compute_s=round(compute_s, 6),
                    )
                pending.future._fulfill(
                    result, size, launch - pending.enqueued_at, compute_s
                )
