"""Service observability: counters, latency histograms, structured events.

Every quantity the server records is queryable from tests and printed by
the CLI summary: monotonically increasing :class:`Counter`s, bucketed
:class:`Histogram`s (latency percentiles for the enqueue -> encode -> OT
-> done stages), and an append-only :class:`EventLog` of structured
per-session events.  All three are thread-safe; the server's worker
pool, the micro-batcher thread, and client threads all write
concurrently.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(f"{self.name}: counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


def latency_buckets() -> Tuple[float, ...]:
    """Default histogram bounds: 100 us .. 60 s, roughly log-spaced."""
    return (
        1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 60.0,
    )


class Histogram:
    """A fixed-bucket histogram with approximate percentiles.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything larger.  Percentiles are
    reported as the upper edge of the bucket holding the requested rank
    (the standard Prometheus-style estimate), which is exact enough for
    asserting latency behaviour in tests.
    """

    def __init__(self, name: str, bounds: Sequence[float] = None):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(
            float(b) for b in (bounds or latency_buckets())
        )
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ConfigurationError(
                f"{name}: histogram bounds must be ascending and non-empty"
            )
        self._counts = [0] * (len(self.bounds) + 1)
        self._total = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._total += value
            self._count += 1
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bucket edge holding the ``q``-quantile (0 < q <= 1)."""
        if not (0.0 < q <= 1.0):
            raise ConfigurationError(f"{self.name}: quantile must be in (0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for i, n in enumerate(self._counts):
                cumulative += n
                if cumulative >= rank:
                    if i < len(self.bounds):
                        return self.bounds[i]
                    return self._max if self._max is not None else 0.0
            return self._max if self._max is not None else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self._count,
                "total": self._total,
                "mean": self._total / self._count if self._count else 0.0,
                "min": self._min,
                "max": self._max,
                "buckets": dict(zip(self.bounds, self._counts)),
                "overflow": self._counts[-1],
            }


@dataclass(frozen=True)
class ServiceEvent:
    """One structured entry in the service event log."""

    seq: int
    t_s: float  # seconds since the log was created (monotonic clock)
    kind: str
    session_id: Optional[str] = None
    fields: Dict[str, object] = field(default_factory=dict)


class EventLog:
    """Append-only, thread-safe, queryable structured event log."""

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ConfigurationError("event-log capacity must be >= 1")
        self.capacity = int(capacity)
        self._events: List[ServiceEvent] = []
        self._dropped = 0
        self._seq = itertools.count()
        self._origin = time.monotonic()
        self._lock = threading.Lock()

    def emit(self, kind: str, session_id: str = None, **fields) -> None:
        event = ServiceEvent(
            seq=next(self._seq),
            t_s=time.monotonic() - self._origin,
            kind=kind,
            session_id=session_id,
            fields=fields,
        )
        with self._lock:
            if len(self._events) >= self.capacity:
                self._dropped += 1
                return
            self._events.append(event)

    def query(
        self, kind: str = None, session_id: str = None
    ) -> List[ServiceEvent]:
        """Events matching the filters, in emission order."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if session_id is not None:
            events = [e for e in events if e.session_id == session_id]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped


class MetricsRegistry:
    """Namespace of counters and histograms with one-call snapshots."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(
        self, name: str, bounds: Sequence[float] = None
    ) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, bounds)
            return self._histograms[name]

    def snapshot(self) -> Dict[str, object]:
        """All metric values as one nested dict (for tests / CLI)."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in counters.items()},
            "histograms": {n: h.snapshot() for n, h in histograms.items()},
        }
