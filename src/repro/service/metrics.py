"""Deprecated shim — the observability primitives moved to `repro.obs`.

``repro.service.metrics`` historically owned the service's counters,
histograms and event log.  Those primitives are now the shared
:mod:`repro.obs` subsystem (labeled metrics, Prometheus exposition,
merge-able snapshots) used by the pipeline and protocol as well.  This
module re-exports the public names so existing imports keep working;
new code should import from :mod:`repro.obs` directly.
"""

from __future__ import annotations

import warnings

from repro.obs.events import EventLog, ServiceEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_buckets,
)

warnings.warn(
    "repro.service.metrics is deprecated; import from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceEvent",
    "latency_buckets",
]
