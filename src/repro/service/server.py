"""The concurrent WaveKey access-control server.

:class:`WaveKeyAccessServer` is the deployment story of the paper's
contexts (lineup service, access control) as an actual server: many
users present gestures concurrently, each admitted session runs the full
pipeline — gesture acquisition, IMU/RF encoding, bidirectional-OT key
agreement — and the two encoder forward passes of *all* in-flight
sessions are coalesced by :class:`repro.service.batching.MicroBatcher`
into single stacked numpy calls.

Operational behaviour:

* **admission control** — a bounded queue; submissions past capacity are
  load-shed immediately with a structured :class:`RejectionReason`;
* **tau-deadline enforcement** — each session carries a
  :class:`ProtocolClock`; time spent waiting on the micro-batcher counts
  against the paper's ``2 s + tau`` announce deadline, so an overloaded
  encoder surfaces as protocol timeouts exactly as it would on a real
  reader;
* **bounded retries** — failed agreements retry the gesture up to
  ``max_attempts``, as the paper's deployments do;
* **observability** — counters, stage latency histograms
  (enqueue -> encode -> OT -> done), and a structured event log.
"""

from __future__ import annotations

import contextlib
import queue
import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.core.models import WaveKeyModelBundle
from repro.core.pipeline import KeySeedPipeline
from repro.crypto.pool import OTMaterialPool
from repro.datasets.generation import generate_sample
from repro.errors import ServiceError, SimulationError
from repro.gesture import default_volunteers, sample_gesture
from repro.imu import default_mobile_devices
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER as _NO_TRACE
from repro.obs.tracing import Tracer, resolve_tracer
from repro.protocol import (
    KeyAgreementConfig,
    ProtocolClock,
    run_key_agreement,
)
from repro.rfid import ChannelGeometry, default_environments, default_tags
from repro.service.batching import MicroBatcher
from repro.service.config import ServiceConfig
from repro.service.sessions import (
    AccessRequest,
    RejectionReason,
    SessionManager,
    SessionRecord,
    SessionState,
    SessionTicket,
)
from repro.utils.rng import child_rng


class WaveKeyAccessServer:
    """Concurrent key-establishment server over one trained bundle.

    ``acquire_fn`` and ``agreement_fn`` default to the real simulation
    and protocol; tests inject deterministic substitutes to drive the
    retry/timeout/shedding paths without Monte-Carlo noise.
    """

    def __init__(
        self,
        bundle: WaveKeyModelBundle,
        config: ServiceConfig = None,
        *,
        device=None,
        tag=None,
        environment=None,
        geometry: ChannelGeometry = None,
        agreement_config: KeyAgreementConfig = None,
        transport_factory: Callable[[], object] = None,
        acquire_fn: Callable = None,
        agreement_fn: Callable = None,
        tracer: Tracer = None,
    ):
        self.bundle = bundle
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self.tracer = tracer
        # The pipeline shares the server's registry, so its labeled
        # per-encoder series land next to the service counters.
        self.pipeline = KeySeedPipeline(bundle, metrics=self.metrics)
        self.device = device or default_mobile_devices()[3]
        self.tag = tag or default_tags()[0]
        self.environment = environment or default_environments()[0]
        self.geometry = geometry or ChannelGeometry()
        self.agreement_config = agreement_config or KeyAgreementConfig(
            eta=bundle.eta
        )
        self.transport_factory = transport_factory
        self._acquire_fn = acquire_fn or self._acquire
        self._agreement_fn = agreement_fn or run_key_agreement
        # Warm OT material, produced off the request path by the pool's
        # refill worker.  Only agreement functions that advertise
        # ``accepts_ot_pool`` receive it — injected test doubles and
        # older callables keep their exact signatures.
        self.ot_pool: Optional[OTMaterialPool] = None
        if self.config.ot_pool_depth > 0:
            self.ot_pool = OTMaterialPool(
                depth=self.config.ot_pool_depth,
                low_watermark=self.config.ot_pool_low_watermark,
                refill_interval_s=self.config.ot_pool_refill_s,
                metrics=self.metrics,
                tracer=tracer,
            )
            self.ot_pool.register(self.agreement_config.group)

        self.events = EventLog()
        self.sessions = SessionManager(self.metrics, self.events)
        self._imu_batcher = MicroBatcher(
            "imu_en",
            self.pipeline.imu_keyseeds,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_batch_wait_s,
            metrics=self.metrics,
            tracer=tracer,
        )
        self._rf_batcher = MicroBatcher(
            "rf_en",
            self.pipeline.rfid_keyseeds,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_batch_wait_s,
            metrics=self.metrics,
            tracer=tracer,
        )
        self._queue: "queue.Queue[Optional[SessionRecord]]" = queue.Queue()
        self._admission_lock = threading.Lock()
        # The OT exchange wall-clocks its big-int crafting into the
        # simulated timeline (ProtocolClock.measure).  That arithmetic
        # is pure Python, so the GIL serializes it across workers anyway
        # — running agreements "concurrently" would only charge every
        # in-flight protocol for its rivals' CPU time and spuriously
        # breach the tau deadline.  Acquisition shares the lock for the
        # same reason, from the other side: the gesture/DSP simulation
        # is host-side work a real device would do on its own silicon,
        # and letting it steal the GIL mid-craft would again bill one
        # session's protocol for another's simulation.  Encoding stays
        # outside the lock so concurrent windows can coalesce in the
        # micro-batcher.
        self._compute_lock = threading.Lock()
        self._pending = 0
        self._workers: List[threading.Thread] = []
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WaveKeyAccessServer":
        if self._running:
            raise ServiceError("server already started")
        self._running = True
        self._imu_batcher.start()
        self._rf_batcher.start()
        if self.ot_pool is not None:
            self.ot_pool.start()
        for i in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"wavekey-worker-{i}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        self.events.emit(
            "server_started",
            workers=self.config.workers,
            queue_capacity=self.config.queue_capacity,
            max_batch_size=self.config.max_batch_size,
        )
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join()
        self._workers = []
        self._imu_batcher.stop()
        self._rf_batcher.stop()
        if self.ot_pool is not None:
            self.ot_pool.stop()
        self.events.emit("server_stopped")

    def __enter__(self) -> "WaveKeyAccessServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- admission ---------------------------------------------------------

    def submit(self, request: AccessRequest) -> SessionTicket:
        """Admit (or shed) one session; never blocks on a full queue."""
        if not self._running:
            raise ServiceError("server is not running")
        with self._admission_lock:
            depth = self._pending
            if depth >= self.config.queue_capacity:
                return self.sessions.shed(
                    request,
                    RejectionReason(
                        code="queue_full",
                        detail=(
                            f"admission queue at capacity "
                            f"({depth}/{self.config.queue_capacity})"
                        ),
                        queue_depth=depth,
                        queue_capacity=self.config.queue_capacity,
                    ),
                )
            ticket = self.sessions.open(request)
            record = ticket._record
            record.timings["admitted_at"] = time.monotonic()
            tracer = self._tracer()
            if tracer.enabled:
                # Parent on the caller's distributed trace context when
                # the request carried one; a fresh root otherwise.
                record.trace = tracer.start_span(
                    "session",
                    parent=getattr(request, "trace_context", None),
                    session_id=record.session_id,
                )
            self._pending += 1
            self._queue.put(record)
        self.metrics.counter("service.admitted").inc()
        self.metrics.gauge("service.queue_depth").set(depth + 1)
        self.events.emit(
            "admitted", session_id=record.session_id, queue_depth=depth + 1
        )
        return ticket

    def establish(
        self, request: AccessRequest, timeout: float = None
    ) -> SessionRecord:
        """Blocking convenience: submit and wait for the terminal record."""
        return self.submit(request).result(timeout)

    def queue_state(self) -> Tuple[int, int]:
        """Current admission-queue ``(depth, capacity)``.

        The cluster tier scrapes this through the wire stats exchange:
        a backend running near capacity sheds, and the gateway folds
        that pressure into its routing weights rather than discovering
        it one ``busy`` frame at a time.
        """
        with self._admission_lock:
            return self._pending, self.config.queue_capacity

    # -- session processing ------------------------------------------------

    def _tracer(self) -> Tracer:
        return resolve_tracer(self.tracer)

    def _worker_loop(self) -> None:
        while True:
            record = self._queue.get()
            if record is None:
                return
            with self._admission_lock:
                self._pending -= 1
                self.metrics.gauge("service.queue_depth").set(self._pending)
            try:
                self._process(record)
            except Exception as exc:  # noqa: BLE001 — never kill a worker
                self.sessions.abort(record, f"internal: {exc}")
                if record.trace is not None and not record.trace.finished:
                    self._tracer().finish_span(record.trace, status="error")

    def _deadline_left(self, record: SessionRecord) -> float:
        spent = time.monotonic() - record.timings["admitted_at"]
        return self.config.session_deadline_s - spent

    def _time_out(
        self, record: SessionRecord, code: str, stage: str, detail: str
    ) -> None:
        record.failure_reason = f"{code}: {detail}"
        self.sessions.transition(
            record, SessionState.TIMED_OUT,
            code=code, stage=stage, detail=detail,
        )

    def _finish_timings(self, record: SessionRecord) -> None:
        total = time.monotonic() - record.timings.pop("admitted_at")
        record.timings["total_s"] = total
        self.metrics.histogram("service.total_s").observe(total)
        if record.trace is not None:
            record.trace.set_attribute("state", record.state.value)
            record.trace.set_attribute("attempts", record.attempts)
            if record.failure_reason:
                record.trace.set_attribute("failure", record.failure_reason)
            self._tracer().finish_span(
                record.trace,
                status="ok" if record.success else "error",
            )

    def _process(self, record: SessionRecord) -> None:
        request = record.request
        tracer = self._tracer()
        root = record.trace
        pickup = time.monotonic()
        queue_wait = pickup - record.timings["admitted_at"]
        record.timings["queue_wait_s"] = queue_wait
        self.metrics.histogram("service.queue_wait_s").observe(queue_wait)
        if root is not None:
            # Retroactive: the wait already happened, on another thread.
            tracer.record_span(
                "enqueue", parent=root,
                start_s=record.timings["admitted_at"], end_s=pickup,
            )

        if self._deadline_left(record) <= 0:
            self._time_out(
                record, "session_deadline", "queue",
                f"waited {queue_wait * 1000:.1f} ms in the admission queue",
            )
            self._finish_timings(record)
            return

        for attempt in range(1, self.config.max_attempts + 1):
            record.attempts = attempt
            self.metrics.counter("service.attempts").inc()
            if attempt > 1:
                self.metrics.counter("service.retries").inc()
                self.events.emit(
                    "retry", session_id=record.session_id, attempt=attempt
                )
            rng = child_rng(request.rng_seed, "attempt", attempt)
            self.sessions.transition(
                record, SessionState.ENCODING, attempt=attempt
            )

            # The protocol clock starts at the gesture start; acquisition
            # occupies the 2 s window, after which the encoders must
            # produce the key-seed before the announce deadline (2 + tau).
            clock = ProtocolClock(
                start_s=self.agreement_config.gesture_window_s
            )

            # Stage spans hang directly under the session root so every
            # attempt's enqueue -> encode -> agreement chain reads off
            # one flat tree level.  ``stages`` is the disabled tracer
            # when the session has no root (tracing off at admission).
            stages = tracer if root is not None else _NO_TRACE

            try:
                with stages.span("acquire", parent=root, attempt=attempt):
                    with self._compute_lock:
                        a_matrix, r_matrix = self._acquire_fn(
                            request, child_rng(rng, "acquire")
                        )
            except SimulationError as exc:
                record.failure_reason = f"acquisition: {exc}"
                self.events.emit(
                    "attempt_failed", session_id=record.session_id,
                    attempt=attempt, reason=record.failure_reason,
                )
                continue

            encode_start = time.monotonic()
            budget = self._deadline_left(record)
            if budget <= 0:
                self._time_out(
                    record, "session_deadline", "encode",
                    "wall-clock budget exhausted before encoding",
                )
                self._finish_timings(record)
                return
            try:
                with stages.span(
                    "encode", parent=root, attempt=attempt
                ) as encode_span:
                    future_m = self._imu_batcher.submit(a_matrix)
                    future_r = self._rf_batcher.submit(r_matrix)
                    seed_m = future_m.result(timeout=budget)
                    seed_r = future_r.result(timeout=budget)
                    encode_span.set_attribute(
                        "batch_size", future_m.batch_size
                    )
            except ServiceError as exc:
                self._time_out(
                    record, "session_deadline", "encode", str(exc)
                )
                self._finish_timings(record)
                return
            encode_s = time.monotonic() - encode_start
            record.timings["encode_s"] = encode_s
            self.metrics.histogram("service.encode_s").observe(encode_s)
            # The mobile encodes IMU while the reader encodes RF, so the
            # slower chain gates the announce.  Charge the tau deadline
            # with the serving-attributable latency (batch queue wait +
            # batch compute), not raw wall time: wall time also absorbs
            # GIL contention from other sessions' OT arithmetic, which a
            # real reader would not experience.
            encoder_latency = max(
                future_m.queue_wait_s + future_m.compute_s,
                future_r.queue_wait_s + future_r.compute_s,
            )
            record.timings["encoder_latency_s"] = encoder_latency
            self.metrics.histogram("service.encoder_latency_s").observe(
                encoder_latency
            )
            clock.advance(encoder_latency)
            self.events.emit(
                "encoded", session_id=record.session_id, attempt=attempt,
                encode_s=encode_s, batch_size=future_m.batch_size,
            )

            self.sessions.transition(
                record, SessionState.AGREEING, attempt=attempt
            )
            transport = (
                self.transport_factory()
                if self.transport_factory is not None
                else None
            )
            agree_start = time.monotonic()
            agreement_fn = request.agreement_fn or self._agreement_fn
            # An agreement_fn that blocks on I/O (the network front end)
            # opts out of the compute lock via ``hold_compute_lock``:
            # holding it across socket waits would serialize every other
            # session behind the slowest client.
            compute_lock = (
                self._compute_lock
                if getattr(agreement_fn, "hold_compute_lock", True)
                else contextlib.nullcontext()
            )
            # The "ot" span is active on this thread while the protocol
            # runs, so run_key_agreement's own "agreement" span (and its
            # ot.*/reconcile children) nest under it via the active-span
            # stack — no tracer plumbing through injected agreement_fns.
            agree_kwargs = {}
            if self.ot_pool is not None and getattr(
                agreement_fn, "accepts_ot_pool", False
            ):
                agree_kwargs["pool"] = self.ot_pool
            with stages.span("ot", parent=root, attempt=attempt) as ot_span:
                with compute_lock:
                    outcome = agreement_fn(
                        seed_m,
                        seed_r,
                        config=self.agreement_config,
                        transport=transport,
                        clock=clock,
                        rng=child_rng(rng, "agreement"),
                        **agree_kwargs,
                    )
                ot_span.set_attribute("success", outcome.success)
            agree_s = time.monotonic() - agree_start
            record.timings["agree_s"] = agree_s
            record.timings["protocol_elapsed_s"] = outcome.elapsed_s
            self.metrics.histogram("service.agree_s").observe(agree_s)

            if outcome.success:
                record.key = outcome.mobile_key
                record.failure_reason = None
                self.sessions.transition(
                    record, SessionState.ESTABLISHED,
                    attempt=attempt, elapsed_s=outcome.elapsed_s,
                )
                self._finish_timings(record)
                return

            record.failure_reason = outcome.failure_reason or "keys differ"
            timed_out = record.failure_reason.startswith("deadline")
            self.events.emit(
                "attempt_failed", session_id=record.session_id,
                attempt=attempt, reason=record.failure_reason,
                timed_out=timed_out,
            )
            if timed_out and not self.config.retry_on_timeout:
                self.sessions.transition(
                    record, SessionState.TIMED_OUT,
                    code="tau_deadline", stage="agreement",
                    detail=record.failure_reason,
                )
                self._finish_timings(record)
                return
            if self._deadline_left(record) <= 0:
                self._time_out(
                    record, "session_deadline", "retry",
                    "wall-clock budget exhausted between attempts",
                )
                self._finish_timings(record)
                return

        self.sessions.transition(
            record, SessionState.FAILED,
            attempts=record.attempts, reason=record.failure_reason,
        )
        self._finish_timings(record)

    # -- default acquisition ----------------------------------------------

    def _acquire(self, request: AccessRequest, rng):
        """Simulate one gesture observed by both sensor chains."""
        volunteer = request.volunteer or default_volunteers()[0]
        trajectory = sample_gesture(volunteer, child_rng(rng, "gesture"))
        sample = generate_sample(
            trajectory,
            request.device or self.device,
            request.tag or self.tag,
            request.environment or self.environment,
            dynamic=request.dynamic,
            geometry=self.geometry,
            rng=child_rng(rng, "sample"),
        )
        return sample.a_matrix, sample.r_matrix
