"""Synthetic load generator for :class:`WaveKeyAccessServer`.

Drives a server with a configurable arrival process (instantaneous burst
or a fixed-rate open loop) and condenses the terminal session records
plus the server's metrics into a :class:`LoadReport`.  Used by the
``repro loadgen`` CLI command, the rush-hour example, and the
service-throughput benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.service.server import WaveKeyAccessServer
from repro.service.sessions import AccessRequest, SessionRecord, SessionState
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class LoadProfile:
    """Shape of the offered load.

    ``arrival_rate_hz=0`` submits every session at once (a rush-hour
    burst, the worst case for admission control); a positive rate spaces
    arrivals ``1/rate`` seconds apart (open-loop Poisson-ish offered
    load without the jitter, so runs are reproducible).
    """

    sessions: int = 64
    arrival_rate_hz: float = 0.0
    rng_seed: int = 0
    dynamic: bool = False

    def __post_init__(self):
        if self.sessions < 1:
            raise ConfigurationError("sessions must be >= 1")
        if self.arrival_rate_hz < 0:
            raise ConfigurationError("arrival_rate_hz must be >= 0")


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    profile: LoadProfile
    elapsed_s: float
    records: List[SessionRecord]
    metrics: Dict[str, object] = field(default_factory=dict)

    def count(self, state: SessionState) -> int:
        return sum(1 for r in self.records if r.state is state)

    @property
    def offered(self) -> int:
        return len(self.records)

    @property
    def established(self) -> int:
        return self.count(SessionState.ESTABLISHED)

    @property
    def shed(self) -> int:
        return self.count(SessionState.SHED)

    @property
    def throughput_hz(self) -> float:
        return self.established / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def summary_lines(self) -> List[str]:
        histograms = self.metrics.get("histograms", {})
        total = histograms.get("service.total_s", {})
        lines = [
            f"offered sessions     : {self.offered}",
            f"established          : {self.established}",
            f"failed               : {self.count(SessionState.FAILED)}",
            f"timed out            : {self.count(SessionState.TIMED_OUT)}",
            f"shed                 : {self.shed}",
            f"wall time            : {self.elapsed_s:.3f} s",
            f"throughput           : {self.throughput_hz:.2f} keys/s",
        ]
        if total.get("count"):
            lines.append(
                f"session latency mean : {total['mean'] * 1000:.1f} ms"
            )
        return lines


def run_load(
    server: WaveKeyAccessServer, profile: LoadProfile = None
) -> LoadReport:
    """Offer ``profile`` to a *running* server and wait for every verdict.

    Shed sessions resolve immediately; admitted ones are awaited to
    their terminal state, so the report always covers all offered
    sessions.
    """
    profile = profile or LoadProfile()
    tickets = []
    start = time.monotonic()
    for i in range(profile.sessions):
        request = AccessRequest(
            rng_seed=derive_seed(profile.rng_seed, "loadgen", i),
            dynamic=profile.dynamic,
        )
        tickets.append(server.submit(request))
        if profile.arrival_rate_hz > 0 and i + 1 < profile.sessions:
            time.sleep(1.0 / profile.arrival_rate_hz)
    records = [ticket.result() for ticket in tickets]
    elapsed = time.monotonic() - start
    return LoadReport(
        profile=profile,
        elapsed_s=elapsed,
        records=records,
        metrics=server.metrics.snapshot(),
    )
