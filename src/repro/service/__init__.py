"""Concurrent WaveKey access-control service.

The deployment layer of the reproduction: a server that admits many
concurrent key-establishment sessions, coalesces their encoder forward
passes through a micro-batching inference scheduler, enforces the
paper's tau deadline plus a wall-clock session budget, retries failed
gestures a bounded number of times, sheds load past queue capacity with
structured rejections, and exposes counters / latency histograms / a
queryable event log.

Quick start::

    from repro.core.pretrained import load_default_bundle
    from repro.service import (
        AccessRequest, LoadProfile, WaveKeyAccessServer, run_load,
    )

    with WaveKeyAccessServer(load_default_bundle()) as server:
        record = server.establish(AccessRequest(rng_seed=7))
        report = run_load(server, LoadProfile(sessions=32))
"""

from repro.obs.events import EventLog, ServiceEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.service.batching import BatchFuture, MicroBatcher
from repro.service.config import ServiceConfig
from repro.service.loadgen import LoadProfile, LoadReport, run_load
from repro.service.server import WaveKeyAccessServer
from repro.service.sessions import (
    AccessRequest,
    RejectionReason,
    SessionManager,
    SessionRecord,
    SessionState,
    SessionTicket,
)

__all__ = [
    "AccessRequest",
    "BatchFuture",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LoadProfile",
    "LoadReport",
    "MetricsRegistry",
    "MicroBatcher",
    "RejectionReason",
    "ServiceConfig",
    "ServiceEvent",
    "SessionManager",
    "SessionRecord",
    "SessionState",
    "SessionTicket",
    "WaveKeyAccessServer",
    "run_load",
]
