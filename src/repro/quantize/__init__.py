"""Key-seed quantization (paper SIV-C).

Both encoders end with batch-norm, so every latent element is
approximately standard normal.  The quantizer splits the normal
distribution into ``N_b`` equiprobable bins (Eq. 1), encodes each bin
index with a gray code so adjacent bins differ in exactly one bit, and
concatenates the per-element codes into the key-seed (Eq. 2).
"""

from repro.quantize.bins import equiprobable_normal_boundaries, quantize_normal
from repro.quantize.gray import (
    gray_bits_per_symbol,
    gray_code_table,
    gray_decode,
    gray_encode,
)
from repro.quantize.keyseed import KeySeedQuantizer

__all__ = [
    "equiprobable_normal_boundaries",
    "quantize_normal",
    "gray_bits_per_symbol",
    "gray_code_table",
    "gray_decode",
    "gray_encode",
    "KeySeedQuantizer",
]
