"""Gray coding of bin indices.

The point of gray coding here (paper SIV-C, citing Doran's survey) is
robustness: when the mobile device and the RFID server quantize nearly
equal latent values into *adjacent* bins, the resulting key-seed bits
should differ in exactly one position.  The reflected binary gray code
has that property between consecutive integers, and — crucially for a
non-power-of-two ``N_b`` such as the paper's 9 — any *prefix* of the
gray sequence keeps it, so we encode bin ``i`` as the ``i``-th gray
codeword on ``ceil(log2(N_b))`` bits.

Deviation note (recorded in DESIGN.md): the paper quotes the fractional
``l_s = l_f * log2(N_b)``; with whole-bit gray codewords the seed length
is ``l_f * ceil(log2(N_b))``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError


def gray_bits_per_symbol(n_symbols: int) -> int:
    """Codeword width needed for ``n_symbols`` distinct gray codes."""
    if n_symbols < 2:
        raise QuantizationError(f"need at least 2 symbols, got {n_symbols}")
    return int(np.ceil(np.log2(n_symbols)))


def gray_encode(index: int) -> int:
    """The ``index``-th reflected binary gray code as an integer."""
    index = int(index)
    if index < 0:
        raise QuantizationError("gray index must be non-negative")
    return index ^ (index >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    code = int(code)
    if code < 0:
        raise QuantizationError("gray code must be non-negative")
    index = 0
    while code:
        index ^= code
        code >>= 1
    return index


def gray_code_table(n_symbols: int) -> np.ndarray:
    """Bit table of shape ``(n_symbols, width)``: row ``i`` is the gray
    codeword of bin ``i``, MSB first."""
    width = gray_bits_per_symbol(n_symbols)
    table = np.zeros((n_symbols, width), dtype=np.uint8)
    for i in range(n_symbols):
        g = gray_encode(i)
        for b in range(width):
            table[i, b] = (g >> (width - 1 - b)) & 1
    return table
