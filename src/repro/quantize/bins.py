"""Equiprobable quantization bins for standard-normal variables.

Paper Eq. 1: the boundary between bins ``i`` and ``i+1`` solves
``Phi(b_i) = i / N_b`` — each bin captures equal probability mass, which
maximizes the entropy of the quantized symbol stream.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.errors import QuantizationError


def equiprobable_normal_boundaries(n_bins: int) -> np.ndarray:
    """The ``n_bins - 1`` interior boundaries of Eq. 1.

    Returned in increasing order; bin ``i`` is
    ``(boundaries[i-1], boundaries[i])`` with open ends at +-infinity.
    """
    if n_bins < 2:
        raise QuantizationError(f"need at least 2 bins, got {n_bins}")
    fractions = np.arange(1, n_bins) / n_bins
    return norm.ppf(fractions)


def quantize_normal(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Bin index (0-based) of each value under the equiprobable bins."""
    values = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(values)):
        raise QuantizationError("cannot quantize non-finite values")
    boundaries = equiprobable_normal_boundaries(n_bins)
    return np.searchsorted(boundaries, values, side="right")
