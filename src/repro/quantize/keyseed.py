"""Feature vector -> key-seed conversion (paper SIV-C).

:class:`KeySeedQuantizer` composes the equiprobable normal bins (Eq. 1)
with gray encoding: each latent element becomes ``ceil(log2(N_b))`` seed
bits, and the per-element codes are concatenated (Eq. 2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.quantize.bins import (
    equiprobable_normal_boundaries,
    quantize_normal,
)
from repro.quantize.gray import gray_bits_per_symbol, gray_code_table
from repro.utils.bits import BitSequence


class KeySeedQuantizer:
    """Quantizes standard-normal latent vectors into key-seeds."""

    def __init__(self, n_bins: int):
        if n_bins < 2:
            raise QuantizationError(f"n_bins must be >= 2, got {n_bins}")
        self.n_bins = int(n_bins)
        self.boundaries = equiprobable_normal_boundaries(self.n_bins)
        self.bits_per_element = gray_bits_per_symbol(self.n_bins)
        self._table = gray_code_table(self.n_bins)

    def seed_length(self, feature_length: int) -> int:
        """Key-seed length ``l_s`` for a latent vector of ``l_f`` elements
        (the whole-bit version of Eq. 2)."""
        if feature_length < 1:
            raise QuantizationError("feature_length must be >= 1")
        return feature_length * self.bits_per_element

    def bin_indices(self, features: np.ndarray) -> np.ndarray:
        """Equiprobable bin index of each latent element."""
        features = np.asarray(features, dtype=np.float64).ravel()
        return quantize_normal(features, self.n_bins)

    def quantize(self, features: np.ndarray) -> BitSequence:
        """Full quantize-and-encode step: latent vector -> key-seed."""
        indices = self.bin_indices(features)
        return BitSequence(self._table[indices].reshape(-1))

    def __repr__(self) -> str:
        return (
            f"KeySeedQuantizer(n_bins={self.n_bins}, "
            f"bits_per_element={self.bits_per_element})"
        )
