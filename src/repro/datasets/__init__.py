"""Dataset generation following the paper's procedure (SIV-E.1)."""

from repro.datasets.generation import (
    DatasetConfig,
    WaveKeyDataset,
    WaveKeySample,
    generate_dataset,
    generate_sample,
)
from repro.datasets.normalization import (
    normalize_imu_matrix,
    normalize_rfid_matrix,
    rfid_magnitude_target,
)

__all__ = [
    "DatasetConfig",
    "WaveKeyDataset",
    "WaveKeySample",
    "generate_dataset",
    "generate_sample",
    "normalize_imu_matrix",
    "normalize_rfid_matrix",
    "rfid_magnitude_target",
]
