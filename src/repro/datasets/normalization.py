"""Input normalization for the autoencoders.

The raw matrices A (200x3 linear accelerations, m/s^2) and R (400x2
phase/magnitude) carry per-session nuisance offsets the gesture latent
space must not depend on: the RFID phase has a random cable/chip offset,
and the magnitude's absolute level depends on distance and tag gain.  We
remove exactly those nuisances (mean-removal / relative magnitude) and
rescale each channel into an O(1) range — nothing else, so all gesture
information survives.

These transforms are applied identically at training and inference time
on both ends of the protocol.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.validation import check_matrix

#: Gravity-based scale for accelerations.
_ACC_SCALE = 9.81
#: Phase swings a few radians during a gesture.
_PHASE_SCALE = np.pi
#: Relative magnitude ripple is ~10%; x10 brings it to O(1).
_MAG_SCALE = 10.0


def normalize_imu_matrix(a: np.ndarray) -> np.ndarray:
    """``A`` (n, 3) -> channels-first (3, n), in gravity units."""
    a = check_matrix("A", a, (-1, 3))
    return (a / _ACC_SCALE).T.copy()


def normalize_rfid_matrix(r: np.ndarray) -> np.ndarray:
    """``R`` (2n, 2) -> channels-first (2, 2n), nuisance offsets removed.

    Channel 0: phase, mean-removed (kills the random cable/chip offset),
    in units of pi.  Channel 1: relative magnitude ripple around the
    window mean, scaled to O(1).
    """
    r = check_matrix("R", r, (-1, 2))
    phase = r[:, 0] - r[:, 0].mean()
    mag_mean = r[:, 1].mean()
    if mag_mean <= 0:
        raise ShapeError("RFID magnitudes must be positive")
    magnitude = (r[:, 1] / mag_mean - 1.0) * _MAG_SCALE
    return np.stack([phase / _PHASE_SCALE, magnitude])


def rfid_magnitude_target(r: np.ndarray) -> np.ndarray:
    """The decoder's reconstruction target: the normalized magnitude
    vector (the paper's R^Mag — De recovers magnitude, not phase,
    because phase is too environment-sensitive; SIV-E.2)."""
    return normalize_rfid_matrix(r)[1]
