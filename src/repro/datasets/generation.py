"""End-to-end dataset generation (paper SIV-E.1).

The paper's dataset D: six volunteers x four mobile devices x 30 long
gestures each (20 in two static environments, 10 in a dynamic one), with
20 random two-second windows cut from every gesture — 14,400
``<A_i, R_i>`` samples.  :func:`generate_dataset` reproduces that
procedure over the simulated substrates with every count configurable,
so unit tests can run a miniature version of the same pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.gesture import (
    GestureTrajectory,
    VolunteerProfile,
    default_volunteers,
    sample_gesture,
)
from repro.imu import (
    CalibrationConfig,
    MobileDeviceProfile,
    MobileIMU,
    calibrate_imu_record,
    default_mobile_devices,
)
from repro.rfid import (
    ChannelGeometry,
    EnvironmentProfile,
    RFIDProcessingConfig,
    RFIDReader,
    TagProfile,
    default_environments,
    default_tags,
    process_rfid_record,
)
from repro.utils.rng import child_rng, ensure_rng


@dataclass
class WaveKeySample:
    """One cross-modal training/evaluation sample."""

    a_matrix: np.ndarray  # (200, 3) linear accelerations
    r_matrix: np.ndarray  # (400, 2) processed phase/magnitude
    volunteer: str
    device: str
    tag: str
    environment: str
    dynamic: bool
    gesture_id: int
    window_offset_s: float


@dataclass
class WaveKeyDataset:
    """A collection of samples plus the configuration that produced it."""

    samples: List[WaveKeySample]

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[WaveKeySample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> WaveKeySample:
        return self.samples[index]

    def a_matrices(self) -> np.ndarray:
        """All A matrices stacked: (N, 200, 3)."""
        return np.stack([s.a_matrix for s in self.samples])

    def r_matrices(self) -> np.ndarray:
        """All R matrices stacked: (N, 400, 2)."""
        return np.stack([s.r_matrix for s in self.samples])

    def split(self, train_fraction: float, rng=None):
        """Random train/validation split."""
        if not (0.0 < train_fraction < 1.0):
            raise ConfigurationError("train_fraction must be in (0, 1)")
        rng = ensure_rng(rng)
        order = rng.permutation(len(self.samples))
        cut = int(round(train_fraction * len(self.samples)))
        train = WaveKeyDataset([self.samples[i] for i in order[:cut]])
        val = WaveKeyDataset([self.samples[i] for i in order[cut:]])
        return train, val


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of the generation procedure; defaults are a scaled-down
    version of the paper's counts (the full 14,400-sample run is used by
    the benchmark harness)."""

    volunteers: Sequence[VolunteerProfile] = None
    devices: Sequence[MobileDeviceProfile] = None
    tags: Sequence[TagProfile] = None
    environments: Sequence[EnvironmentProfile] = None
    gestures_per_device: int = 6
    static_gesture_fraction: float = 2.0 / 3.0
    windows_per_gesture: int = 20
    gesture_active_s: float = 6.0
    window_s: float = 2.0
    user_distance_m: float = 5.0
    user_azimuth_deg: float = 0.0
    #: When set, the user position is drawn fresh per gesture from these
    #: ranges instead of the fixed values above — required for encoders
    #: that must generalize across the Table II geometries.
    randomize_distance_m: tuple = None  # e.g. (1.0, 9.0)
    randomize_azimuth_deg: tuple = None  # e.g. (-60.0, 60.0)

    def resolved(self):
        """Fill None fields with the paper's default hardware roster."""
        return (
            list(self.volunteers or default_volunteers()),
            list(self.devices or default_mobile_devices()),
            list(self.tags or default_tags()),
            list(self.environments or default_environments()),
        )


def generate_sample(
    trajectory: GestureTrajectory,
    device: MobileDeviceProfile,
    tag: TagProfile,
    environment: EnvironmentProfile,
    dynamic: bool = False,
    geometry: ChannelGeometry = None,
    offset_s: float = 0.0,
    rng=None,
    volunteer: str = "anonymous",
    gesture_id: int = 0,
) -> WaveKeySample:
    """Run both acquisition pipelines on one gesture window."""
    rng = ensure_rng(rng)
    geometry = geometry or ChannelGeometry()
    imu = MobileIMU(device)
    record_imu = imu.record_gesture(trajectory, rng=child_rng(rng, "imu"))
    a = calibrate_imu_record(record_imu, offset_s=offset_s)

    channel = environment.build_channel(
        tag, geometry, dynamic=dynamic, rng=child_rng(rng, "walkers")
    )
    reader = RFIDReader()
    record_rfid = reader.record_gesture(
        channel, trajectory, rng=child_rng(rng, "rfid")
    )
    r = process_rfid_record(record_rfid, offset_s=offset_s)

    return WaveKeySample(
        a_matrix=a,
        r_matrix=r,
        volunteer=volunteer,
        device=device.name,
        tag=tag.name,
        environment=environment.name,
        dynamic=dynamic,
        gesture_id=gesture_id,
        window_offset_s=offset_s,
    )


def generate_dataset(
    config: DatasetConfig = DatasetConfig(), rng=None, verbose: bool = False
) -> WaveKeyDataset:
    """Reproduce the SIV-E.1 collection procedure on the simulator.

    For every (volunteer, device) pair, ``gestures_per_device`` long
    gestures are performed: the first ``static_gesture_fraction`` of them
    split across the first two (static) environments, the rest in a
    dynamic environment with walking people.  Each gesture contributes
    ``windows_per_gesture`` random overlapping 2 s windows; both
    acquisition pipelines run once per window (the expensive sensor
    simulation runs once per gesture).
    """
    rng = ensure_rng(rng)
    volunteers, devices, tags, environments = config.resolved()
    if len(environments) < 3:
        raise ConfigurationError(
            "need >= 3 environments (two static + one dynamic)"
        )
    if config.gesture_active_s < config.window_s + 0.6:
        raise ConfigurationError(
            "gesture_active_s too short for window extraction"
        )
    samples: List[WaveKeySample] = []
    gesture_id = 0
    max_offset = config.gesture_active_s - config.window_s - 0.5
    for vi, volunteer in enumerate(volunteers):
        for di, device in enumerate(devices):
            n_static = int(
                round(config.static_gesture_fraction
                      * config.gestures_per_device)
            )
            for gi in range(config.gestures_per_device):
                g_rng = child_rng(rng, "gesture", vi, di, gi)
                trajectory = sample_gesture(
                    volunteer, g_rng, active_s=config.gesture_active_s
                )
                if gi < n_static:
                    environment = environments[gi % 2]
                    dynamic = False
                else:
                    environment = environments[2]
                    dynamic = True
                tag = tags[(vi + di + gi) % len(tags)]
                distance = config.user_distance_m
                azimuth = config.user_azimuth_deg
                if config.randomize_distance_m is not None:
                    distance = float(
                        g_rng.uniform(*config.randomize_distance_m)
                    )
                if config.randomize_azimuth_deg is not None:
                    azimuth = float(
                        g_rng.uniform(*config.randomize_azimuth_deg)
                    )
                geometry = ChannelGeometry(
                    user_distance_m=distance,
                    user_azimuth_deg=azimuth,
                )
                # Sensor simulation runs once per gesture; windows reuse
                # the records through the offset parameter.
                imu = MobileIMU(device)
                record_imu = imu.record_gesture(
                    trajectory, rng=child_rng(g_rng, "imu")
                )
                channel = environment.build_channel(
                    tag, geometry, dynamic=dynamic,
                    rng=child_rng(g_rng, "walkers"),
                )
                record_rfid = RFIDReader().record_gesture(
                    channel, trajectory, rng=child_rng(g_rng, "rfid")
                )
                offsets = g_rng.uniform(
                    0.0, max(max_offset, 0.0),
                    size=config.windows_per_gesture,
                )
                for offset in offsets:
                    try:
                        a = calibrate_imu_record(
                            record_imu, offset_s=float(offset)
                        )
                        r = process_rfid_record(
                            record_rfid, offset_s=float(offset)
                        )
                    except SimulationError:
                        # A window ran off the end of a record (onset
                        # detected late); skip it rather than fail the run.
                        continue
                    samples.append(
                        WaveKeySample(
                            a_matrix=a,
                            r_matrix=r,
                            volunteer=volunteer.name,
                            device=device.name,
                            tag=tag.name,
                            environment=environment.name,
                            dynamic=dynamic,
                            gesture_id=gesture_id,
                            window_offset_s=float(offset),
                        )
                    )
                gesture_id += 1
            if verbose:
                print(
                    f"[dataset] {volunteer.name} x {device.name}: "
                    f"{len(samples)} samples so far"
                )
    if not samples:
        raise SimulationError("dataset generation produced no samples")
    return WaveKeyDataset(samples)
