"""Exception hierarchy for the WaveKey reproduction library.

Every error raised deliberately by :mod:`repro` derives from
:class:`WaveKeyError`, so callers can catch library failures with a single
``except`` clause while still distinguishing the failure class when they
need to.
"""

from __future__ import annotations


class WaveKeyError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(WaveKeyError):
    """A configuration value is out of range or internally inconsistent."""


class ShapeError(WaveKeyError):
    """An array argument does not have the documented shape."""


class TrainingError(WaveKeyError):
    """Model training could not proceed (bad dataset, divergence, ...)."""


class QuantizationError(WaveKeyError):
    """Key-seed quantization failed (bad bin count, non-finite input, ...)."""


class ProtocolError(WaveKeyError):
    """A protocol message was malformed or violated the state machine."""


class DeadlineExceeded(ProtocolError):
    """A critical protocol message arrived after the tau deadline (SIV-D.2)."""


class TransportError(WaveKeyError):
    """Moving bytes between protocol endpoints failed.

    Raised by both the simulated channel (:mod:`repro.protocol.transport`)
    and the real wire (:mod:`repro.net`): oversized frames, undecodable
    bytes, timed-out reads, dropped messages, and closed connections all
    derive from this class, so a client can retry on ``TransportError``
    without accidentally swallowing protocol or crypto failures.
    """


class FrameTooLarge(TransportError):
    """A frame (or simulated message) exceeds the configured size limit."""


class DecodeError(TransportError):
    """Received bytes could not be decoded into a protocol message."""


class ConnectionTimeout(TransportError):
    """A connect or read deadline expired before the peer answered."""


class ConnectionClosed(TransportError):
    """The peer closed the connection mid-conversation."""


class MessageDropped(TransportError, ProtocolError):
    """A transport interceptor dropped a message instead of relaying it.

    Subclasses both :class:`TransportError` (it is a delivery failure)
    and :class:`ProtocolError` (historical position in the hierarchy, so
    existing ``except ProtocolError`` handlers keep working).
    """


class GroupMismatch(ProtocolError):
    """Client and server are configured for different OT groups.

    The group is negotiated in the wire ``Hello`` (empty group id ==
    the historical 512-bit MODP default); a server answering with a
    ``group`` error frame refuses the session before any element
    bytes are exchanged, and the client raises this instead of
    retrying — a retry against the same server cannot succeed.
    """

    #: Wire error code carried in the ErrorFrame for this rejection.
    wire_code = "group"


class KeyAgreementFailure(ProtocolError):
    """The two parties could not converge on a common key.

    Raised when ECC reconciliation fails or the HMAC confirmation does not
    verify.  A benign run hitting this indicates too-noisy key seeds; an
    attack run hitting this is the intended outcome.
    """


class DecodingError(WaveKeyError):
    """An error-correcting code could not decode (too many bit errors)."""


class CryptoError(WaveKeyError):
    """A cryptographic primitive was misused or failed an internal check."""


class SimulationError(WaveKeyError):
    """A physical-layer simulation produced invalid state."""


class ServiceError(WaveKeyError):
    """The access-control service was misused (submit after shutdown,
    double start, result read before completion, ...)."""


class AccessError(WaveKeyError):
    """The post-agreement secure access layer rejected an operation.

    Raised by :mod:`repro.access`: ticket lifecycle violations, record
    authentication failures, and misuse of the channel state machine
    all derive from this class so callers can separate access-layer
    refusals from transport faults (retryable) and protocol failures.
    """


class TicketError(AccessError):
    """A session-resumption ticket could not be honoured."""

    #: Wire error code carried in the ErrorFrame for this rejection.
    wire_code = "ticket_rejected"


class TicketUnknown(TicketError):
    """No live ticket with this id (never issued, or already evicted)."""

    wire_code = "ticket_unknown"


class TicketExpired(TicketError):
    """The ticket's TTL elapsed before the resumption attempt."""

    wire_code = "ticket_expired"


class TicketRevoked(TicketError):
    """The ticket was explicitly revoked and must never resume again."""

    wire_code = "ticket_revoked"


class RecordRejected(AccessError):
    """An AEAD record failed authentication or sequencing.

    Covers forged/tampered ciphertexts, replayed or reordered sequence
    numbers, and oversized plaintexts.  A channel that raises this is
    poisoned: both ends tear the connection down rather than resync.
    """


class ReplicationError(AccessError):
    """A ticket-replication log entry or exchange is invalid.

    Raised by :mod:`repro.replica` for malformed entry documents,
    content-address mismatches (a tampered or corrupted entry), and
    structurally invalid digest vectors received from a peer.
    """
