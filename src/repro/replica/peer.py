"""Peer protocol: one-round-trip replication exchanges.

The replication wire rides the existing event-loop front ends the same
way the stats scrape does (:mod:`repro.cluster.stats`): a replication
frame sent as a connection's *first* frame is answered with exactly one
reply and the connection closes.  Three exchanges exist:

* :func:`pull_entries` — ``REPL_PULL`` carrying my digest; the peer
  answers ``REPL_PUSH`` with only the per-origin suffixes I lack, plus
  its own digest (so the caller can push back what the *peer* lacks);
* :func:`push_entries` — ``REPL_PUSH`` carrying a batch of entries;
  the peer ingests and acks with ``REPL_DIGEST`` (its updated
  high-water vector);
* :func:`fetch_replica_status` — ``REPL_DIGEST`` with an empty vector;
  the peer answers ``REPL_DIGEST`` describing where it stands (the
  ``repro replica status`` CLI, and a cheap liveness check for the
  replication layer specifically).

All payloads are JSON documents; digest vectors are validated with
:func:`repro.replica.log.parse_digest` before use.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ReplicationError
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    ErrorFrame,
    ReplDigest,
    ReplPull,
    ReplPush,
)
from repro.net.connection import connect
from repro.replica.log import ReplEntry, parse_digest


def _exchange(
    host: str,
    port: int,
    message,
    *,
    timeout_s: float,
    max_frame_bytes: int,
):
    conn = connect(
        host,
        port,
        timeout_s=timeout_s,
        read_timeout_s=timeout_s,
        max_frame_bytes=max_frame_bytes,
    )
    try:
        conn.send(message)
        return conn.recv(timeout_s=timeout_s)
    finally:
        conn.close()


def _parse_document(reply) -> dict:
    if isinstance(reply, ErrorFrame):
        raise ReplicationError(
            f"peer refused replication exchange: {reply.code} "
            f"({reply.detail})"
        )
    try:
        document = json.loads(reply.payload_json)
    except (AttributeError, ValueError) as exc:
        raise ProtocolError(
            f"replication payload is not JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ProtocolError("replication payload is not a JSON object")
    return document


def pull_entries(
    host: str,
    port: int,
    *,
    sender: str,
    digest: Dict[str, int],
    timeout_s: float = 2.0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Tuple[List[dict], Dict[str, int]]:
    """Ask a peer for every entry ``digest`` lacks.

    Returns ``(entry_documents, peer_digest)`` — the documents are the
    raw wire dicts (the caller's log verifies content addresses during
    ingest), the digest is validated here.
    """
    reply = _exchange(
        host,
        port,
        ReplPull(sender=sender, payload_json=json.dumps({"digest": digest})),
        timeout_s=timeout_s,
        max_frame_bytes=max_frame_bytes,
    )
    if not isinstance(reply, (ReplPush, ErrorFrame)):
        raise ProtocolError(
            f"expected REPL_PUSH, got {type(reply).__name__}"
        )
    document = _parse_document(reply)
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise ProtocolError("replication pull reply has no entry list")
    return entries, parse_digest(document.get("digest") or {})


def push_entries(
    host: str,
    port: int,
    *,
    sender: str,
    entries: List[ReplEntry],
    timeout_s: float = 2.0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Dict[str, int]:
    """Push a batch of entries to a peer; returns its post-ingest
    digest (the ack — the pusher learns immediately what stuck)."""
    reply = _exchange(
        host,
        port,
        ReplPush(
            sender=sender,
            payload_json=json.dumps(
                {"entries": [entry.to_doc() for entry in entries]}
            ),
        ),
        timeout_s=timeout_s,
        max_frame_bytes=max_frame_bytes,
    )
    if not isinstance(reply, (ReplDigest, ErrorFrame)):
        raise ProtocolError(
            f"expected REPL_DIGEST, got {type(reply).__name__}"
        )
    document = _parse_document(reply)
    return parse_digest(document.get("digest") or {})


def fetch_replica_status(
    host: str,
    port: int,
    *,
    sender: str = "status-probe",
    timeout_s: float = 2.0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> dict:
    """Fetch a front end's replication status document.

    Returns the raw JSON document: ``origin``, ``digest`` (validated),
    and ``entries``.  Raises :class:`ReplicationError` when the target
    does not replicate (typed ``replication_disabled`` refusal).
    """
    reply = _exchange(
        host,
        port,
        ReplDigest(sender=sender, payload_json=json.dumps({"digest": {}})),
        timeout_s=timeout_s,
        max_frame_bytes=max_frame_bytes,
    )
    if not isinstance(reply, (ReplDigest, ErrorFrame)):
        raise ProtocolError(
            f"expected REPL_DIGEST, got {type(reply).__name__}"
        )
    document = _parse_document(reply)
    document["digest"] = parse_digest(document.get("digest") or {})
    return document
