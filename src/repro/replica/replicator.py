"""The backend-side replication engine.

One :class:`Replicator` per replicating front end.  It owns the
backend's :class:`~repro.replica.log.ReplicationLog`, observes the
:class:`~repro.access.store.KeyStore` through its listener hook, and
moves entries with two complementary mechanisms:

* **eager push** (latency path) — every local grant is pushed, off the
  request path on a dedicated worker thread, to the ticket's *ring
  owner* (the backend a gateway would route the resume to — same hash,
  same virtual-node count), so ring-faithful resumes succeed on the
  first anti-entropy-free attempt; every local revocation is pushed to
  *all* peers, because a revocation racing its own propagation is a
  security hole, not a staleness bug;
* **anti-entropy** (convergence path) — a scheduler thread
  periodically exchanges digests with one peer (round-robin): pull the
  per-origin suffixes we lack, then push the suffixes the peer lacks.
  Every entry eventually reaches every backend regardless of which
  eager pushes were lost, and a rebooted backend catches up by digest
  delta without replaying the world.

Backends without a static peer list (``serve --replicate`` behind a
gateway) still converge: the gateway's health-probe loop ferries
digests and entries between backends each replication interval
(:class:`repro.cluster.gateway.WaveKeyGateway`).

The front end answers incoming ``REPL_*`` frames by delegating to
:meth:`Replicator.handle`, which never blocks — ingest is in-memory
log recording plus O(1) store mutations.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.access.store import KeyStore, Ticket
from repro.errors import ConfigurationError, ReplicationError, WaveKeyError
from repro.net.codec import ErrorFrame, ReplDigest, ReplPull, ReplPush
from repro.obs.tracing import resolve_tracer
from repro.replica.log import ReplicationLog, parse_digest
from repro.replica.peer import pull_entries, push_entries


def _parse_address(spec: str) -> Tuple[str, int]:
    host, _, port = str(spec).rpartition(":")
    if not host or not port.isdigit():
        raise ConfigurationError(
            f"replication peer must be HOST:PORT, got {spec!r}"
        )
    return host, int(port)


def new_epoch() -> str:
    """Per-process origin qualifier: a rebooted backend starts a new
    origin, so its fresh sequence numbers can never collide with
    entries peers already hold from its previous life."""
    return os.urandom(4).hex()


class Replicator:
    """Ticket-state replication for one backend front end.

    Constructed before the server (the server takes it as
    ``replicator=``); :meth:`attach` is called by ``start()`` once the
    listen address — the backend's fleet identity — is known.  Peers
    may be empty (gateway-ferried fleets) and can be set later
    (:meth:`set_peers`) once the rest of an in-process fleet is up.
    """

    def __init__(
        self,
        store: KeyStore,
        *,
        peers: Iterable[str] = (),
        origin: Optional[str] = None,
        anti_entropy_interval_s: float = 0.5,
        push_timeout_s: float = 2.0,
        ring_replicas: int = 64,
        metrics=None,
        events=None,
        tracer=None,
        wall_clock=time.time,
    ):
        if anti_entropy_interval_s <= 0:
            raise ConfigurationError(
                "anti_entropy_interval_s must be positive"
            )
        self.store = store
        self.metrics = metrics
        self.events = events
        self.tracer = tracer
        self.anti_entropy_interval_s = float(anti_entropy_interval_s)
        self.push_timeout_s = float(push_timeout_s)
        self.ring_replicas = int(ring_replicas)
        self._wall_clock = wall_clock
        self._explicit_origin = origin
        self.origin: Optional[str] = origin
        self.self_key: Optional[str] = None
        self.log: Optional[ReplicationLog] = None
        self._peers_lock = threading.Lock()
        self._peers: List[str] = [str(p) for p in peers]
        self._ring = None  # rebuilt lazily when membership changes
        self._outbox: "queue.Queue" = queue.Queue()
        self._stop = threading.Event()
        self._push_thread: Optional[threading.Thread] = None
        self._ae_thread: Optional[threading.Thread] = None
        self._ae_index = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def attach(self, front_end) -> "Replicator":
        """Bind to a started front end: identity, metrics, threads."""
        host, port = front_end.address
        if self.metrics is None:
            self.metrics = front_end.metrics
        if self.events is None:
            self.events = front_end.events
        return self.start(self_key=f"{host}:{port}")

    def start(self, *, self_key: str) -> "Replicator":
        """Start the engine under the given fleet identity."""
        if self._started:
            return self
        self.self_key = str(self_key)
        if self.origin is None:
            self.origin = f"{self.self_key}/{new_epoch()}"
        self.log = ReplicationLog(
            self.origin,
            self.store,
            metrics=self.metrics,
            wall_clock=self._wall_clock,
        )
        self.store.listener = self._on_store_event
        self._stop.clear()
        self._push_thread = threading.Thread(
            target=self._push_forever,
            name=f"wavekey-repl-push-{self.self_key}",
            daemon=True,
        )
        self._push_thread.start()
        self._ae_thread = threading.Thread(
            target=self._anti_entropy_forever,
            name=f"wavekey-repl-ae-{self.self_key}",
            daemon=True,
        )
        self._ae_thread.start()
        self._started = True
        if self.events is not None:
            self.events.emit(
                "replica_started", origin=self.origin,
                peers=len(self._peers),
            )
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._stop.set()
        self._outbox.put(None)  # wake the push worker
        if self._push_thread is not None:
            self._push_thread.join(timeout=5.0)
        if self._ae_thread is not None:
            self._ae_thread.join(timeout=5.0)
        if self.store.listener == self._on_store_event:
            self.store.listener = None

    def set_peers(self, peers: Iterable[str]) -> None:
        """Replace the peer list (addresses ``HOST:PORT``).

        In-process fleets start all backends first, then tell each
        about the others; the ring used for eager-push ownership is
        rebuilt on next use.
        """
        with self._peers_lock:
            self._peers = [str(p) for p in peers if str(p) != self.self_key]
            self._ring = None

    @property
    def peers(self) -> List[str]:
        with self._peers_lock:
            return list(self._peers)

    # -- store listener (request threads) ------------------------------

    def _on_store_event(
        self, op: str, ticket_id: str, ticket: Optional[Ticket]
    ) -> None:
        entry = self.log.record_local(op, ticket_id, ticket)
        if not self._stop.is_set():
            self._outbox.put(entry)

    # -- eager push (worker thread) ------------------------------------

    def _ring_owner(self, route_key: str) -> Optional[str]:
        """The backend a gateway would route ``route_key`` to."""
        with self._peers_lock:
            if not self._peers:
                return None
            if self._ring is None:
                from repro.cluster.ring import ShardRing

                ring = ShardRing(replicas=self.ring_replicas)
                for key in self._peers + [self.self_key]:
                    ring.add(key)
                self._ring = ring
            return self._ring.lookup(route_key)

    def _eager_targets(self, entry) -> List[str]:
        if entry.op == "grant":
            owner = self._ring_owner(f"ticket#{entry.ticket_id}")
            if owner is None or owner == self.self_key:
                return []
            return [owner]
        if entry.op == "revoke":
            return self.peers
        return []  # expiry is reproducible everywhere; no rush

    def _push_forever(self) -> None:
        while not self._stop.is_set():
            try:
                entry = self._outbox.get(timeout=0.2)
            except queue.Empty:
                continue
            if entry is None:
                continue
            # Drain the burst so one connection carries a whole batch.
            burst = [entry]
            while True:
                try:
                    extra = self._outbox.get_nowait()
                except queue.Empty:
                    break
                if extra is not None:
                    burst.append(extra)
            by_target: Dict[str, list] = {}
            for item in burst:
                for target in self._eager_targets(item):
                    by_target.setdefault(target, []).append(item)
            for target, entries in by_target.items():
                self._push_to(target, entries, kind="eager")

    def _push_to(self, target: str, entries: list, *, kind: str) -> bool:
        host, port = _parse_address(target)
        try:
            push_entries(
                host,
                port,
                sender=self.origin,
                entries=entries,
                timeout_s=self.push_timeout_s,
            )
        except WaveKeyError:
            self._count(
                "replica.push.sent", kind=kind, result="error"
            )
            return False
        except OSError:
            self._count(
                "replica.push.sent", kind=kind, result="error"
            )
            return False
        self._count("replica.push.sent", kind=kind, result="ok")
        return True

    # -- anti-entropy (scheduler thread) -------------------------------

    def _anti_entropy_forever(self) -> None:
        while not self._stop.wait(self.anti_entropy_interval_s):
            peer = self._next_peer()
            if peer is None:
                continue
            tracer = resolve_tracer(self.tracer)
            with tracer.span(
                "replica.anti_entropy", peer=peer, origin=self.origin
            ):
                ok = self.sync_with(peer)
            self._count(
                "replica.anti_entropy.rounds",
                result="ok" if ok else "error",
            )

    def _next_peer(self) -> Optional[str]:
        with self._peers_lock:
            if not self._peers:
                return None
            peer = self._peers[self._ae_index % len(self._peers)]
            self._ae_index += 1
            return peer

    def sync_with(self, peer: str) -> bool:
        """One bidirectional anti-entropy round with ``peer``.

        Pull the suffixes we lack (their digest rides the reply), then
        push the suffixes the peer lacks.  Returns ``False`` on any
        transport/protocol failure — the next round retries.
        """
        host, port = _parse_address(peer)
        try:
            docs, remote_digest = pull_entries(
                host,
                port,
                sender=self.origin,
                digest=self.log.digest(),
                timeout_s=self.push_timeout_s,
            )
            if docs:
                self.log.ingest_documents(docs)
            to_send = self.log.missing_for(remote_digest)
            if to_send:
                push_entries(
                    host,
                    port,
                    sender=self.origin,
                    entries=to_send,
                    timeout_s=self.push_timeout_s,
                )
        except (WaveKeyError, OSError):
            self._count("replica.peer.errors", peer=peer)
            return False
        return True

    # -- incoming frames (front-end dispatch) --------------------------

    def handle(self, message):
        """Answer one ``REPL_*`` first-frame; returns the reply.

        Non-blocking (in-memory log + O(1) store ops) so the
        event-loop front end may call it on the loop thread.
        """
        try:
            document = json.loads(message.payload_json)
            if not isinstance(document, dict):
                raise ReplicationError("payload is not a JSON object")
            if isinstance(message, ReplDigest):
                return self._digest_reply()
            if isinstance(message, ReplPull):
                digest = parse_digest(document.get("digest") or {})
                missing = self.log.missing_for(digest)
                self._count("replica.pull.served")
                return ReplPush(
                    sender=self.origin,
                    payload_json=json.dumps({
                        "entries": [e.to_doc() for e in missing],
                        "digest": self.log.digest(),
                    }),
                )
            if isinstance(message, ReplPush):
                entries = document.get("entries")
                if not isinstance(entries, list):
                    raise ReplicationError("push carries no entry list")
                outcomes = self.log.ingest_documents(entries)
                self._count("replica.push.received")
                if self.events is not None and outcomes["new"]:
                    self.events.emit(
                        "replica_ingested", sender=message.sender,
                        new=outcomes["new"],
                    )
                return self._digest_reply()
        except (ReplicationError, ValueError) as exc:
            self._count("replica.requests", outcome="invalid")
            return ErrorFrame("replication_invalid", str(exc))
        return ErrorFrame(
            "replication_invalid",
            f"unexpected replication frame {type(message).__name__}",
        )

    def _digest_reply(self) -> ReplDigest:
        return ReplDigest(
            sender=self.origin,
            payload_json=json.dumps(self.status()),
        )

    # -- introspection -------------------------------------------------

    def status(self) -> dict:
        """JSON-ready engine status (also the REPL_DIGEST payload)."""
        return {
            "origin": self.origin,
            "digest": self.log.digest() if self.log is not None else {},
            "entries": self.log.entries_held() if self.log else 0,
            "peers": self.peers,
        }

    def _count(self, name: str, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, labels=labels or None).inc()
