"""repro.replica — fleet-wide ticket-state replication.

Makes any backend able to honour a resume and every backend reject a
revoked ticket, regardless of which backend issued or revoked it:

* :mod:`repro.replica.log` — per-backend append-only replication log:
  every local grant/revoke/expire becomes a content-addressed
  :class:`ReplEntry` under a monotonic per-origin sequence; incoming
  entries are verified, deduplicated, and applied to the
  :class:`~repro.access.store.KeyStore` under revoked > expired >
  unknown precedence, so a revocation wins regardless of arrival
  order;
* :mod:`repro.replica.peer` — the one-round-trip wire exchanges
  (``REPL_PULL`` / ``REPL_PUSH`` / ``REPL_DIGEST``) riding the
  existing framed TCP front ends;
* :mod:`repro.replica.replicator` — the per-backend engine: eager push
  of grants to the ticket's ring owner and revocations to all peers,
  plus periodic digest-based anti-entropy so rebooted or partitioned
  backends converge by pulling only the per-origin suffixes they lack.

Fleets behind a gateway need no static peer lists: the gateway's
health-probe loop ferries entries between backends each replication
interval.

Quick start (two in-process backends)::

    from repro.access import KeyStore
    from repro.replica import Replicator

    a, b = KeyStore(), KeyStore()
    ra = Replicator(a).start(self_key="127.0.0.1:7001")
    rb = Replicator(b).start(self_key="127.0.0.1:7002")
    ra.set_peers(["127.0.0.1:7002"])      # direct-mesh wiring
    # ... grants on `a` now replicate; see Replicator.sync_with().
"""

from repro.replica.log import (
    ENTRY_OPS,
    ReplEntry,
    ReplicationLog,
    compute_entry_id,
    parse_digest,
)
from repro.replica.peer import (
    fetch_replica_status,
    pull_entries,
    push_entries,
)
from repro.replica.replicator import Replicator, new_epoch

__all__ = [
    "ENTRY_OPS",
    "ReplEntry",
    "ReplicationLog",
    "Replicator",
    "compute_entry_id",
    "fetch_replica_status",
    "new_epoch",
    "parse_digest",
    "pull_entries",
    "push_entries",
]
