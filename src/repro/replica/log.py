"""Append-only replication log of ticket-state mutations.

Every replicating backend keeps one :class:`ReplicationLog`: a
per-origin, monotonically-sequenced record of the ``grant`` /
``revoke`` / ``expire`` mutations its :class:`~repro.access.store.KeyStore`
performed locally, plus every entry learned from peers.  The log is
the unit of convergence — two backends whose logs hold the same
entries hold the same ticket state, because entry application is
deterministic and order-independent:

* **content-addressed entries** — an entry id is a BLAKE2b hash over
  the canonical JSON of ``(origin, seq, op, ticket_id, payload)``, so
  duplicates are suppressed by identity and a tampered or corrupted
  entry fails :meth:`ReplEntry.from_doc` instead of poisoning a store;
* **per-origin high-water digests** — :meth:`ReplicationLog.digest`
  summarises the log as ``{origin: highest contiguous seq}``; a peer
  compares digests and sends only the missing suffix
  (:meth:`missing_for`), so anti-entropy cost scales with the delta,
  not the world;
* **precedence-safe application** — entries are applied through the
  store's remote-apply surface (:meth:`KeyStore.adopt` /
  :meth:`KeyStore.apply_remote_revoke` / :meth:`KeyStore.discard`),
  which enforces ``revoked > expired > unknown``: a revoke entry
  arriving before its grant tombstones the id and the late grant is
  refused, whatever the delivery order.

Clock note: tickets internally live on a per-process (possibly
monotonic) clock, so absolute expiries do not travel.  A grant entry
carries ``expires_unix`` (wall clock at append time plus remaining
life); the applying replica rebases onto its own store clock with the
remaining wall-clock life, which converges to within propagation delay
— and any drift is bounded by the origin's own ``expire`` entry.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.access.store import KeyStore, Ticket
from repro.errors import ReplicationError
from repro.obs.metrics import MetricsRegistry

#: Mutation kinds a replication entry may carry.
ENTRY_OPS = ("grant", "revoke", "expire")

#: Entry-id digest size (hex doubles it: 32 chars).
_ID_BYTES = 16


def compute_entry_id(
    origin: str, seq: int, op: str, ticket_id: str, payload: Dict[str, object]
) -> str:
    """Content address of one entry: BLAKE2b over canonical JSON."""
    canonical = json.dumps(
        {
            "origin": origin,
            "seq": seq,
            "op": op,
            "ticket_id": ticket_id,
            "payload": payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=_ID_BYTES
    ).hexdigest()


@dataclass(frozen=True)
class ReplEntry:
    """One immutable replication log entry.

    ``origin`` names the log instance that appended it (address plus a
    per-process epoch, so a rebooted backend restarts a fresh origin
    and can never collide with its own pre-crash sequence numbers);
    ``seq`` is 1-based and strictly monotonic per origin.
    """

    origin: str
    seq: int
    op: str
    ticket_id: str
    payload: Dict[str, object]
    entry_id: str

    def to_doc(self) -> Dict[str, object]:
        """Wire form (JSON-serializable)."""
        return {
            "origin": self.origin,
            "seq": self.seq,
            "op": self.op,
            "ticket_id": self.ticket_id,
            "payload": dict(self.payload),
            "id": self.entry_id,
        }

    @staticmethod
    def from_doc(doc: Dict[str, object]) -> "ReplEntry":
        """Parse and *verify* one wire document.

        Recomputes the content address — an entry whose id does not
        match its content (tampering, corruption, or a buggy peer) is
        rejected with :class:`ReplicationError`.
        """
        if not isinstance(doc, dict):
            raise ReplicationError("replication entry is not an object")
        try:
            origin = str(doc["origin"])
            seq = int(doc["seq"])
            op = str(doc["op"])
            ticket_id = str(doc["ticket_id"])
            payload = dict(doc["payload"])
            entry_id = str(doc["id"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(
                f"malformed replication entry: {exc}"
            ) from exc
        if op not in ENTRY_OPS:
            raise ReplicationError(f"unknown replication op {op!r}")
        if seq < 1:
            raise ReplicationError(f"entry seq must be >= 1, got {seq}")
        expected = compute_entry_id(origin, seq, op, ticket_id, payload)
        if entry_id != expected:
            raise ReplicationError(
                f"entry id mismatch for {origin}#{seq}: "
                f"got {entry_id}, content hashes to {expected}"
            )
        return ReplEntry(
            origin=origin,
            seq=seq,
            op=op,
            ticket_id=ticket_id,
            payload=payload,
            entry_id=entry_id,
        )


def parse_digest(document: object) -> Dict[str, int]:
    """Validate a peer's digest vector ``{origin: high_water}``."""
    if not isinstance(document, dict):
        raise ReplicationError("digest is not an object")
    digest: Dict[str, int] = {}
    for origin, high in document.items():
        try:
            value = int(high)
        except (TypeError, ValueError) as exc:
            raise ReplicationError(
                f"digest value for {origin!r} is not an integer"
            ) from exc
        if value < 0:
            raise ReplicationError(
                f"digest value for {origin!r} is negative"
            )
        digest[str(origin)] = value
    return digest


class ReplicationLog:
    """Per-backend replication log over one (optional) key store.

    With a ``store`` attached, freshly-ingested remote entries are
    applied to it; without one the log is a pure relay (the gateway's
    ferry holds entries it never applies).  Thread-safe: local appends
    run on server worker threads, ingest on the event-loop thread, and
    digest reads on the anti-entropy thread.
    """

    def __init__(
        self,
        origin: str,
        store: Optional[KeyStore] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        wall_clock: Callable[[], float] = time.time,
    ):
        if not origin:
            raise ReplicationError("replication origin must be non-empty")
        self.origin = str(origin)
        self.store = store
        self._metrics = metrics
        self._wall_clock = wall_clock
        self._lock = threading.RLock()
        self._entries: Dict[str, Dict[int, ReplEntry]] = {}
        self._next_seq = 1

    # -- metrics -------------------------------------------------------

    def _count(self, name: str, **labels: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                name, labels=labels or None
            ).inc()

    def _update_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("replica.log.entries").set(
                self.entries_held()
            )

    # -- local appends -------------------------------------------------

    def record_local(
        self, op: str, ticket_id: str, ticket: Optional[Ticket]
    ) -> ReplEntry:
        """Append one local store mutation (listener-shaped).

        ``grant`` entries carry the full replicable ticket state —
        resumption secret included, since any backend honouring the
        resume must be able to re-derive the channel keys — with the
        expiry translated to wall clock (``expires_unix``).
        """
        if op == "grant":
            if ticket is None:
                raise ReplicationError("grant entry needs its ticket")
            remaining = ticket.expires_at - (
                self.store.now() if self.store is not None
                else ticket.issued_at
            )
            payload: Dict[str, object] = {
                "resume_secret": ticket.resume_secret.hex(),
                "peer": ticket.peer,
                "lifetime_s": ticket.lifetime_s,
                "expires_unix": self._wall_clock() + max(0.0, remaining),
                "metadata": dict(ticket.metadata),
            }
        elif op == "revoke":
            payload = {"at_unix": self._wall_clock()}
        elif op == "expire":
            payload = {}
        else:
            raise ReplicationError(f"unknown replication op {op!r}")
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            entry = ReplEntry(
                origin=self.origin,
                seq=seq,
                op=op,
                ticket_id=str(ticket_id),
                payload=payload,
                entry_id=compute_entry_id(
                    self.origin, seq, op, str(ticket_id), payload
                ),
            )
            self._entries.setdefault(self.origin, {})[seq] = entry
        self._count("replica.log.appends", op=op)
        self._update_gauge()
        return entry

    # -- remote ingest -------------------------------------------------

    def ingest(self, entry: ReplEntry) -> str:
        """Record one peer entry; returns the outcome label.

        * ``"new"`` — first sighting: recorded and (when a store is
          attached) applied;
        * ``"duplicate"`` — already held, byte-identical: dropped;
        * ``"conflict"`` — a *different* entry claims the same
          ``(origin, seq)`` slot.  First write wins; with
          epoch-qualified origins this only happens under tampering,
          so the imposter is dropped and counted.

        Out-of-order arrival is fine: entries are stored sparsely (the
        digest only advances over the contiguous prefix, so gaps are
        re-pulled by anti-entropy) and application is precedence-safe.
        """
        with self._lock:
            per_origin = self._entries.setdefault(entry.origin, {})
            existing = per_origin.get(entry.seq)
            if existing is not None:
                outcome = (
                    "duplicate"
                    if existing.entry_id == entry.entry_id
                    else "conflict"
                )
                self._count("replica.ingest", outcome=outcome)
                return outcome
            per_origin[entry.seq] = entry
            if entry.origin == self.origin and entry.seq >= self._next_seq:
                # Our own (rebooted-instance) entries echoed back must
                # never let a future local append reuse their seq.
                self._next_seq = entry.seq + 1
        self._count("replica.ingest", outcome="new")
        self._update_gauge()
        if self.store is not None:
            self._apply(entry)
        return "new"

    def ingest_documents(self, docs: List[dict]) -> Dict[str, int]:
        """Ingest a wire batch; returns outcome counts.

        A malformed or tampered document is counted (``"invalid"``)
        and skipped — one bad entry never poisons the batch.
        """
        outcomes = {"new": 0, "duplicate": 0, "conflict": 0, "invalid": 0}
        for doc in docs:
            try:
                entry = ReplEntry.from_doc(doc)
            except ReplicationError:
                outcomes["invalid"] += 1
                self._count("replica.ingest", outcome="invalid")
                continue
            outcomes[self.ingest(entry)] += 1
        return outcomes

    def _apply(self, entry: ReplEntry) -> None:
        """Apply one remote entry to the attached store."""
        store = self.store
        if entry.op == "grant":
            try:
                secret = bytes.fromhex(str(entry.payload["resume_secret"]))
                expires_unix = float(entry.payload["expires_unix"])
                peer = str(entry.payload.get("peer", ""))
                metadata = {
                    str(k): str(v)
                    for k, v in dict(
                        entry.payload.get("metadata") or {}
                    ).items()
                }
            except (KeyError, TypeError, ValueError):
                self._count("replica.apply", op="grant", outcome="invalid")
                return
            remaining = expires_unix - self._wall_clock()
            if remaining <= 0:
                self._count("replica.apply", op="grant", outcome="stale")
                return
            now = store.now()
            outcome = store.adopt(
                Ticket(
                    ticket_id=entry.ticket_id,
                    resume_secret=secret,
                    peer=peer,
                    issued_at=now,
                    expires_at=now + remaining,
                    metadata=metadata,
                )
            )
            self._count("replica.apply", op="grant", outcome=outcome)
        elif entry.op == "revoke":
            was_live = store.apply_remote_revoke(entry.ticket_id)
            self._count(
                "replica.apply",
                op="revoke",
                outcome="revoked_live" if was_live else "tombstoned",
            )
        elif entry.op == "expire":
            was_live = store.discard(entry.ticket_id)
            self._count(
                "replica.apply",
                op="expire",
                outcome="discarded" if was_live else "noop",
            )

    # -- digests and suffix queries ------------------------------------

    def digest(self) -> Dict[str, int]:
        """Per-origin high-water vector (contiguous from seq 1)."""
        with self._lock:
            digest: Dict[str, int] = {}
            for origin, entries in self._entries.items():
                high = 0
                while (high + 1) in entries:
                    high += 1
                if high:
                    digest[origin] = high
            return digest

    def missing_for(self, remote_digest: Dict[str, int]) -> List[ReplEntry]:
        """Entries the remote digest lacks, in per-origin seq order.

        Only the suffix beyond the remote's high-water is sent —
        sparsely-held entries above a local gap are included too (the
        receiver stores them sparsely, same as we do).
        """
        missing: List[ReplEntry] = []
        with self._lock:
            for origin, entries in self._entries.items():
                floor = int(remote_digest.get(origin, 0))
                missing.extend(
                    entries[seq]
                    for seq in sorted(entries)
                    if seq > floor
                )
        return missing

    # -- introspection -------------------------------------------------

    def entries_held(self) -> int:
        with self._lock:
            return sum(len(e) for e in self._entries.values())

    def status(self) -> Dict[str, object]:
        """JSON-ready summary: identity, digest, entry count."""
        return {
            "origin": self.origin,
            "digest": self.digest(),
            "entries": self.entries_held(),
        }
