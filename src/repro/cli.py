"""Command-line interface.

Usage (after ``pip install -e .``)::

    repro establish [--seed N] [--dynamic] [--distance M] [--trace-out F]
    repro establish --connect HOST:PORT [--seed N]
    repro inspect
    repro attack {guess,mimic,spoof} [--trials N]
    repro serve [--dry-run] [--workers N] [--queue-capacity N] ...
    repro serve --listen HOST:PORT [--port-file F] [--sessions N]
                [--no-event-loop] [--ticket-journal F] [--ticket-ttl S]
    repro access grant --connect HOST:PORT --ticket-file F [--seed N]
    repro access {query,open} --connect HOST:PORT --ticket-file F
                 [--target NAME]
    repro access revoke --connect HOST:PORT --ticket-file F
    repro loadgen [--sessions N] [--rate HZ] [--seed N]
    repro loadgen --connect HOST:PORT [--sessions N]
    repro cluster serve --backend HOST:PORT [--backend HOST:PORT ...]
                        [--listen HOST:PORT] [--port-file F]
    repro cluster metrics HOST:PORT [--json FILE]
    repro obs trace TRACE.jsonl
    repro obs metrics METRICS.json

``establish`` runs one end-to-end key establishment against the
pretrained bundle and prints the outcome; ``inspect`` summarizes the
shipped bundle's operating point; ``attack`` runs a small campaign of
the chosen attack and reports its success rate; ``serve`` brings up the
concurrent access-control server (:mod:`repro.service`) and processes a
burst of synthetic sessions; ``loadgen`` drives a server with a
configurable offered load and prints the load report.

Networked mode (:mod:`repro.net`): ``serve --listen HOST:PORT`` puts
the access server on a TCP socket (port 0 picks a free port;
``--port-file`` writes the bound address for scripts), and
``establish``/``loadgen`` with ``--connect HOST:PORT`` run real
client sessions against it over the wire.  Connections are served by
the selectors event loop by default; ``--no-event-loop`` selects the
thread-per-connection front end instead.

Secure access (:mod:`repro.access`): ``access grant`` runs one
establishment and parks the resumption ticket in ``--ticket-file``;
``access query``/``access open`` reopen a secure channel from that
ticket — no gesture, no OT — and run the authenticated op over the
encrypted record layer; ``access revoke`` kills the ticket server-side
so later resumptions fail with a typed error.  ``serve
--ticket-journal FILE`` persists the server's key store so a restart
honours live tickets and still rejects revoked ones.

Clustered mode (:mod:`repro.cluster`): ``cluster serve`` runs the
consistent-hash sharding gateway over one or more ``--backend``
addresses (see ``scripts/run_cluster.py`` for a one-command local
fleet), and ``cluster metrics HOST:PORT`` scrapes any front end —
against a gateway it prints the per-backend fleet table and the
*merged* metrics snapshot.  ``loadgen --connect`` pointed at a gateway
appends a per-backend breakdown (sessions routed, p50/p99 latency per
shard) to its report.

Observability: ``--trace-out FILE`` on ``establish``/``serve``/
``loadgen`` exports the run's span trace as JSONL, ``--metrics-out
FILE`` dumps the metrics-registry snapshot as JSON, and ``--profile``
enables per-layer encoder profiling (printed after the run and, with
tracing on, attached as per-layer child spans).  ``repro obs trace``
renders a trace file as ASCII span trees; ``repro obs metrics`` renders
a snapshot file as Prometheus-style text exposition.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.attacks import (
    GestureMimicryAttack,
    RandomGuessAttack,
    SignalSpoofingAttack,
)
from repro.core import KeySeedPipeline, WaveKeySystem
from repro.core.pretrained import load_default_bundle
from repro.errors import AccessError, WaveKeyError
from repro.gesture import default_volunteers
from repro.imu import default_mobile_devices
from repro.protocol import KeyAgreementConfig
from repro.rfid import ChannelGeometry, default_environments, default_tags
from repro.utils.rng import child_rng


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="WaveKey reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_args(p):
        p.add_argument("--trace-out", metavar="FILE", default=None,
                       help="export the run's span trace as JSONL")
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="dump the metrics-registry snapshot as JSON")
        p.add_argument("--profile", action="store_true",
                       help="record per-layer encoder forward timings")

    establish = sub.add_parser(
        "establish", help="run one end-to-end key establishment"
    )
    establish.add_argument("--seed", type=int, default=7)
    establish.add_argument("--dynamic", action="store_true",
                           help="people walking around the reader")
    establish.add_argument("--distance", type=float, default=5.0,
                           help="user-to-antenna distance in metres")
    establish.add_argument("--azimuth", type=float, default=0.0,
                           help="user azimuth in degrees")
    establish.add_argument("--key-bits", type=int, default=256)
    establish.add_argument(
        "--group", choices=("modp512", "curve25519"), default="modp512",
        help="OT group: 512-bit MODP (wire-compatible default) or "
             "Curve25519")
    establish.add_argument("--connect", metavar="HOST:PORT", default=None,
                           help="establish against a networked server "
                                "instead of running in-process")
    add_obs_args(establish)

    sub.add_parser("inspect", help="summarize the pretrained bundle")

    attack = sub.add_parser("attack", help="run an attack campaign")
    attack.add_argument("kind", choices=("guess", "mimic", "spoof"))
    attack.add_argument("--trials", type=int, default=10)
    attack.add_argument("--seed", type=int, default=1)

    def add_service_args(p):
        add_obs_args(p)
        p.add_argument("--workers", type=int, default=2)
        p.add_argument("--queue-capacity", type=int, default=32)
        p.add_argument("--batch-size", type=int, default=16,
                       help="micro-batcher max batch size")
        p.add_argument("--batch-wait-ms", type=float, default=2.0,
                       help="micro-batcher max wait before launching")
        p.add_argument("--max-attempts", type=int, default=3)
        p.add_argument("--session-deadline", type=float, default=30.0,
                       help="wall-clock budget per session in seconds")
        p.add_argument("--ot-pool-depth", type=int, default=256,
                       help="warm OT material pool depth per kind "
                            "(0 disables the pool)")
        p.add_argument("--ot-pool-refill", type=float, default=0.05,
                       metavar="SECONDS",
                       help="idle poll interval of the OT pool's "
                            "background refill worker")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--group", choices=("modp512", "curve25519"),
            default="modp512",
            help="OT group: 512-bit MODP (wire-compatible default) or "
                 "Curve25519")

    serve = sub.add_parser(
        "serve", help="run the concurrent access-control server"
    )
    add_service_args(serve)
    serve.add_argument("--sessions", type=int, default=8,
                       help="synthetic sessions to serve before exiting; "
                            "with --listen, networked sessions to serve "
                            "(0 = run until interrupted)")
    serve.add_argument("--dry-run", action="store_true",
                       help="validate config and print the operating "
                            "point without serving")
    serve.add_argument("--listen", metavar="HOST:PORT", default=None,
                       help="serve real clients on a TCP socket "
                            "(port 0 picks a free port)")
    serve.add_argument("--port-file", metavar="FILE", default=None,
                       help="with --listen, write the bound HOST:PORT "
                            "to FILE once listening")
    serve.add_argument("--event-loop", dest="event_loop",
                       action="store_true", default=True,
                       help="with --listen, serve connections on the "
                            "selectors event loop (default)")
    serve.add_argument("--no-event-loop", dest="event_loop",
                       action="store_false",
                       help="with --listen, use the thread-per-"
                            "connection front end instead")
    serve.add_argument("--ticket-journal", metavar="FILE", default=None,
                       help="with --listen, persist resumption tickets "
                            "to an append-only journal (recovered on "
                            "restart)")
    serve.add_argument("--ticket-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="with --listen, resumption-ticket lifetime "
                            "(default 3600)")
    serve.add_argument("--telemetry", action="store_true",
                       help="with --listen, trace every session and "
                            "answer TELEMETRY_REQUEST scrapes with "
                            "buffered spans and events")
    serve.add_argument("--replicate", action="store_true",
                       help="with --listen, replicate ticket state: "
                            "answer REPL_* exchanges and push local "
                            "grants/revocations to peers")
    serve.add_argument("--peer", action="append", default=None,
                       metavar="HOST:PORT",
                       help="with --replicate, a peer backend to "
                            "anti-entropy with directly (repeat per "
                            "peer; omit when a gateway ferries)")
    serve.add_argument("--replication-interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="with --replicate, seconds between "
                            "anti-entropy rounds (default 0.5)")

    access = sub.add_parser(
        "access",
        help="secure-channel ops over a resumed WaveKey session",
    )
    access_sub = access.add_subparsers(dest="access_command", required=True)

    def add_access_args(p, with_target=False):
        p.add_argument("--connect", metavar="HOST:PORT", required=True,
                       help="networked WaveKey server (or gateway)")
        p.add_argument("--ticket-file", metavar="FILE", required=True,
                       help="resumption-ticket file")
        p.add_argument("--name", default="mobile",
                       help="client identity presented to the server")
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="dump the client metrics snapshot as JSON")
        p.add_argument("--trace-out", metavar="FILE", default=None,
                       help="export the client's span trace as JSONL "
                            "(stitchable with --stitch)")
        if with_target:
            p.add_argument("--target", default="door",
                           help="resource the op addresses")

    access_grant = access_sub.add_parser(
        "grant",
        help="run one establishment and save the resumption ticket",
    )
    add_access_args(access_grant)
    access_grant.add_argument("--seed", type=int, default=7)
    access_grant.add_argument("--dynamic", action="store_true")
    add_access_args(access_sub.add_parser(
        "query", help="ask what the ticket's key may access",
    ), with_target=True)
    add_access_args(access_sub.add_parser(
        "open", help="actuate the RFID-protected resource",
    ), with_target=True)
    add_access_args(access_sub.add_parser(
        "revoke", help="kill the ticket server-side",
    ))

    loadgen = sub.add_parser(
        "loadgen", help="drive a server with synthetic offered load"
    )
    add_service_args(loadgen)
    loadgen.add_argument("--sessions", type=int, default=16)
    loadgen.add_argument("--rate", type=float, default=0.0,
                         help="arrival rate in sessions/s (0 = burst)")
    loadgen.add_argument("--dynamic", action="store_true")
    loadgen.add_argument("--connect", metavar="HOST:PORT", default=None,
                         help="drive a networked server over TCP instead "
                              "of an in-process one")

    cluster = sub.add_parser(
        "cluster", help="run or inspect a sharded multi-backend fleet"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)
    cluster_serve = cluster_sub.add_parser(
        "serve", help="run the consistent-hash sharding gateway"
    )
    cluster_serve.add_argument(
        "--backend", action="append", required=True, metavar="HOST:PORT",
        help="backend server address (repeat for each backend)")
    cluster_serve.add_argument("--listen", metavar="HOST:PORT",
                               default="127.0.0.1:0",
                               help="gateway listen address "
                                    "(port 0 picks a free port)")
    cluster_serve.add_argument("--port-file", metavar="FILE", default=None,
                               help="write the bound HOST:PORT to FILE "
                                    "once listening")
    cluster_serve.add_argument("--sessions", type=int, default=0,
                               help="sessions to route before exiting "
                                    "(0 = run until interrupted)")
    cluster_serve.add_argument("--replicas", type=int, default=64,
                               help="virtual nodes per backend on the ring")
    cluster_serve.add_argument("--probe-interval", type=float, default=1.0,
                               help="seconds between backend health probes")
    cluster_serve.add_argument("--spill-inflight", type=int, default=8,
                               help="per-backend in-flight soft bound "
                                    "before spilling to the next candidate")
    cluster_serve.add_argument("--metrics-out", metavar="FILE", default=None,
                               help="dump the merged fleet snapshot as "
                                    "JSON on exit")
    cluster_serve.add_argument("--telemetry", action="store_true",
                               help="trace route/splice per session, scrape "
                                    "backend telemetry on the probe cadence, "
                                    "and answer TELEMETRY_REQUEST scrapes")
    cluster_serve.add_argument("--replication-interval", type=float,
                               default=None, metavar="SECONDS",
                               help="ferry ticket-replication entries "
                                    "between backends every SECONDS "
                                    "(off unless set; backends need "
                                    "--replicate)")
    cluster_metrics = cluster_sub.add_parser(
        "metrics",
        help="scrape a front end and render its metrics snapshot",
    )
    cluster_metrics.add_argument("target", metavar="HOST:PORT",
                                 help="gateway or backend to scrape")
    cluster_metrics.add_argument("--json", metavar="FILE", default=None,
                                 help="also dump the raw stats document "
                                      "as JSON")

    replica = sub.add_parser(
        "replica", help="inspect ticket-state replication"
    )
    replica_sub = replica.add_subparsers(dest="replica_command",
                                         required=True)
    replica_status = replica_sub.add_parser(
        "status",
        help="scrape a backend's (or gateway relay's) replication "
             "digest and entry count",
    )
    replica_status.add_argument("target", metavar="HOST:PORT",
                                help="replicating backend or gateway")
    replica_status.add_argument("--json", metavar="FILE", default=None,
                                help="also dump the raw status document "
                                     "as JSON")

    obs = sub.add_parser(
        "obs", help="inspect exported traces and metric snapshots"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_trace = obs_sub.add_parser(
        "trace", help="render a JSONL trace file as span trees"
    )
    obs_trace.add_argument("path", nargs="?", default=None,
                           help="trace file from --trace-out (optional "
                                "with --stitch)")
    obs_trace.add_argument("--session", default=None,
                           help="only render the trace containing this "
                                "session id")
    obs_trace.add_argument("--stitch", nargs="+", default=None,
                           metavar="HOST:PORT",
                           help="scrape these front ends' telemetry and "
                                "stitch their spans (plus any local trace "
                                "file) into cross-process trees")
    obs_trace.add_argument("--drain", action="store_true",
                           help="with --stitch, clear each scraped buffer "
                                "(spans are collected exactly once)")
    obs_metrics = obs_sub.add_parser(
        "metrics",
        help="render a metrics snapshot as Prometheus-style text",
    )
    obs_metrics.add_argument("path", help="snapshot file from --metrics-out")
    return parser


def _obs_session(args):
    """Tracer/profiler setup requested by --trace-out / --profile."""
    from repro.obs import Tracer

    tracer = Tracer() if (args.trace_out or args.profile) else None
    return tracer


def _finish_obs(args, tracer, metrics, profiler, out) -> None:
    if args.trace_out and tracer is not None:
        count = tracer.export_jsonl(args.trace_out)
        print(f"trace: {count} spans -> {args.trace_out}", file=out)
    if args.metrics_out and metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(metrics.snapshot(), fh, indent=2, default=str)
        print(f"metrics snapshot -> {args.metrics_out}", file=out)
    if args.profile and profiler is not None:
        print("per-layer profile:", file=out)
        for line in profiler.report_lines():
            print(f"  {line}", file=out)


def _write_port_file(path: str, bound: str) -> None:
    """Atomically publish the bound address: scripts polling the file
    must never observe a partial write, so the text lands in a temp
    file first and ``os.replace`` swaps it in whole."""
    temp_path = f"{path}.tmp.{os.getpid()}"
    with open(temp_path, "w", encoding="utf-8") as fh:
        fh.write(bound + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(temp_path, path)


def _parse_hostport(value: str):
    from repro.errors import ConfigurationError

    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise ConfigurationError(
            f"expected HOST:PORT, got {value!r}"
        )
    return host, int(port)


def _resolved_group(args):
    from repro.crypto.group import resolve_group

    return resolve_group(getattr(args, "group", "modp512"))


def _agreement_config(args, bundle) -> KeyAgreementConfig:
    """Agreement config for a served command, honouring ``--group``."""
    return KeyAgreementConfig(eta=bundle.eta, group=_resolved_group(args))


def _cmd_establish_net(args, out) -> int:
    from repro.net import NetClientConfig, WaveKeyNetClient
    from repro.obs import use_default_tracer
    from repro.obs.metrics import MetricsRegistry

    host, port = _parse_hostport(args.connect)
    metrics = MetricsRegistry()
    tracer = _obs_session(args)
    client = WaveKeyNetClient(
        host, port, NetClientConfig(group=_resolved_group(args)),
        metrics=metrics, tracer=tracer
    )
    with use_default_tracer(tracer):
        result = client.establish(args.seed, dynamic=args.dynamic)
    print(f"session {result.session_id}: {result.state} "
          f"(attempts {result.attempts}, connects {result.connects}, "
          f"{result.elapsed_s:.2f} s)", file=out)
    _finish_obs(args, tracer, metrics, None, out)
    if result.success:
        print(f"key ({len(result.key)} bits): "
              f"{result.key.to_bytes().hex()}", file=out)
        return 0
    print(f"FAILED: {result.failure_reason}", file=out)
    return 1


def _cmd_establish(args, out) -> int:
    from repro.obs import use_default_tracer
    from repro.obs.metrics import MetricsRegistry

    if args.connect:
        return _cmd_establish_net(args, out)
    bundle = load_default_bundle()
    metrics = MetricsRegistry()
    system = WaveKeySystem(
        bundle,
        geometry=ChannelGeometry(
            user_distance_m=args.distance, user_azimuth_deg=args.azimuth
        ),
        agreement_config=KeyAgreementConfig(
            key_length_bits=args.key_bits, eta=bundle.eta,
            group=_resolved_group(args),
        ),
    )
    system.pipeline.metrics = metrics
    tracer = _obs_session(args)
    profiler = (
        system.pipeline.enable_profiling(tracer=tracer)
        if args.profile else None
    )
    from repro.obs import NULL_TRACER

    root_tracer = tracer or NULL_TRACER
    with use_default_tracer(tracer):
        with root_tracer.span("establish", seed=args.seed):
            result = system.establish_key(
                rng=args.seed, dynamic=args.dynamic
            )
    print(f"seed mismatch: {100 * result.seed_mismatch_rate:.1f}% "
          f"(eta {100 * bundle.eta:.1f}%)", file=out)
    print(f"elapsed: {result.elapsed_s:.2f} s", file=out)
    _finish_obs(args, tracer, metrics, profiler, out)
    if result.success:
        print(f"key ({len(result.key)} bits): "
              f"{result.key.to_bytes().hex()}", file=out)
        return 0
    print(f"FAILED: {result.failure_reason}", file=out)
    return 1


def _cmd_inspect(out) -> int:
    bundle = load_default_bundle()
    pipeline = KeySeedPipeline(bundle)
    print("WaveKey pretrained bundle", file=out)
    print(f"  latent width l_f : {bundle.latent_width}", file=out)
    print(f"  bins N_b         : {bundle.n_bins}", file=out)
    print(f"  seed length l_s  : {pipeline.seed_length} bits", file=out)
    print(f"  ECC rate eta     : {bundle.eta:.4f}", file=out)
    guess = RandomGuessAttack(bundle.eta).analytic_success(
        pipeline.seed_length
    )
    print(f"  Eq. 4 guess prob : {guess:.3e}", file=out)
    return 0


def _cmd_attack(args, out) -> int:
    bundle = load_default_bundle()
    pipeline = KeySeedPipeline(bundle)
    if args.kind == "guess":
        rng = np.random.default_rng(args.seed)
        from repro.utils.bits import BitSequence

        victims = [
            BitSequence.random(pipeline.seed_length, rng)
            for _ in range(max(1, args.trials // 10))
        ]
        outcome = RandomGuessAttack(bundle.eta).run(
            victims, guesses_per_victim=10, rng=args.seed
        )
    elif args.kind == "mimic":
        attack = GestureMimicryAttack(
            pipeline=pipeline,
            eta=bundle.eta,
            device=default_mobile_devices()[3],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )
        outcome = attack.run(
            victims=default_volunteers()[:2],
            imitators=default_volunteers()[:3],
            gestures_per_victim=max(1, args.trials // 4),
            rng=args.seed,
        )
    else:
        attack = SignalSpoofingAttack(
            pipeline=pipeline,
            agreement_config=KeyAgreementConfig(
                key_length_bits=256, eta=bundle.eta
            ),
            device=default_mobile_devices()[3],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )
        outcome = attack.run(
            victim=default_volunteers()[0],
            attacker_style=default_volunteers()[1],
            n_instances=args.trials,
            rng=args.seed,
        )
    print(f"{outcome.attack}: {outcome.n_successes}/{outcome.n_trials} "
          f"succeeded ({100 * outcome.success_rate:.2f}%)", file=out)
    return 0 if outcome.n_successes == 0 else 2


def _service_config(args):
    from repro.service import ServiceConfig

    return ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        max_batch_size=args.batch_size,
        max_batch_wait_s=args.batch_wait_ms / 1000.0,
        max_attempts=args.max_attempts,
        session_deadline_s=args.session_deadline,
        ot_pool_depth=args.ot_pool_depth,
        ot_pool_refill_s=args.ot_pool_refill,
    )


def _print_service_header(config, bundle, out) -> None:
    print("WaveKey access-control server", file=out)
    print(f"  workers          : {config.workers}", file=out)
    print(f"  queue capacity   : {config.queue_capacity}", file=out)
    print(f"  batch policy     : <= {config.max_batch_size} windows or "
          f"{config.max_batch_wait_s * 1000:.1f} ms", file=out)
    print(f"  max attempts     : {config.max_attempts}", file=out)
    print(f"  session deadline : {config.session_deadline_s:.1f} s",
          file=out)
    pool = (f"depth {config.ot_pool_depth}"
            if config.ot_pool_depth > 0 else "disabled")
    print(f"  OT pool          : {pool}", file=out)
    print(f"  bundle eta       : {bundle.eta:.4f}", file=out)


def _print_service_metrics(server, out) -> None:
    snapshot = server.metrics.snapshot()
    print("counters:", file=out)
    for name in sorted(snapshot["counters"]):
        print(f"  {name:28s} {snapshot['counters'][name]}", file=out)
    interesting = ("service.encode_s", "service.agree_s", "service.total_s")
    for name in interesting:
        hist = snapshot["histograms"].get(name)
        if hist and hist["count"]:
            print(f"  {name:28s} mean {hist['mean'] * 1000:8.1f} ms  "
                  f"n={hist['count']}", file=out)


def _build_key_store(args, server, out):
    """Key store for serve --listen, honouring --ticket-journal/--ttl.

    Returns None when neither flag was given so the front end keeps
    its default in-memory store.
    """
    if not (args.ticket_journal or args.ticket_ttl):
        return None
    from repro.access import KeyStore, TicketJournal
    from repro.access.store import DEFAULT_TTL_S

    journal = (
        TicketJournal(args.ticket_journal)
        if args.ticket_journal else None
    )
    store = KeyStore(
        ttl_s=args.ticket_ttl or DEFAULT_TTL_S,
        journal=journal,
        metrics=server.metrics,
    )
    if journal is not None:
        recovered = store.recover()
        print(f"ticket journal {args.ticket_journal}: "
              f"{recovered} live ticket(s) recovered", file=out)
    return store


def _cmd_serve_net(args, config, bundle, out) -> int:
    import signal
    import time

    from repro.net import ThreadedWaveKeyTCPServer, WaveKeyTCPServer
    from repro.service import WaveKeyAccessServer

    # Graceful shutdown on SIGTERM too: CI smoke jobs run the server
    # as a background shell job, where SIGINT arrives ignored, and we
    # still want the metrics snapshot / journal flush on the way out.
    def _term_handler(signum, frame):
        raise KeyboardInterrupt

    previous_term = None
    try:
        previous_term = signal.signal(signal.SIGTERM, _term_handler)
    except ValueError:
        pass  # not the main thread; fall back to default delivery

    host, port = _parse_hostport(args.listen)
    front_end = (
        WaveKeyTCPServer
        if getattr(args, "event_loop", True)
        else ThreadedWaveKeyTCPServer
    )
    tracer = _obs_session(args)
    if getattr(args, "telemetry", False) and tracer is None:
        from repro.obs import Tracer

        tracer = Tracer()
    with WaveKeyAccessServer(
        bundle, config, agreement_config=_agreement_config(args, bundle),
        tracer=tracer,
    ) as server:
        profiler = (
            server.pipeline.enable_profiling(tracer=tracer)
            if args.profile else None
        )
        telemetry = None
        if getattr(args, "telemetry", False):
            from repro.obs import TelemetryBuffer

            telemetry = TelemetryBuffer(
                "backend", tracer=tracer, events=server.events
            )
        key_store = _build_key_store(args, server, out)
        replicator = None
        if getattr(args, "replicate", False):
            from repro.access import KeyStore
            from repro.replica import Replicator

            if key_store is None:
                # Replication needs the front end and the replicator
                # to share one store; materialise the default here.
                key_store = KeyStore(metrics=server.metrics)
            replicator = Replicator(
                key_store,
                peers=args.peer or (),
                anti_entropy_interval_s=args.replication_interval,
                tracer=tracer,
            )
        with front_end(
            server, host, port, key_store=key_store, telemetry=telemetry,
            replicator=replicator,
        ) as tcp:
            bound = f"{tcp.address[0]}:{tcp.address[1]}"
            if telemetry is not None:
                # The bound port is the service identity clients see.
                telemetry.service = f"backend:{tcp.address[1]}"
            if replicator is not None:
                print(f"replicating as {replicator.origin} "
                      f"({len(replicator.peers)} static peer(s))",
                      file=out, flush=True)
            print(f"listening on {bound}", file=out, flush=True)
            if args.port_file:
                _write_port_file(args.port_file, bound)
            try:
                while (
                    args.sessions <= 0
                    or tcp.sessions_served < args.sessions
                ):
                    time.sleep(0.05)
            except KeyboardInterrupt:
                pass
            served = tcp.sessions_served
        if key_store is not None:
            key_store.close()
        _print_service_metrics(server, out)
        _finish_obs(args, tracer, server.metrics, profiler, out)
    if previous_term is not None:
        signal.signal(signal.SIGTERM, previous_term)
    print(f"served {served} networked sessions", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    from repro.service import (
        AccessRequest, WaveKeyAccessServer,
    )
    from repro.utils.rng import derive_seed

    config = _service_config(args)
    bundle = load_default_bundle()
    if args.dry_run:
        _print_service_header(config, bundle, out)
        print("dry run: configuration OK, not serving", file=out)
        return 0
    _print_service_header(config, bundle, out)
    if args.listen:
        return _cmd_serve_net(args, config, bundle, out)
    tracer = _obs_session(args)
    with WaveKeyAccessServer(
        bundle, config, agreement_config=_agreement_config(args, bundle),
        tracer=tracer,
    ) as server:
        profiler = (
            server.pipeline.enable_profiling(tracer=tracer)
            if args.profile else None
        )
        tickets = [
            server.submit(
                AccessRequest(rng_seed=derive_seed(args.seed, "serve", i))
            )
            for i in range(args.sessions)
        ]
        established = 0
        for ticket in tickets:
            record = ticket.result()
            established += record.success
            status = record.state.value
            detail = "" if record.success else f"  ({record.failure_reason})"
            print(f"  {record.session_id}: {status}{detail}", file=out)
        _print_service_metrics(server, out)
        _finish_obs(args, tracer, server.metrics, profiler, out)
    print(f"established {established}/{args.sessions}", file=out)
    return 0 if established else 1


def _cmd_access(args, out) -> int:
    from repro.net import ClientTicket, NetClientConfig, WaveKeyNetClient
    from repro.obs.metrics import MetricsRegistry

    host, port = _parse_hostport(args.connect)
    metrics = MetricsRegistry()
    tracer = None
    if getattr(args, "trace_out", None):
        from repro.obs import Tracer

        tracer = Tracer()
    client = WaveKeyNetClient(
        host, port, NetClientConfig(name=args.name), metrics=metrics,
        tracer=tracer,
    )

    def finish(rc: int) -> int:
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(metrics.snapshot(), fh, indent=2, default=str)
            print(f"metrics snapshot -> {args.metrics_out}", file=out)
        if tracer is not None:
            count = tracer.export_jsonl(args.trace_out)
            print(f"trace: {count} spans -> {args.trace_out}", file=out)
        return rc

    if args.access_command == "grant":
        result = client.establish(args.seed, dynamic=args.dynamic)
        if not result.success:
            print(f"FAILED ({result.state}): {result.failure_reason}",
                  file=out)
            return finish(1)
        if result.ticket is None:
            print("established, but the server issued no resumption "
                  "ticket", file=out)
            return finish(1)
        with open(args.ticket_file, "w", encoding="utf-8") as fh:
            fh.write(result.ticket.to_json() + "\n")
        print(f"established in {result.elapsed_s:.2f} s; ticket "
              f"{result.ticket.ticket_id} "
              f"(lifetime {result.ticket.lifetime_s:.0f} s) "
              f"-> {args.ticket_file}", file=out)
        return finish(0)

    try:
        with open(args.ticket_file, "r", encoding="utf-8") as fh:
            ticket = ClientTicket.from_json(fh.read())
    except OSError as exc:
        raise AccessError(
            f"cannot read ticket file {args.ticket_file}: {exc.strerror}"
        ) from exc

    if args.access_command == "revoke":
        client.revoke(ticket)
        print(f"ticket {ticket.ticket_id} revoked", file=out)
        return finish(0)

    with client.open_channel(ticket) as channel:
        reply = channel.request(args.access_command, target=args.target)
    print(json.dumps(reply, indent=2, sort_keys=True), file=out)
    return finish(0 if reply.get("ok") else 1)


def _cmd_cluster_serve(args, out) -> int:
    import time

    from repro.cluster import REBALANCE_EVENT, WaveKeyGateway

    host, port = _parse_hostport(args.listen)
    tracer = telemetry = None
    if getattr(args, "telemetry", False):
        from repro.obs import TelemetryBuffer, Tracer

        tracer = Tracer()
        telemetry = TelemetryBuffer("gateway", tracer=tracer)
    gateway = WaveKeyGateway(
        args.backend,
        host,
        port,
        replicas=args.replicas,
        probe_interval_s=args.probe_interval,
        spill_inflight=args.spill_inflight,
        tracer=tracer,
        telemetry=telemetry,
        replication_interval_s=args.replication_interval,
    )
    if telemetry is not None:
        telemetry.events = gateway.events
    with gateway:
        bound = f"{gateway.address[0]}:{gateway.address[1]}"
        print(f"gateway on {bound} over {len(args.backend)} backend(s)",
              file=out, flush=True)
        if args.port_file:
            _write_port_file(args.port_file, bound)
        try:
            while (
                args.sessions <= 0
                or gateway.sessions_routed < args.sessions
            ):
                time.sleep(0.05)
        except KeyboardInterrupt:
            pass
        routed = gateway.sessions_routed
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(gateway.fleet_snapshot(), fh, indent=2,
                          default=str)
            print(f"fleet snapshot -> {args.metrics_out}", file=out)
        rebalances = gateway.events.query(kind=REBALANCE_EVENT)
        for event in rebalances:
            fields = event.fields
            print(f"  rebalance t={event.t_s:7.2f}s "
                  f"{fields.get('action'):5s} {fields.get('backend')} "
                  f"({fields.get('reason')}) ring={fields.get('ring_size')}",
                  file=out)
    print(f"routed {routed} sessions", file=out)
    return 0


def _cmd_cluster_metrics(args, out) -> int:
    from repro.cluster import fetch_stats
    from repro.obs import render_prometheus

    host, port = _parse_hostport(args.target)
    document = fetch_stats(host, port)
    role = document.get("role", "?")
    print(f"{role} {document.get('name', '?')} at {host}:{port}", file=out)
    if role == "gateway":
        print(f"ring size: {document.get('ring_size')}  "
              f"sessions routed: {document.get('sessions_served')}",
              file=out)
        for entry in document.get("backends", []):
            status = "in-ring" if entry.get("in_ring") else "EJECTED"
            print(f"  {entry.get('backend'):21s} {status:8s} "
                  f"share {entry.get('share', 0.0):6.3f}  "
                  f"in-flight {entry.get('in_flight', 0):3d}  "
                  f"routed {entry.get('sessions_routed', 0)}", file=out)
    else:
        print(f"sessions served: {document.get('sessions_served')}  "
              f"queue {document.get('queue_depth')}/"
              f"{document.get('queue_capacity')}", file=out)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, default=str)
        print(f"stats document -> {args.json}", file=out)
    snapshot = document.get("snapshot")
    if isinstance(snapshot, dict):
        print(render_prometheus(snapshot), file=out)
    return 0


def _cmd_replica_status(args, out) -> int:
    from repro.replica import fetch_replica_status

    host, port = _parse_hostport(args.target)
    document = fetch_replica_status(host, port)
    role = document.get("role", "backend")
    print(f"{role} {document.get('origin', '?')} at {host}:{port}",
          file=out)
    print(f"entries held: {document.get('entries', 0)}", file=out)
    digest = document.get("digest") or {}
    if digest:
        print("high-water digest:", file=out)
        for origin in sorted(digest):
            print(f"  {origin:40s} seq {digest[origin]}", file=out)
    else:
        print("high-water digest: (empty)", file=out)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, default=str)
        print(f"status document -> {args.json}", file=out)
    return 0


def _print_gateway_breakdown(host, port, out) -> None:
    """If the loadgen target is a gateway, append a per-shard report."""
    from repro.cluster import fetch_stats
    from repro.obs import snapshot_percentile

    try:
        document = fetch_stats(host, port, timeout_s=2.0)
    except WaveKeyError:
        return  # plain backend predating stats, or target gone
    if document.get("role") != "gateway":
        return
    histograms = (document.get("snapshot") or {}).get("histograms", {})
    print("per-backend breakdown (gateway fleet view):", file=out)
    for entry in document.get("backends", []):
        key = entry.get("backend", "?")
        series = f'cluster.session_s{{backend="{key}"}}'
        hist = histograms.get(series)
        if hist and hist.get("count"):
            p50 = snapshot_percentile(hist, 0.50)
            p99 = snapshot_percentile(hist, 0.99)
            latency = (f"p50 {1000 * p50:7.1f} ms  "
                       f"p99 {1000 * p99:7.1f} ms")
        else:
            latency = "no completed sessions"
        print(f"  {key:21s} routed {entry.get('sessions_routed', 0):4d}  "
              f"{latency}", file=out)


def _cmd_loadgen_net(args, out) -> int:
    import threading
    import time

    from repro.errors import TransportError
    from repro.net import NetClientConfig, WaveKeyNetClient
    from repro.obs.metrics import MetricsRegistry
    from repro.utils.rng import derive_seed

    host, port = _parse_hostport(args.connect)
    metrics = MetricsRegistry()
    client_config = NetClientConfig(group=_resolved_group(args))
    results = []
    lock = threading.Lock()

    def one(i: int) -> None:
        client = WaveKeyNetClient(
            host, port, client_config, metrics=metrics
        )
        try:
            result = client.establish(
                derive_seed(args.seed, "loadgen", i),
                dynamic=args.dynamic,
            )
            state, elapsed = result.state, result.elapsed_s
        except TransportError as exc:
            state, elapsed = f"transport_error ({exc})", 0.0
        with lock:
            results.append((state, elapsed))

    started = time.monotonic()
    threads = []
    for i in range(args.sessions):
        thread = threading.Thread(
            target=one, args=(i,), name=f"loadgen-{i}", daemon=True
        )
        thread.start()
        threads.append(thread)
        if args.rate > 0:
            time.sleep(1.0 / args.rate)
    for thread in threads:
        thread.join()
    wall_s = time.monotonic() - started

    by_state: dict = {}
    for state, _ in results:
        by_state[state] = by_state.get(state, 0) + 1
    established = by_state.get("established", 0)
    print(f"networked load: {args.sessions} sessions against "
          f"{host}:{port} in {wall_s:.2f} s", file=out)
    for state in sorted(by_state):
        print(f"  {state:16s} {by_state[state]}", file=out)
    done = [e for s, e in results if s == "established"]
    if done:
        print(f"  mean establish latency: "
              f"{1000 * sum(done) / len(done):.1f} ms", file=out)
    _print_gateway_breakdown(host, port, out)
    _finish_obs(args, None, metrics, None, out)
    return 0 if established else 1


def _cmd_loadgen(args, out) -> int:
    from repro.service import LoadProfile, WaveKeyAccessServer, run_load

    if args.connect:
        return _cmd_loadgen_net(args, out)
    config = _service_config(args)
    bundle = load_default_bundle()
    profile = LoadProfile(
        sessions=args.sessions,
        arrival_rate_hz=args.rate,
        rng_seed=args.seed,
        dynamic=args.dynamic,
    )
    _print_service_header(config, bundle, out)
    tracer = _obs_session(args)
    with WaveKeyAccessServer(
        bundle, config, agreement_config=_agreement_config(args, bundle),
        tracer=tracer,
    ) as server:
        profiler = (
            server.pipeline.enable_profiling(tracer=tracer)
            if args.profile else None
        )
        report = run_load(server, profile)
        for line in report.summary_lines():
            print(line, file=out)
        _print_service_metrics(server, out)
        _finish_obs(args, tracer, server.metrics, profiler, out)
    return 0 if report.established else 1


def _cmd_obs_trace(args, out) -> int:
    from repro.obs import format_trace_tree, load_trace_jsonl

    if args.stitch:
        return _cmd_obs_trace_stitch(args, out)
    if not args.path:
        print("error: a trace file or --stitch HOST:PORT is required",
              file=out)
        return 2
    spans = load_trace_jsonl(args.path)
    if args.session is not None:
        keep = {
            s.trace_id for s in spans
            if s.attributes.get("session_id") == args.session
        }
        spans = [s for s in spans if s.trace_id in keep]
        if not spans:
            print(f"no spans for session {args.session!r}", file=out)
            return 1
    print(format_trace_tree(spans), file=out)
    return 0


def _cmd_obs_trace_stitch(args, out) -> int:
    """Scrape telemetry from live front ends and render the stitched
    cross-process traces (``repro obs trace --stitch HOST:PORT ...``)."""
    from repro.cluster import fetch_telemetry
    from repro.obs import (
        format_stitched,
        load_trace_jsonl,
        stitch,
        trace_ids,
    )

    documents = []
    for endpoint in args.stitch:
        host, port = _parse_hostport(endpoint)
        try:
            document = fetch_telemetry(host, port, drain=args.drain)
        except WaveKeyError as exc:
            print(f"error: scrape {endpoint}: {exc}", file=out)
            return 3
        documents.append(document)
        print(f"scraped {endpoint}: {len(document.get('spans', []))} "
              f"span(s) from {document.get('service', '?')}", file=out)
    extra = load_trace_jsonl(args.path) if args.path else []
    stitched = stitch(documents, extra_spans=extra, extra_service="client")
    if args.session is not None:
        keep = {
            str(s.get("trace_id")) for s in stitched["spans"]
            if (s.get("attributes") or {}).get("session_id") == args.session
        }
        stitched["spans"] = [
            s for s in stitched["spans"]
            if str(s.get("trace_id")) in keep
        ]
        if not stitched["spans"]:
            print(f"no spans for session {args.session!r}", file=out)
            return 1
    count = len(stitched["spans"])
    traces = trace_ids(stitched["spans"])
    print(f"stitched {count} span(s) across {len(traces)} trace(s)",
          file=out)
    print(format_stitched(stitched), file=out)
    return 0


def _cmd_obs_metrics(args, out) -> int:
    from repro.obs import normalize_snapshot, render_prometheus

    with open(args.path, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    # JSON stringifies histogram bucket bounds; normalize_snapshot
    # restores floats so cumulative ``le`` buckets render in order.
    print(render_prometheus(normalize_snapshot(snapshot)), file=out)
    return 0


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "establish":
            return _cmd_establish(args, out)
        if args.command == "inspect":
            return _cmd_inspect(out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "access":
            return _cmd_access(args, out)
        if args.command == "loadgen":
            return _cmd_loadgen(args, out)
        if args.command == "cluster":
            if args.cluster_command == "serve":
                return _cmd_cluster_serve(args, out)
            return _cmd_cluster_metrics(args, out)
        if args.command == "replica":
            return _cmd_replica_status(args, out)
        if args.command == "obs":
            if args.obs_command == "trace":
                return _cmd_obs_trace(args, out)
            return _cmd_obs_metrics(args, out)
        return _cmd_attack(args, out)
    except WaveKeyError as exc:
        print(f"error: {exc}", file=out)
        return 3
    except BrokenPipeError:
        # Downstream `head`/pager closed the pipe mid-print: the unix
        # norm is a silent exit.  Point stdout at devnull so the
        # interpreter's shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
