"""Command-line interface.

Usage (after ``pip install -e .``)::

    repro establish [--seed N] [--dynamic] [--distance M]
    repro inspect
    repro attack {guess,mimic,spoof} [--trials N]
    repro serve [--dry-run] [--workers N] [--queue-capacity N] ...
    repro loadgen [--sessions N] [--rate HZ] [--seed N]

``establish`` runs one end-to-end key establishment against the
pretrained bundle and prints the outcome; ``inspect`` summarizes the
shipped bundle's operating point; ``attack`` runs a small campaign of
the chosen attack and reports its success rate; ``serve`` brings up the
concurrent access-control server (:mod:`repro.service`) and processes a
burst of synthetic sessions; ``loadgen`` drives a server with a
configurable offered load and prints the load report.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.attacks import (
    GestureMimicryAttack,
    RandomGuessAttack,
    SignalSpoofingAttack,
)
from repro.core import KeySeedPipeline, WaveKeySystem
from repro.core.pretrained import load_default_bundle
from repro.errors import WaveKeyError
from repro.gesture import default_volunteers
from repro.imu import default_mobile_devices
from repro.protocol import KeyAgreementConfig
from repro.rfid import ChannelGeometry, default_environments, default_tags
from repro.utils.rng import child_rng


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="WaveKey reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    establish = sub.add_parser(
        "establish", help="run one end-to-end key establishment"
    )
    establish.add_argument("--seed", type=int, default=7)
    establish.add_argument("--dynamic", action="store_true",
                           help="people walking around the reader")
    establish.add_argument("--distance", type=float, default=5.0,
                           help="user-to-antenna distance in metres")
    establish.add_argument("--azimuth", type=float, default=0.0,
                           help="user azimuth in degrees")
    establish.add_argument("--key-bits", type=int, default=256)

    sub.add_parser("inspect", help="summarize the pretrained bundle")

    attack = sub.add_parser("attack", help="run an attack campaign")
    attack.add_argument("kind", choices=("guess", "mimic", "spoof"))
    attack.add_argument("--trials", type=int, default=10)
    attack.add_argument("--seed", type=int, default=1)

    def add_service_args(p):
        p.add_argument("--workers", type=int, default=2)
        p.add_argument("--queue-capacity", type=int, default=32)
        p.add_argument("--batch-size", type=int, default=16,
                       help="micro-batcher max batch size")
        p.add_argument("--batch-wait-ms", type=float, default=2.0,
                       help="micro-batcher max wait before launching")
        p.add_argument("--max-attempts", type=int, default=3)
        p.add_argument("--session-deadline", type=float, default=30.0,
                       help="wall-clock budget per session in seconds")
        p.add_argument("--seed", type=int, default=7)

    serve = sub.add_parser(
        "serve", help="run the concurrent access-control server"
    )
    add_service_args(serve)
    serve.add_argument("--sessions", type=int, default=8,
                       help="synthetic sessions to serve before exiting")
    serve.add_argument("--dry-run", action="store_true",
                       help="validate config and print the operating "
                            "point without serving")

    loadgen = sub.add_parser(
        "loadgen", help="drive a server with synthetic offered load"
    )
    add_service_args(loadgen)
    loadgen.add_argument("--sessions", type=int, default=16)
    loadgen.add_argument("--rate", type=float, default=0.0,
                         help="arrival rate in sessions/s (0 = burst)")
    loadgen.add_argument("--dynamic", action="store_true")
    return parser


def _cmd_establish(args, out) -> int:
    bundle = load_default_bundle()
    system = WaveKeySystem(
        bundle,
        geometry=ChannelGeometry(
            user_distance_m=args.distance, user_azimuth_deg=args.azimuth
        ),
        agreement_config=KeyAgreementConfig(
            key_length_bits=args.key_bits, eta=bundle.eta
        ),
    )
    result = system.establish_key(rng=args.seed, dynamic=args.dynamic)
    print(f"seed mismatch: {100 * result.seed_mismatch_rate:.1f}% "
          f"(eta {100 * bundle.eta:.1f}%)", file=out)
    print(f"elapsed: {result.elapsed_s:.2f} s", file=out)
    if result.success:
        print(f"key ({len(result.key)} bits): "
              f"{result.key.to_bytes().hex()}", file=out)
        return 0
    print(f"FAILED: {result.failure_reason}", file=out)
    return 1


def _cmd_inspect(out) -> int:
    bundle = load_default_bundle()
    pipeline = KeySeedPipeline(bundle)
    print("WaveKey pretrained bundle", file=out)
    print(f"  latent width l_f : {bundle.latent_width}", file=out)
    print(f"  bins N_b         : {bundle.n_bins}", file=out)
    print(f"  seed length l_s  : {pipeline.seed_length} bits", file=out)
    print(f"  ECC rate eta     : {bundle.eta:.4f}", file=out)
    guess = RandomGuessAttack(bundle.eta).analytic_success(
        pipeline.seed_length
    )
    print(f"  Eq. 4 guess prob : {guess:.3e}", file=out)
    return 0


def _cmd_attack(args, out) -> int:
    bundle = load_default_bundle()
    pipeline = KeySeedPipeline(bundle)
    if args.kind == "guess":
        rng = np.random.default_rng(args.seed)
        from repro.utils.bits import BitSequence

        victims = [
            BitSequence.random(pipeline.seed_length, rng)
            for _ in range(max(1, args.trials // 10))
        ]
        outcome = RandomGuessAttack(bundle.eta).run(
            victims, guesses_per_victim=10, rng=args.seed
        )
    elif args.kind == "mimic":
        attack = GestureMimicryAttack(
            pipeline=pipeline,
            eta=bundle.eta,
            device=default_mobile_devices()[3],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )
        outcome = attack.run(
            victims=default_volunteers()[:2],
            imitators=default_volunteers()[:3],
            gestures_per_victim=max(1, args.trials // 4),
            rng=args.seed,
        )
    else:
        attack = SignalSpoofingAttack(
            pipeline=pipeline,
            agreement_config=KeyAgreementConfig(
                key_length_bits=256, eta=bundle.eta
            ),
            device=default_mobile_devices()[3],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )
        outcome = attack.run(
            victim=default_volunteers()[0],
            attacker_style=default_volunteers()[1],
            n_instances=args.trials,
            rng=args.seed,
        )
    print(f"{outcome.attack}: {outcome.n_successes}/{outcome.n_trials} "
          f"succeeded ({100 * outcome.success_rate:.2f}%)", file=out)
    return 0 if outcome.n_successes == 0 else 2


def _service_config(args):
    from repro.service import ServiceConfig

    return ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        max_batch_size=args.batch_size,
        max_batch_wait_s=args.batch_wait_ms / 1000.0,
        max_attempts=args.max_attempts,
        session_deadline_s=args.session_deadline,
    )


def _print_service_header(config, bundle, out) -> None:
    print("WaveKey access-control server", file=out)
    print(f"  workers          : {config.workers}", file=out)
    print(f"  queue capacity   : {config.queue_capacity}", file=out)
    print(f"  batch policy     : <= {config.max_batch_size} windows or "
          f"{config.max_batch_wait_s * 1000:.1f} ms", file=out)
    print(f"  max attempts     : {config.max_attempts}", file=out)
    print(f"  session deadline : {config.session_deadline_s:.1f} s",
          file=out)
    print(f"  bundle eta       : {bundle.eta:.4f}", file=out)


def _print_service_metrics(server, out) -> None:
    snapshot = server.metrics.snapshot()
    print("counters:", file=out)
    for name in sorted(snapshot["counters"]):
        print(f"  {name:28s} {snapshot['counters'][name]}", file=out)
    interesting = ("service.encode_s", "service.agree_s", "service.total_s")
    for name in interesting:
        hist = snapshot["histograms"].get(name)
        if hist and hist["count"]:
            print(f"  {name:28s} mean {hist['mean'] * 1000:8.1f} ms  "
                  f"n={hist['count']}", file=out)


def _cmd_serve(args, out) -> int:
    from repro.service import (
        AccessRequest, WaveKeyAccessServer,
    )
    from repro.utils.rng import derive_seed

    config = _service_config(args)
    bundle = load_default_bundle()
    if args.dry_run:
        _print_service_header(config, bundle, out)
        print("dry run: configuration OK, not serving", file=out)
        return 0
    _print_service_header(config, bundle, out)
    with WaveKeyAccessServer(bundle, config) as server:
        tickets = [
            server.submit(
                AccessRequest(rng_seed=derive_seed(args.seed, "serve", i))
            )
            for i in range(args.sessions)
        ]
        established = 0
        for ticket in tickets:
            record = ticket.result()
            established += record.success
            status = record.state.value
            detail = "" if record.success else f"  ({record.failure_reason})"
            print(f"  {record.session_id}: {status}{detail}", file=out)
        _print_service_metrics(server, out)
    print(f"established {established}/{args.sessions}", file=out)
    return 0 if established else 1


def _cmd_loadgen(args, out) -> int:
    from repro.service import LoadProfile, WaveKeyAccessServer, run_load

    config = _service_config(args)
    bundle = load_default_bundle()
    profile = LoadProfile(
        sessions=args.sessions,
        arrival_rate_hz=args.rate,
        rng_seed=args.seed,
        dynamic=args.dynamic,
    )
    _print_service_header(config, bundle, out)
    with WaveKeyAccessServer(bundle, config) as server:
        report = run_load(server, profile)
        for line in report.summary_lines():
            print(line, file=out)
        _print_service_metrics(server, out)
    return 0 if report.established else 1


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "establish":
            return _cmd_establish(args, out)
        if args.command == "inspect":
            return _cmd_inspect(out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "loadgen":
            return _cmd_loadgen(args, out)
        return _cmd_attack(args, out)
    except WaveKeyError as exc:
        print(f"error: {exc}", file=out)
        return 3


if __name__ == "__main__":
    sys.exit(main())
