"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro establish [--seed N] [--dynamic] [--distance M]
    python -m repro inspect
    python -m repro attack {guess,mimic,spoof} [--trials N]

``establish`` runs one end-to-end key establishment against the
pretrained bundle and prints the outcome; ``inspect`` summarizes the
shipped bundle's operating point; ``attack`` runs a small campaign of
the chosen attack and reports its success rate.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.attacks import (
    GestureMimicryAttack,
    RandomGuessAttack,
    SignalSpoofingAttack,
)
from repro.core import KeySeedPipeline, WaveKeySystem
from repro.core.pretrained import load_default_bundle
from repro.errors import WaveKeyError
from repro.gesture import default_volunteers
from repro.imu import default_mobile_devices
from repro.protocol import KeyAgreementConfig
from repro.rfid import ChannelGeometry, default_environments, default_tags
from repro.utils.rng import child_rng


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="WaveKey reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    establish = sub.add_parser(
        "establish", help="run one end-to-end key establishment"
    )
    establish.add_argument("--seed", type=int, default=7)
    establish.add_argument("--dynamic", action="store_true",
                           help="people walking around the reader")
    establish.add_argument("--distance", type=float, default=5.0,
                           help="user-to-antenna distance in metres")
    establish.add_argument("--azimuth", type=float, default=0.0,
                           help="user azimuth in degrees")
    establish.add_argument("--key-bits", type=int, default=256)

    sub.add_parser("inspect", help="summarize the pretrained bundle")

    attack = sub.add_parser("attack", help="run an attack campaign")
    attack.add_argument("kind", choices=("guess", "mimic", "spoof"))
    attack.add_argument("--trials", type=int, default=10)
    attack.add_argument("--seed", type=int, default=1)
    return parser


def _cmd_establish(args, out) -> int:
    bundle = load_default_bundle()
    system = WaveKeySystem(
        bundle,
        geometry=ChannelGeometry(
            user_distance_m=args.distance, user_azimuth_deg=args.azimuth
        ),
        agreement_config=KeyAgreementConfig(
            key_length_bits=args.key_bits, eta=bundle.eta
        ),
    )
    result = system.establish_key(rng=args.seed, dynamic=args.dynamic)
    print(f"seed mismatch: {100 * result.seed_mismatch_rate:.1f}% "
          f"(eta {100 * bundle.eta:.1f}%)", file=out)
    print(f"elapsed: {result.elapsed_s:.2f} s", file=out)
    if result.success:
        print(f"key ({len(result.key)} bits): "
              f"{result.key.to_bytes().hex()}", file=out)
        return 0
    print(f"FAILED: {result.failure_reason}", file=out)
    return 1


def _cmd_inspect(out) -> int:
    bundle = load_default_bundle()
    pipeline = KeySeedPipeline(bundle)
    print("WaveKey pretrained bundle", file=out)
    print(f"  latent width l_f : {bundle.latent_width}", file=out)
    print(f"  bins N_b         : {bundle.n_bins}", file=out)
    print(f"  seed length l_s  : {pipeline.seed_length} bits", file=out)
    print(f"  ECC rate eta     : {bundle.eta:.4f}", file=out)
    guess = RandomGuessAttack(bundle.eta).analytic_success(
        pipeline.seed_length
    )
    print(f"  Eq. 4 guess prob : {guess:.3e}", file=out)
    return 0


def _cmd_attack(args, out) -> int:
    bundle = load_default_bundle()
    pipeline = KeySeedPipeline(bundle)
    if args.kind == "guess":
        rng = np.random.default_rng(args.seed)
        from repro.utils.bits import BitSequence

        victims = [
            BitSequence.random(pipeline.seed_length, rng)
            for _ in range(max(1, args.trials // 10))
        ]
        outcome = RandomGuessAttack(bundle.eta).run(
            victims, guesses_per_victim=10, rng=args.seed
        )
    elif args.kind == "mimic":
        attack = GestureMimicryAttack(
            pipeline=pipeline,
            eta=bundle.eta,
            device=default_mobile_devices()[3],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )
        outcome = attack.run(
            victims=default_volunteers()[:2],
            imitators=default_volunteers()[:3],
            gestures_per_victim=max(1, args.trials // 4),
            rng=args.seed,
        )
    else:
        attack = SignalSpoofingAttack(
            pipeline=pipeline,
            agreement_config=KeyAgreementConfig(
                key_length_bits=256, eta=bundle.eta
            ),
            device=default_mobile_devices()[3],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )
        outcome = attack.run(
            victim=default_volunteers()[0],
            attacker_style=default_volunteers()[1],
            n_instances=args.trials,
            rng=args.seed,
        )
    print(f"{outcome.attack}: {outcome.n_successes}/{outcome.n_trials} "
          f"succeeded ({100 * outcome.success_rate:.2f}%)", file=out)
    return 0 if outcome.n_successes == 0 else 2


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "establish":
            return _cmd_establish(args, out)
        if args.command == "inspect":
            return _cmd_inspect(out)
        return _cmd_attack(args, out)
    except WaveKeyError as exc:
        print(f"error: {exc}", file=out)
        return 3


if __name__ == "__main__":
    sys.exit(main())
