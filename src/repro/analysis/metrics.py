"""Evaluation metrics shared by the benchmark harnesses."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bits import BitSequence, BitsLike


def success_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of successful trials."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ConfigurationError("success_rate over zero trials")
    return float(np.mean([bool(o) for o in outcomes]))


def mismatch_statistics(rates: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of a set of bit-mismatch rates."""
    arr = np.asarray(list(rates), dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("mismatch_statistics over zero samples")
    return {
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def shannon_entropy_bits(bits: BitsLike, block: int = 1) -> float:
    """Empirical Shannon entropy per bit over ``block``-bit symbols.

    1.0 means the sequence looks uniform at that block size; the key
    randomness benchmark reports this alongside the NIST tests.
    """
    seq = BitSequence(bits)
    if block < 1:
        raise ConfigurationError("block must be >= 1")
    n_blocks = len(seq) // block
    if n_blocks < 2:
        raise ConfigurationError("sequence too short for this block size")
    arr = seq.array[: n_blocks * block].reshape(n_blocks, block)
    weights = 1 << np.arange(block - 1, -1, -1)
    symbols = arr @ weights
    counts = np.bincount(symbols, minlength=1 << block)
    probs = counts[counts > 0] / n_blocks
    entropy = float(-(probs * np.log2(probs)).sum())
    return entropy / block
