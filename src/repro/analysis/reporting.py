"""Plain-text table rendering for benchmark output.

The benchmark harnesses print their results in the same row/column
layout as the paper's tables so paper-vs-measured comparison (recorded
in EXPERIMENTS.md) is a visual diff.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = None,
) -> str:
    """Render an aligned ASCII table."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([_render(value) for value in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for i, row_cells in enumerate(cells):
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row_cells, widths))
        )
        if i == 0:
            lines.append(separator)
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)
