"""NIST SP 800-22 randomness tests.

The paper (SVI-D) evaluates key and key-seed randomness with the *runs
test* from the NIST statistical test suite, on 51,200-bit key-chains and
7,600-bit key-seed-chains.  We implement the runs test exactly per
SP 800-22 section 2.3 (including its frequency-test precondition) plus
the monobit frequency test it depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from repro.errors import ConfigurationError
from repro.utils.bits import BitSequence, BitsLike


@dataclass(frozen=True)
class NISTTestResult:
    """Outcome of one statistical test."""

    name: str
    p_value: float
    passed: bool
    statistic: float

    def __repr__(self) -> str:
        verdict = "pass" if self.passed else "FAIL"
        return (
            f"NISTTestResult({self.name}: p={self.p_value:.4f} "
            f"[{verdict}])"
        )


def monobit_test(bits: BitsLike, alpha: float = 0.01) -> NISTTestResult:
    """SP 800-22 2.1: frequency (monobit) test."""
    seq = BitSequence(bits)
    n = len(seq)
    if n < 100:
        raise ConfigurationError(
            f"monobit test needs >= 100 bits, got {n}"
        )
    s = float(np.sum(2.0 * seq.array.astype(np.float64) - 1.0))
    statistic = abs(s) / np.sqrt(n)
    p_value = float(erfc(statistic / np.sqrt(2.0)))
    return NISTTestResult(
        name="monobit",
        p_value=p_value,
        passed=p_value >= alpha,
        statistic=statistic,
    )


def block_frequency_test(
    bits: BitsLike, block_size: int = 128, alpha: float = 0.01
) -> NISTTestResult:
    """SP 800-22 2.2: frequency test within a block.

    Detects locally biased stretches a global monobit test would miss —
    relevant for key-chains assembled from many short per-gesture keys.
    """
    from scipy.special import gammaincc

    seq = BitSequence(bits)
    n = len(seq)
    if block_size < 8:
        raise ConfigurationError("block_size must be >= 8")
    n_blocks = n // block_size
    if n_blocks < 4:
        raise ConfigurationError(
            f"need >= 4 blocks of {block_size} bits, got {n_blocks}"
        )
    blocks = seq.array[: n_blocks * block_size].reshape(
        n_blocks, block_size
    )
    proportions = blocks.mean(axis=1)
    chi_squared = 4.0 * block_size * float(
        np.sum((proportions - 0.5) ** 2)
    )
    p_value = float(gammaincc(n_blocks / 2.0, chi_squared / 2.0))
    return NISTTestResult(
        name="block-frequency",
        p_value=p_value,
        passed=p_value >= alpha,
        statistic=chi_squared,
    )


def runs_test(bits: BitsLike, alpha: float = 0.01) -> NISTTestResult:
    """SP 800-22 2.3: runs test.

    Counts maximal runs of identical bits and compares against the
    expectation for an i.i.d. fair sequence.  Per the specification, the
    test is only applicable when the one-proportion ``pi`` is within
    ``2/sqrt(n)`` of 1/2; outside that band the result is a failure with
    p = 0 (the frequency precondition already rejects the sequence).
    """
    seq = BitSequence(bits)
    n = len(seq)
    if n < 100:
        raise ConfigurationError(f"runs test needs >= 100 bits, got {n}")
    arr = seq.array.astype(np.float64)
    pi = float(arr.mean())
    tau = 2.0 / np.sqrt(n)
    if abs(pi - 0.5) >= tau:
        return NISTTestResult(
            name="runs", p_value=0.0, passed=False, statistic=np.inf
        )
    v_obs = 1 + int(np.count_nonzero(np.diff(seq.array)))
    expected = 2.0 * n * pi * (1.0 - pi)
    statistic = abs(v_obs - expected) / (
        2.0 * np.sqrt(2.0 * n) * pi * (1.0 - pi)
    )
    p_value = float(erfc(statistic))
    return NISTTestResult(
        name="runs",
        p_value=p_value,
        passed=p_value >= alpha,
        statistic=statistic,
    )
