"""Evaluation analytics: NIST randomness tests, metrics, table rendering."""

from repro.analysis.nist import (
    NISTTestResult,
    block_frequency_test,
    monobit_test,
    runs_test,
)
from repro.analysis.metrics import (
    mismatch_statistics,
    shannon_entropy_bits,
    success_rate,
)
from repro.analysis.reporting import format_table

__all__ = [
    "NISTTestResult",
    "monobit_test",
    "runs_test",
    "mismatch_statistics",
    "shannon_entropy_bits",
    "success_rate",
    "format_table",
]
