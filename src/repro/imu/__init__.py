"""IMU substrate: sensor models, mobile-device profiles, calibration.

The mobile-device half of WaveKey's data acquisition (paper SIV-B).  The
simulator half (:mod:`repro.imu.sensors`, :mod:`repro.imu.device`)
replaces physical hardware; the calibration half
(:mod:`repro.imu.calibration`) is the paper's real pipeline — motion-onset
detection, 100 Hz interpolation, TRIAD initial pose, gyroscope
integration, world-frame linear-acceleration extraction — and would run
unchanged against real sensor logs.
"""

from repro.imu.sensors import (
    AccelerometerModel,
    GyroscopeModel,
    MagnetometerModel,
    GRAVITY_WORLD,
    MAGNETIC_FIELD_WORLD,
)
from repro.imu.device import (
    IMURecord,
    MobileDeviceProfile,
    MobileIMU,
    default_mobile_devices,
)
from repro.imu.calibration import (
    CalibrationConfig,
    calibrate_imu_record,
    detect_motion_onset,
)

__all__ = [
    "AccelerometerModel",
    "GyroscopeModel",
    "MagnetometerModel",
    "GRAVITY_WORLD",
    "MAGNETIC_FIELD_WORLD",
    "IMURecord",
    "MobileDeviceProfile",
    "MobileIMU",
    "default_mobile_devices",
    "CalibrationConfig",
    "calibrate_imu_record",
    "detect_motion_onset",
]
