"""Mobile-device IMU suites.

Bundles the three sensor models with per-device imperfection profiles
mirroring the paper's hardware (a Google Pixel 8, two Samsung Galaxy S5
phones, and a Samsung Galaxy Watch — SVI-A) and samples a complete IMU
record from a gesture trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gesture.trajectory import GestureTrajectory
from repro.imu.sensors import (
    AccelerometerModel,
    GyroscopeModel,
    MagnetometerModel,
)
from repro.utils.rng import child_rng, ensure_rng


@dataclass(frozen=True)
class MobileDeviceProfile:
    """Hardware profile of one mobile device's IMU suite."""

    name: str
    sample_rate_hz: float = 100.0
    accelerometer: AccelerometerModel = AccelerometerModel()
    gyroscope: GyroscopeModel = GyroscopeModel()
    magnetometer: MagnetometerModel = MagnetometerModel()
    clock_skew_ppm: float = 20.0  # crystal-oscillator skew
    timestamp_jitter_s: float = 5e-5


def default_mobile_devices():
    """The paper's four evaluation devices (SVI-A)."""
    return [
        MobileDeviceProfile(
            "pixel-8",
            sample_rate_hz=104.0,
            accelerometer=AccelerometerModel(noise_std=0.02, bias_std=0.015),
            gyroscope=GyroscopeModel(noise_std=0.0015, bias_std=0.004),
            magnetometer=MagnetometerModel(noise_std=0.6),
        ),
        MobileDeviceProfile(
            "galaxy-s5-a",
            sample_rate_hz=100.0,
            accelerometer=AccelerometerModel(noise_std=0.035, bias_std=0.025),
            gyroscope=GyroscopeModel(noise_std=0.0025, bias_std=0.006),
            magnetometer=MagnetometerModel(noise_std=0.9),
        ),
        MobileDeviceProfile(
            "galaxy-s5-b",
            sample_rate_hz=99.0,
            accelerometer=AccelerometerModel(noise_std=0.04, bias_std=0.03),
            gyroscope=GyroscopeModel(noise_std=0.003, bias_std=0.007),
            magnetometer=MagnetometerModel(noise_std=1.0),
        ),
        MobileDeviceProfile(
            "galaxy-watch",
            sample_rate_hz=100.0,
            accelerometer=AccelerometerModel(noise_std=0.03, bias_std=0.02),
            gyroscope=GyroscopeModel(noise_std=0.002, bias_std=0.005),
            magnetometer=MagnetometerModel(noise_std=0.8),
        ),
    ]


@dataclass
class IMURecord:
    """Raw sensor log of one gesture as captured by a mobile device.

    All arrays share the device-local timestamp vector ``timestamps_s``
    (which includes clock skew and jitter, exactly the imperfection the
    pause-based synchronization in the paper works around).
    """

    device: str
    timestamps_s: np.ndarray  # (N,)
    accelerometer: np.ndarray  # (N, 3) specific force, body frame
    gyroscope: np.ndarray  # (N, 3) angular rate, body frame
    magnetometer: np.ndarray  # (N, 3) field, body frame

    def __post_init__(self):
        n = self.timestamps_s.shape[0]
        for name in ("accelerometer", "gyroscope", "magnetometer"):
            arr = getattr(self, name)
            if arr.shape != (n, 3):
                raise SimulationError(
                    f"IMURecord.{name} shape {arr.shape} != ({n}, 3)"
                )

    @property
    def duration_s(self) -> float:
        return float(self.timestamps_s[-1] - self.timestamps_s[0])

    @property
    def nominal_rate_hz(self) -> float:
        if len(self.timestamps_s) < 2:
            raise SimulationError("record too short to estimate rate")
        return 1.0 / float(np.median(np.diff(self.timestamps_s)))


class MobileIMU:
    """A mobile device's IMU suite bound to a hardware profile."""

    def __init__(self, profile: MobileDeviceProfile):
        self.profile = profile

    def record_gesture(
        self, trajectory: GestureTrajectory, rng=None
    ) -> IMURecord:
        """Sample the full gesture timeline (pause + active wave).

        The record covers the whole timeline so the calibration pipeline
        can perform the paper's variance-based motion-onset detection.
        """
        rng = ensure_rng(rng)
        p = self.profile
        rate = p.sample_rate_hz * (1.0 + p.clock_skew_ppm * 1e-6)
        dt = 1.0 / rate
        n = int(np.floor(trajectory.total_s * rate))
        if n < 8:
            raise SimulationError(
                "gesture too short for this sample rate: "
                f"{trajectory.total_s}s at {rate}Hz"
            )
        t = np.arange(n) * dt
        t_jittered = t + rng.normal(0.0, p.timestamp_jitter_s, size=n)
        t_jittered[0] = max(t_jittered[0], 0.0)
        t_jittered = np.maximum.accumulate(t_jittered)

        accel_world = trajectory.acceleration(t_jittered)
        rotations = trajectory.orientations(t_jittered)
        omega_body = trajectory.angular_velocity_body(t_jittered)

        acc = p.accelerometer.measure(
            accel_world, rotations, rng=child_rng(rng, "acc")
        )
        gyro = p.gyroscope.measure(
            omega_body, dt, rng=child_rng(rng, "gyro")
        )
        mag = p.magnetometer.measure(
            rotations, rng=child_rng(rng, "mag")
        )
        return IMURecord(
            device=p.name,
            timestamps_s=t_jittered,
            accelerometer=acc,
            gyroscope=gyro,
            magnetometer=mag,
        )
