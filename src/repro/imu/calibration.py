"""IMU calibration pipeline (paper SIV-B.2).

Turns a raw :class:`repro.imu.device.IMURecord` into the 200x3 linear
acceleration matrix ``A`` the paper feeds to IMU-En:

1. align the three sensors on a uniform 100 Hz grid by interpolation;
2. detect the motion onset from the variance jump that follows the
   mandated pre-gesture pause (this is the paper's clock-synchronization
   trick — both the mobile device and the RFID server key off the same
   physical event);
3. estimate the initial pose with TRIAD from the pause-window
   accelerometer (gravity) and magnetometer (north) means;
4. propagate the pose through the gesture by integrating the gyroscope
   (whose bias is estimated from the pause window, where the device is
   known to be still);
5. rotate each specific-force sample to the world frame and remove
   gravity, yielding world-frame linear accelerations.

The pipeline is pure signal processing — it would run unchanged on real
phone logs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gesture.kinematics import integrate_angular_velocity, triad
from repro.imu.device import IMURecord
from repro.imu.sensors import GRAVITY_WORLD, MAGNETIC_FIELD_WORLD
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CalibrationConfig:
    """Tunables of the calibration pipeline.

    The defaults implement the paper's choices: 100 Hz interpolation,
    a 2 s gesture window (hence 200 output samples).
    """

    target_rate_hz: float = 100.0
    window_s: float = 2.0
    onset_window_s: float = 0.12
    onset_threshold: float = 5.0
    baseline_s: float = 0.45
    min_onset_std: float = 0.02  # accel floor (m/s^2) against dead-still data

    def __post_init__(self):
        check_positive("target_rate_hz", self.target_rate_hz)
        check_positive("window_s", self.window_s)
        check_positive("onset_window_s", self.onset_window_s)
        check_positive("onset_threshold", self.onset_threshold)
        check_positive("baseline_s", self.baseline_s)

    @property
    def n_samples(self) -> int:
        """Number of output samples (200 for the paper's defaults)."""
        return int(round(self.target_rate_hz * self.window_s))


def _interpolate_columns(
    t_out: np.ndarray, t_in: np.ndarray, values: np.ndarray
) -> np.ndarray:
    out = np.empty((t_out.size, values.shape[1]))
    for col in range(values.shape[1]):
        out[:, col] = np.interp(t_out, t_in, values[:, col])
    return out


def detect_motion_onset(
    signal: np.ndarray,
    rate_hz: float,
    window_s: float = 0.12,
    baseline_s: float = 0.45,
    threshold: float = 5.0,
    min_std: float = 0.0,
) -> int:
    """Index of the first sample where motion energy exceeds the baseline.

    ``signal`` is a 1-D activity series (we use the norm of the
    mean-removed accelerometer).  A rolling standard deviation is compared
    against the pause-window baseline; the onset is the first window
    whose deviation exceeds ``threshold`` times the baseline (with an
    absolute floor ``min_std`` so a perfectly quiet simulated pause does
    not trigger on numerical dust).
    """
    signal = np.asarray(signal, dtype=np.float64).ravel()
    win = max(2, int(round(window_s * rate_hz)))
    base = max(win, int(round(baseline_s * rate_hz)))
    if signal.size < base + win:
        raise SimulationError(
            f"signal too short for onset detection: {signal.size} samples"
        )
    baseline_std = max(float(np.std(signal[:base])), min_std)
    # Rolling std via cumulative sums (O(n)).
    c1 = np.cumsum(np.insert(signal, 0, 0.0))
    c2 = np.cumsum(np.insert(signal * signal, 0, 0.0))
    means = (c1[win:] - c1[:-win]) / win
    sq = (c2[win:] - c2[:-win]) / win
    stds = np.sqrt(np.maximum(sq - means * means, 0.0))
    above = np.nonzero(stds > threshold * baseline_std)[0]
    # Don't allow onsets inside the baseline region itself.
    above = above[above + win - 1 >= base]
    if above.size == 0:
        raise SimulationError(
            "no motion onset detected (did the user actually wave?)"
        )
    # stds[i] covers samples [i, i+win); motion starts near the window end.
    return int(above[0] + win - 1)


def calibrate_imu_record(
    record: IMURecord,
    config: CalibrationConfig = CalibrationConfig(),
    offset_s: float = 0.0,
) -> np.ndarray:
    """Run the full SIV-B.2 pipeline; returns ``A`` with shape (200, 3).

    ``offset_s`` shifts the analysis window to start that many seconds
    after the detected motion onset — the mechanism behind the paper's
    dataset procedure of cutting 20 (possibly overlapping) 2 s windows
    out of each long gesture (SIV-E.1).
    """
    if offset_s < 0:
        raise SimulationError("offset_s must be non-negative")
    t_raw = record.timestamps_s
    rate = config.target_rate_hz
    n_grid = int(np.floor((t_raw[-1] - t_raw[0]) * rate))
    if n_grid < config.n_samples:
        raise SimulationError(
            f"record spans only {t_raw[-1] - t_raw[0]:.2f}s; need more than "
            f"{config.window_s}s"
        )
    t = t_raw[0] + np.arange(n_grid) / rate

    acc = _interpolate_columns(t, t_raw, record.accelerometer)
    gyro = _interpolate_columns(t, t_raw, record.gyroscope)
    mag = _interpolate_columns(t, t_raw, record.magnetometer)

    activity = np.linalg.norm(acc - acc.mean(axis=0), axis=1)
    onset = detect_motion_onset(
        activity,
        rate,
        window_s=config.onset_window_s,
        baseline_s=config.baseline_s,
        threshold=config.onset_threshold,
        min_std=config.min_onset_std,
    )
    pause_end = onset
    onset = onset + int(round(offset_s * rate))
    if onset + config.n_samples > n_grid:
        raise SimulationError(
            "gesture after onset is shorter than the 2 s analysis window"
        )

    # Pause-window statistics: gravity direction, magnetic direction, and
    # gyroscope bias (the device is known to be still before the onset).
    pause = slice(0, max(2, pause_end))
    acc_ref = acc[pause].mean(axis=0)
    mag_ref = mag[pause].mean(axis=0)
    gyro_bias = gyro[pause].mean(axis=0)

    rotation = triad(
        acc_ref, mag_ref, -GRAVITY_WORLD, MAGNETIC_FIELD_WORLD
    )

    dt = 1.0 / rate
    # The TRIAD pose is valid at the end of the pause; propagate it
    # through any window offset before recording accelerations.
    for i in range(pause_end, onset):
        rotation = integrate_angular_velocity(
            rotation, gyro[i] - gyro_bias, dt
        )

    window = slice(onset, onset + config.n_samples)
    acc_win = acc[window]
    gyro_win = gyro[window] - gyro_bias

    linear = np.empty((config.n_samples, 3))
    for i in range(config.n_samples):
        # a_world = R @ f_body + g_world  (f is specific force).
        linear[i] = rotation @ acc_win[i] + GRAVITY_WORLD
        rotation = integrate_angular_velocity(rotation, gyro_win[i], dt)
    return linear
