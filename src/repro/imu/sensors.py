"""Individual IMU sensor models.

Each model converts ground-truth rigid-body state (world-frame linear
acceleration, body->world rotation, body-frame angular velocity) into
what the physical sensor would report, including bias, noise, and — for
the gyroscope — slow bias drift modelled as a random walk (the drift the
paper cites as negligible over a two-second window but which our
calibration pipeline still has to live with).

Conventions match :mod:`repro.gesture.kinematics`: rotations map body to
world; the world frame is ENU (z up), gravity points down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.utils.rng import ensure_rng

#: World-frame gravitational acceleration (ENU, z up): 9.81 m/s^2 downward.
GRAVITY_WORLD = np.array([0.0, 0.0, -9.81])

#: World-frame geomagnetic field (microtesla), mid-latitude inclination:
#: mostly-north horizontal component plus a downward vertical component.
MAGNETIC_FIELD_WORLD = np.array([0.0, 22.0, -42.0])


def _check_state(
    rotations: np.ndarray, vectors: np.ndarray, name: str
) -> None:
    if rotations.ndim != 3 or rotations.shape[1:] != (3, 3):
        raise ShapeError(f"{name}: rotations must be (N, 3, 3)")
    if vectors.shape != (rotations.shape[0], 3):
        raise ShapeError(
            f"{name}: vectors must be (N, 3) matching rotations, "
            f"got {vectors.shape}"
        )


@dataclass(frozen=True)
class AccelerometerModel:
    """MEMS accelerometer: measures specific force in the body frame.

    At rest the sensor reads ``-g`` rotated into the body frame (i.e. the
    reaction to gravity); under motion it reads
    ``R^T (a_world - g_world)`` plus bias and white noise.
    """

    noise_std: float = 0.03  # m/s^2 per sample
    bias_std: float = 0.02  # m/s^2, constant per power-cycle

    def measure(
        self,
        accel_world: np.ndarray,
        rotations: np.ndarray,
        rng=None,
        bias: np.ndarray = None,
    ) -> np.ndarray:
        """Sample the sensor for each (acceleration, orientation) pair."""
        rng = ensure_rng(rng)
        accel_world = np.asarray(accel_world, dtype=np.float64)
        rotations = np.asarray(rotations, dtype=np.float64)
        _check_state(rotations, accel_world, "accelerometer")
        if bias is None:
            bias = rng.normal(0.0, self.bias_std, size=3)
        specific_force = accel_world - GRAVITY_WORLD
        body = np.einsum("nij,nj->ni", rotations.transpose(0, 2, 1),
                         specific_force)
        noise = rng.normal(0.0, self.noise_std, size=body.shape)
        return body + bias + noise


@dataclass(frozen=True)
class GyroscopeModel:
    """MEMS gyroscope: body-frame angular rate with random-walk bias drift."""

    noise_std: float = 0.002  # rad/s per sample
    bias_std: float = 0.005  # rad/s initial bias
    drift_rate: float = 0.0005  # rad/s per sqrt(s), bias random walk

    def measure(
        self,
        omega_body: np.ndarray,
        dt: float,
        rng=None,
        bias: np.ndarray = None,
    ) -> np.ndarray:
        """Sample the gyro for a uniformly sampled angular-velocity track."""
        rng = ensure_rng(rng)
        omega_body = np.asarray(omega_body, dtype=np.float64)
        if omega_body.ndim != 2 or omega_body.shape[1] != 3:
            raise ShapeError("gyroscope: omega_body must be (N, 3)")
        n = omega_body.shape[0]
        if bias is None:
            bias = rng.normal(0.0, self.bias_std, size=3)
        walk = rng.normal(
            0.0, self.drift_rate * np.sqrt(max(dt, 0.0)), size=(n, 3)
        ).cumsum(axis=0)
        noise = rng.normal(0.0, self.noise_std, size=(n, 3))
        return omega_body + bias + walk + noise


@dataclass(frozen=True)
class MagnetometerModel:
    """Magnetometer: world geomagnetic field observed in the body frame."""

    noise_std: float = 0.8  # microtesla per sample
    hard_iron_std: float = 0.5  # residual hard-iron offset after calibration

    def measure(
        self,
        rotations: np.ndarray,
        rng=None,
        hard_iron: np.ndarray = None,
    ) -> np.ndarray:
        """Sample the magnetometer for each orientation."""
        rng = ensure_rng(rng)
        rotations = np.asarray(rotations, dtype=np.float64)
        if rotations.ndim != 3 or rotations.shape[1:] != (3, 3):
            raise ShapeError("magnetometer: rotations must be (N, 3, 3)")
        if hard_iron is None:
            hard_iron = rng.normal(0.0, self.hard_iron_std, size=3)
        body = np.einsum(
            "nij,j->ni", rotations.transpose(0, 2, 1), MAGNETIC_FIELD_WORLD
        )
        noise = rng.normal(0.0, self.noise_std, size=body.shape)
        return body + hard_iron + noise
