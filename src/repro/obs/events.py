"""Structured event log (ring buffer).

Every notable service occurrence — admission, state transition, retry,
shed — is one :class:`ServiceEvent`.  The log is a bounded ring: at
capacity the *oldest* event is evicted so the log always holds the most
recent window of activity, with :attr:`EventLog.dropped` counting the
evictions.  ``query()`` returns events in emission order.

Events emitted while a tracing span is active on the emitting thread
automatically carry that span's ``trace_id``/``span_id``, so the
distributed-trace stitcher (:mod:`repro.obs.collect`) can fold
correlated events into the rendered span tree.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.tracing import current_span


@dataclass(frozen=True)
class ServiceEvent:
    """One structured entry in the service event log."""

    seq: int
    t_s: float  # seconds since the log was created (monotonic clock)
    kind: str
    session_id: Optional[str] = None
    fields: Dict[str, object] = field(default_factory=dict)
    #: the active span at emission time, when there was one
    trace_id: Optional[str] = None
    span_id: Optional[str] = None


class EventLog:
    """Bounded, thread-safe, queryable structured event log.

    A ring buffer: emitting past ``capacity`` evicts the oldest event
    (and increments :attr:`dropped`) — recent history is always
    retained, which is what an operator debugging a live incident
    needs.
    """

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ConfigurationError("event-log capacity must be >= 1")
        self.capacity = int(capacity)
        self._events: "deque[ServiceEvent]" = deque(maxlen=self.capacity)
        self._dropped = 0
        self._seq = itertools.count()
        self._origin = time.monotonic()
        self._lock = threading.Lock()

    def emit(self, kind: str, session_id: str = None, **fields) -> None:
        span = current_span()
        event = ServiceEvent(
            seq=next(self._seq),
            t_s=time.monotonic() - self._origin,
            kind=kind,
            session_id=session_id,
            fields=fields,
            trace_id=span.trace_id if span is not None else None,
            span_id=span.span_id if span is not None else None,
        )
        with self._lock:
            if len(self._events) == self.capacity:
                self._dropped += 1  # deque evicts the oldest on append
            self._events.append(event)

    def query(
        self, kind: str = None, session_id: str = None
    ) -> List[ServiceEvent]:
        """Events matching the filters, in emission order."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if session_id is not None:
            events = [e for e in events if e.session_id == session_id]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped
