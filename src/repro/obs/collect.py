"""Fleet telemetry collection: buffering, stitching, rendering.

Distributed tracing (:class:`repro.obs.tracing.TraceContext` riding the
``Hello``/``ResumeRequest`` wire frames) means one session's spans are
scattered across three processes — client, gateway, backend.  This
module is the pipeline that puts them back together:

* :class:`TelemetryBuffer` — the per-process bounded ring a server
  keeps its finished spans and recent events in.  A periodic event-loop
  timer (or any scrape) calls :meth:`TelemetryBuffer.flush` to drain
  the process tracer into the ring, stamping every span with the
  process's *service* identity; the ring is what a
  ``TelemetryRequest`` wire frame is answered from.
* :func:`stitch` — merge telemetry documents from many processes (plus
  any locally exported spans), de-duplicating spans by their globally
  unique ids, grouped and joined by ``trace_id``.
* :func:`format_stitched` — one ASCII tree per trace with per-hop
  service annotations, correlated events folded under their spans, and
  a cross-hop latency breakdown table answering "where did this slow
  session spend its time?".

Span timestamps are process-local monotonic clocks: durations are
comparable across hops, absolute starts are not.  The renderer
therefore orders and budgets by *duration*, never by cross-process
start times.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import EventLog, ServiceEvent
from repro.obs.tracing import Span, Tracer

#: Document schema tag so scrapers can reject foreign payloads.
TELEMETRY_SCHEMA = "repro.telemetry/1"


def event_to_dict(event: ServiceEvent, service: str = "") -> Dict[str, object]:
    """A :class:`ServiceEvent` as a portable telemetry dict."""
    return {
        "seq": event.seq,
        "t_s": event.t_s,
        "kind": event.kind,
        "session_id": event.session_id,
        "fields": dict(event.fields),
        "trace_id": event.trace_id,
        "span_id": event.span_id,
        "service": service,
    }


class TelemetryBuffer:
    """Bounded ring of finished spans + recent events for one process.

    ``flush()`` drains the attached tracer (consuming its finished
    spans, so the tracer's own ``max_spans`` bound never fills between
    scrapes) and copies any new events from the attached
    :class:`EventLog`; servers call it from a periodic event-loop timer
    and immediately before answering a ``TelemetryRequest``.
    ``document()`` is the JSON-ready payload of a
    ``TelemetryResponse``; with ``drain=True`` the buffer is cleared so
    a periodic scraper (the gateway) sees each span exactly once.

    ``add_spans``/``add_events`` accept pre-stamped dicts from *other*
    services — the gateway funnels scraped backend telemetry into its
    own buffer, making one scrape of the gateway sufficient to stitch
    the whole fleet.
    """

    def __init__(
        self,
        service: str,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
        max_spans: int = 4096,
        max_events: int = 2048,
    ):
        if max_spans < 1 or max_events < 1:
            raise ConfigurationError(
                "telemetry buffer capacities must be >= 1"
            )
        self.service = str(service)
        self.tracer = tracer
        self.events = events
        self._spans: "deque[Dict[str, object]]" = deque(maxlen=max_spans)
        self._events: "deque[Dict[str, object]]" = deque(maxlen=max_events)
        self._dropped_spans = 0
        self._dropped_events = 0
        self._last_event_seq = -1
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def dropped_spans(self) -> int:
        with self._lock:
            return self._dropped_spans

    def add_spans(
        self,
        spans: Iterable[Dict[str, object]],
        service: str = None,
    ) -> int:
        """Append span dicts, stamping ``service`` where absent;
        returns the number appended."""
        count = 0
        with self._lock:
            for span in spans:
                span = dict(span)
                if not span.get("service"):
                    span["service"] = (
                        service if service is not None else self.service
                    )
                if len(self._spans) == self._spans.maxlen:
                    self._dropped_spans += 1
                self._spans.append(span)
                count += 1
        return count

    def add_events(self, events: Iterable[Dict[str, object]]) -> int:
        count = 0
        with self._lock:
            for event in events:
                event = dict(event)
                if not event.get("service"):
                    event["service"] = self.service
                if len(self._events) == self._events.maxlen:
                    self._dropped_events += 1
                self._events.append(event)
                count += 1
        return count

    def flush(self) -> int:
        """Drain the attached tracer and event log into the ring;
        returns the number of spans collected."""
        collected = 0
        if self.tracer is not None and self.tracer.enabled:
            spans = self.tracer.finished_spans()
            if spans:
                self.tracer.reset()
                collected = self.add_spans(
                    [span.to_dict() for span in spans]
                )
        if self.events is not None:
            fresh = [
                event_to_dict(e, self.service)
                for e in self.events.query()
                if e.seq > self._last_event_seq
            ]
            if fresh:
                self._last_event_seq = fresh[-1]["seq"]
                self.add_events(fresh)
        return collected

    def document(self, drain: bool = False) -> Dict[str, object]:
        """The JSON-ready telemetry payload (call :meth:`flush` first
        to include the tracer's latest finished spans)."""
        with self._lock:
            doc = {
                "schema": TELEMETRY_SCHEMA,
                "service": self.service,
                "spans": list(self._spans),
                "events": list(self._events),
                "dropped_spans": self._dropped_spans,
                "dropped_events": self._dropped_events,
            }
            if drain:
                self._spans.clear()
                self._events.clear()
            return doc


# -- stitching ---------------------------------------------------------------


def stitch(
    documents: Sequence[Dict[str, object]],
    extra_spans: Sequence[Dict[str, object]] = (),
    extra_service: str = "local",
) -> Dict[str, object]:
    """Merge telemetry documents from many processes into one span set.

    Spans are de-duplicated by their globally unique ``span_id`` (a
    gateway's buffer may hold backend spans a direct backend scrape
    also returned), events by ``(service, seq)``.  ``extra_spans``
    admits locally loaded spans (a client's ``--trace-out`` JSONL),
    stamped ``extra_service`` when they carry no service of their own.
    Returns ``{"spans": [...], "events": [...], "services": [...]}``.
    """
    spans: Dict[str, Dict[str, object]] = {}
    events: Dict[object, Dict[str, object]] = {}
    services: List[str] = []

    def admit_span(span: Dict[str, object], fallback_service: str) -> None:
        span = dict(span)
        if not span.get("service"):
            span["service"] = fallback_service
        spans.setdefault(str(span.get("span_id")), span)

    for doc in documents:
        service = str(doc.get("service", ""))
        if service and service not in services:
            services.append(service)
        for span in doc.get("spans", []):
            admit_span(span, service)
        for event in doc.get("events", []):
            key = (event.get("service", service), event.get("seq"))
            events.setdefault(key, dict(event))
    for span in extra_spans:
        span = span.to_dict() if isinstance(span, Span) else span
        admit_span(span, extra_service)
        service = spans[str(span.get("span_id"))]["service"]
        if service and service not in services:
            services.append(service)
    return {
        "spans": list(spans.values()),
        "events": list(events.values()),
        "services": services,
    }


def trace_ids(spans: Sequence[Dict[str, object]]) -> List[str]:
    """Distinct trace ids, in first-appearance order."""
    seen: List[str] = []
    for span in spans:
        tid = str(span.get("trace_id"))
        if tid not in seen:
            seen.append(tid)
    return seen


def filter_trace(
    stitched: Dict[str, object], trace_id: str
) -> Dict[str, object]:
    """The subset of a stitched result belonging to one trace."""
    return {
        "spans": [
            s for s in stitched["spans"]
            if str(s.get("trace_id")) == trace_id
        ],
        "events": [
            e for e in stitched["events"]
            if e.get("trace_id") == trace_id
        ],
        "services": stitched.get("services", []),
    }


# -- rendering ---------------------------------------------------------------


def _duration_ms(span: Dict[str, object]) -> Optional[float]:
    duration = span.get("duration_s")
    if duration is None:
        start, end = span.get("start_s"), span.get("end_s")
        if start is None or end is None:
            return None
        duration = float(end) - float(start)
    return 1000.0 * float(duration)


def _format_attrs(span: Dict[str, object]) -> str:
    shown = {
        k: v
        for k, v in (span.get("attributes") or {}).items()
        if not isinstance(v, (dict, list, tuple))
    }
    if not shown:
        return ""
    body = " ".join(f"{k}={v}" for k, v in sorted(shown.items()))
    return f"  [{body}]"


def hop_breakdown(
    spans: Sequence[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Per-hop latency rows for one trace's spans.

    A *hop* is a service's local root: a span whose parent is missing
    or lives in a different service — the point where the trace
    crossed a process boundary.  ``share`` is the hop's duration as a
    fraction of the trace root's (the client's end-to-end time) when
    the root is finished.
    """
    by_id = {str(s.get("span_id")): s for s in spans}
    root_ms: Optional[float] = None
    for span in spans:
        if span.get("parent_id") is None:
            root_ms = _duration_ms(span)
            break
    rows: List[Dict[str, object]] = []
    for span in spans:
        parent = by_id.get(str(span.get("parent_id")))
        is_hop = (
            span.get("parent_id") is None
            or parent is None
            or parent.get("service") != span.get("service")
        )
        if not is_hop:
            continue
        duration = _duration_ms(span)
        rows.append({
            "service": span.get("service", ""),
            "span": span.get("name", ""),
            "duration_ms": duration,
            "share": (
                duration / root_ms
                if duration is not None and root_ms
                else None
            ),
        })
    rows.sort(
        key=lambda r: -(r["duration_ms"] or 0.0)
    )
    return rows


def format_stitched(stitched: Dict[str, object]) -> str:
    """Render a stitched multi-process result: one ASCII tree per
    trace (per-hop ``@service`` annotations, correlated events folded
    under their spans) followed by the cross-hop latency breakdown."""
    spans = stitched.get("spans", [])
    if not spans:
        return "(no spans)"
    events_by_span: Dict[str, List[Dict[str, object]]] = {}
    for event in stitched.get("events", []):
        if event.get("span_id"):
            events_by_span.setdefault(
                str(event["span_id"]), []
            ).append(event)

    lines: List[str] = []
    for tid in trace_ids(spans):
        trace_spans = [
            s for s in spans if str(s.get("trace_id")) == tid
        ]
        by_id = {str(s.get("span_id")): s for s in trace_spans}
        children: Dict[Optional[str], List[Dict[str, object]]] = {}
        roots: List[Dict[str, object]] = []
        for span in trace_spans:
            parent = span.get("parent_id")
            if parent is not None and str(parent) in by_id:
                children.setdefault(str(parent), []).append(span)
            else:
                roots.append(span)

        def order_key(span: Dict[str, object]):
            # Same-service siblings order by their shared monotonic
            # clock; cross-service ties break deterministically by
            # (service, name) — absolute starts don't compare across
            # processes.
            return (
                str(span.get("service", "")),
                float(span.get("start_s") or 0.0),
                str(span.get("name", "")),
            )

        for sibling_list in children.values():
            sibling_list.sort(key=order_key)
        roots.sort(key=order_key)

        def line_for(span: Dict[str, object]) -> str:
            duration = _duration_ms(span)
            timing = (
                "(open)" if duration is None else f"({duration:.2f} ms)"
            )
            status = span.get("status", "ok")
            flag = "" if status == "ok" else f" !{status}"
            service = span.get("service", "")
            tag = f" @{service}" if service else ""
            return (
                f"{span.get('name')} {timing}{tag}{flag}"
                f"{_format_attrs(span)}"
            )

        def walk(span: Dict[str, object], prefix: str, last: bool) -> None:
            connector = "└─ " if last else "├─ "
            lines.append(f"{prefix}{connector}{line_for(span)}")
            child_prefix = prefix + ("   " if last else "│  ")
            kids = children.get(str(span.get("span_id")), [])
            folded = events_by_span.get(str(span.get("span_id")), [])
            for event in folded:
                fields = event.get("fields") or {}
                body = " ".join(
                    f"{k}={v}" for k, v in sorted(fields.items())
                    if not isinstance(v, (dict, list, tuple))
                )
                suffix = f"  [{body}]" if body else ""
                bar = "   " if not kids else "│  "
                lines.append(
                    f"{child_prefix}{bar}· event {event.get('kind')}"
                    f"{suffix}"
                )
            for i, kid in enumerate(kids):
                walk(kid, child_prefix, i == len(kids) - 1)

        lines.append(f"trace {tid}")
        for i, root in enumerate(roots):
            walk(root, "", i == len(roots) - 1)

        rows = hop_breakdown(trace_spans)
        if rows:
            lines.append("")
            lines.append("  cross-hop latency breakdown:")
            lines.append(
                f"  {'service':20s} {'span':24s} "
                f"{'duration':>12s} {'share':>7s}"
            )
            for row in rows:
                duration = row["duration_ms"]
                dur = "open" if duration is None else f"{duration:.2f} ms"
                share = (
                    f"{100 * row['share']:.0f}%"
                    if row["share"] is not None else "-"
                )
                lines.append(
                    f"  {row['service'][:20]:20s} {row['span'][:24]:24s} "
                    f"{dur:>12s} {share:>7s}"
                )
        lines.append("")
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)
