"""Hierarchical span tracing for the key-agreement stack.

A :class:`Span` is one timed operation (an encoder forward, an OT
exchange, a whole session); a :class:`Tracer` collects finished spans
and hands out new ones.  Parentage is resolved three ways, in priority
order:

1. an explicit ``parent=`` span — how the server hands a session's root
   span across its worker and micro-batcher threads;
2. the thread-local *active-span stack* — ``with tracer.span(...)``
   pushes the span for the duration of the block, so nested library
   code (pipeline, protocol, per-layer profiler) lands under the caller
   without ever seeing the tracer object;
3. nothing — the span becomes the root of a new trace.

The active stack also carries the tracer itself: library code calls
:func:`resolve_tracer` with whatever it was (not) given and inherits
the tracer of the innermost active span, falling back to the process
default (:func:`set_default_tracer`) and finally to a disabled
singleton whose spans are free no-ops.

Traces export as JSONL (one span per line) and render as ASCII trees
via :func:`format_trace_tree` — the artifact the ``repro obs trace``
CLI command prints.

Traces also cross *process* boundaries: :class:`TraceContext` is the
portable (trace_id, parent span_id, sampled, service) tuple a client
injects into its ``Hello``/``ResumeRequest`` wire frames and a server
extracts on the far side.  A ``TraceContext`` is accepted anywhere a
``parent=`` span is (it duck-types ``trace_id``/``span_id``), so the
receiving process continues the caller's trace instead of minting its
own root.  To keep ids collision-free across processes, every tracer
salts its ids with a random per-instance tag.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError

_UNSET = object()


@dataclass
class Span:
    """One timed, attributed operation within a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_s: float
    end_s: Optional[float] = None
    status: str = "ok"
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def set_attribute(self, key: str, value: object) -> "Span":
        self.attributes[key] = value
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            start_s=float(payload["start_s"]),
            end_s=(
                float(payload["end_s"])
                if payload.get("end_s") is not None
                else None
            ),
            status=str(payload.get("status", "ok")),
            attributes=dict(payload.get("attributes", {})),
        )


class _NullSpan:
    """Inert stand-in handed out by a disabled tracer."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    attributes: Dict[str, object] = {}
    duration_s = None
    finished = False

    def set_attribute(self, key, value):
        return self

    def __bool__(self):
        return False


NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class TraceContext:
    """The portable cross-process slice of an active span.

    Carried as an optional field on ``Hello``/``ResumeRequest`` wire
    frames: ``trace_id`` names the distributed trace, ``span_id`` the
    sender's span the receiver should parent under, ``sampled`` whether
    the sender is actually recording (an unsampled context is ignored),
    and ``service`` the sender's service identity (annotation only —
    never affects parentage).  Duck-types as a ``parent=`` argument to
    :meth:`Tracer.start_span`.
    """

    trace_id: str
    span_id: str
    sampled: bool = True
    service: str = ""

    def __bool__(self) -> bool:
        return bool(self.trace_id and self.span_id)

    @property
    def usable(self) -> bool:
        """True when a receiver should parent work under this context."""
        return self.sampled and bool(self)

    @classmethod
    def from_span(
        cls, span, service: str = ""
    ) -> Optional["TraceContext"]:
        """The context describing ``span``, or ``None`` for null/absent
        spans (a disabled tracer propagates nothing)."""
        if span is None or span is NULL_SPAN or isinstance(span, _NullSpan):
            return None
        return cls(
            trace_id=span.trace_id,
            span_id=span.span_id,
            sampled=True,
            service=service,
        )


def current_context(service: str = "") -> Optional[TraceContext]:
    """The :class:`TraceContext` of this thread's innermost active
    span, ready to inject into an outgoing frame; ``None`` when no
    span is active (nothing to propagate)."""
    return TraceContext.from_span(current_span(), service=service)


def parent_from_context(context) -> Optional[TraceContext]:
    """Normalize an extracted wire context into a ``parent=`` value:
    the context itself when usable, else ``None`` (mint a new root)."""
    if isinstance(context, TraceContext) and context.usable:
        return context
    return None

# One process-wide active-span stack per thread.  Entries are
# ``(tracer, span)`` so nested code can recover both.
_tls = threading.local()


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_span() -> Optional[Span]:
    """The innermost active span on this thread, if any."""
    stack = _stack()
    return stack[-1][1] if stack else None


def current_tracer() -> Optional["Tracer"]:
    """The tracer owning the innermost active span on this thread."""
    stack = _stack()
    return stack[-1][0] if stack else None


class _ActiveSpan:
    """Context manager that opens a span and keeps the stack honest."""

    __slots__ = ("_tracer", "_name", "_parent", "_attributes", "span")

    def __init__(self, tracer, name, parent, attributes):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attributes = attributes
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.start_span(
            self._name, parent=self._parent, **self._attributes
        )
        _stack().append((self._tracer, self.span))
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = _stack()
        if stack and stack[-1][1] is self.span:
            stack.pop()
        status = "ok"
        if exc is not None:
            status = "error"
            self.span.set_attribute("error", repr(exc))
        self._tracer.finish_span(self.span, status=status)
        return False


class _Activation:
    """Push an existing (unfinished) span onto this thread's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        _stack().append((self._tracer, self._span))
        return self._span

    def __exit__(self, *exc_info) -> bool:
        stack = _stack()
        if stack and stack[-1][1] is self._span:
            stack.pop()
        return False


class _NullContext:
    """Free context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Creates, finishes, and stores spans; thread-safe.

    ``enabled=False`` turns every operation into a near-free no-op —
    the mode every hot path runs in unless an operator asks for a
    trace.  ``max_spans`` bounds memory; past it new spans are counted
    in :attr:`dropped` instead of stored.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000):
        if max_spans < 1:
            raise ConfigurationError("max_spans must be >= 1")
        self.enabled = bool(enabled)
        self.max_spans = int(max_spans)
        self._spans: List[Span] = []
        self._dropped = 0
        # Random per-tracer salt: ids stay unique across the processes
        # of a distributed trace, so stitching by trace_id never merges
        # unrelated traces and parent links never collide.
        self._tag = os.urandom(3).hex()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._lock = threading.Lock()

    # -- span creation -----------------------------------------------------

    def start_span(self, name: str, parent=_UNSET, **attributes) -> Span:
        """Open a span without activating it (explicit cross-thread
        handoff); pair with :meth:`finish_span`."""
        if not self.enabled:
            return NULL_SPAN
        if parent is _UNSET:
            parent = current_span()
        if parent is None or parent is NULL_SPAN or isinstance(
            parent, _NullSpan
        ):
            parent_id = None
            trace_id = f"t{self._tag}-{next(self._trace_ids):04d}"
        else:
            parent_id = parent.span_id
            trace_id = parent.trace_id
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{self._tag}-{next(self._span_ids):06d}",
            parent_id=parent_id,
            start_s=time.monotonic(),
            attributes=dict(attributes),
        )

    def finish_span(self, span, status: str = "ok") -> None:
        if not self.enabled or span is NULL_SPAN or isinstance(
            span, _NullSpan
        ):
            return
        if span.end_s is None:
            span.end_s = time.monotonic()
        span.status = status
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
            else:
                self._spans.append(span)

    def span(self, name: str, parent=_UNSET, **attributes):
        """``with tracer.span("encode") as s:`` — activate on this
        thread for the duration of the block."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _ActiveSpan(self, name, parent, attributes)

    def activate(self, span):
        """Re-activate an existing span on this thread (the worker-side
        half of an explicit parent handoff); does not finish it."""
        if not self.enabled or span is NULL_SPAN or isinstance(
            span, _NullSpan
        ):
            return _NULL_CONTEXT
        return _Activation(self, span)

    def record_span(
        self,
        name: str,
        parent=None,
        start_s: float = None,
        end_s: float = None,
        status: str = "ok",
        **attributes,
    ) -> Span:
        """Record a retroactive, already-elapsed span (e.g. queue wait
        measured from stored timestamps)."""
        if not self.enabled:
            return NULL_SPAN
        span = self.start_span(name, parent=parent, **attributes)
        if start_s is not None:
            span.start_s = float(start_s)
        span.end_s = float(end_s) if end_s is not None else time.monotonic()
        self.finish_span(span, status=status)
        return span

    # -- inspection / export -----------------------------------------------

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def reset(self) -> None:
        with self._lock:
            self._spans = []
            self._dropped = 0

    def to_dicts(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self.finished_spans()]

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; returns the count."""
        spans = self.to_dicts()
        with open(path, "w", encoding="utf-8") as fh:
            for payload in spans:
                fh.write(json.dumps(payload, default=str) + "\n")
        return len(spans)


#: Disabled singleton used wherever no tracer was configured.
NULL_TRACER = Tracer(enabled=False)

_default_lock = threading.Lock()
_default_tracer: Tracer = NULL_TRACER


def get_default_tracer() -> Tracer:
    """The process-wide fallback tracer (disabled unless configured)."""
    return _default_tracer


def set_default_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the process default; returns the previous
    one so callers can restore it."""
    global _default_tracer
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


class use_default_tracer:
    """``with use_default_tracer(t):`` — scoped default-tracer swap."""

    def __init__(self, tracer: Optional[Tracer]):
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_default_tracer(self._tracer)
        return get_default_tracer()

    def __exit__(self, *exc_info) -> bool:
        set_default_tracer(self._previous)
        return False


def resolve_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """The tracer instrumented library code should use *right now*:
    the explicit one, else the innermost active span's, else the
    process default."""
    if tracer is not None:
        return tracer
    active = current_tracer()
    if active is not None:
        return active
    return _default_tracer


# -- trace loading / rendering ---------------------------------------------


def load_trace_jsonl(path: str) -> List[Span]:
    """Parse a trace file written by :meth:`Tracer.export_jsonl`."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def _format_attributes(span: Span) -> str:
    shown = {
        k: v
        for k, v in span.attributes.items()
        if not isinstance(v, (dict, list, tuple))
    }
    if not shown:
        return ""
    body = " ".join(f"{k}={v}" for k, v in sorted(shown.items()))
    return f"  [{body}]"


def format_trace_tree(
    spans: Sequence[Union[Span, Dict[str, object]]]
) -> str:
    """Render spans as per-trace ASCII trees with durations.

    Accepts :class:`Span` objects or the dicts produced by
    :meth:`Span.to_dict` / :func:`load_trace_jsonl`.  Spans whose
    parent is missing from the input are promoted to roots so partial
    traces still render.
    """
    normalized = [
        s if isinstance(s, Span) else Span.from_dict(s) for s in spans
    ]
    if not normalized:
        return "(no spans)"
    by_id = {s.span_id: s for s in normalized}
    children: Dict[Optional[str], List[Span]] = {}
    roots: List[Span] = []
    for span in normalized:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    for sibling_list in children.values():
        sibling_list.sort(key=lambda s: s.start_s)
    roots.sort(key=lambda s: (s.trace_id, s.start_s))

    lines: List[str] = []

    def duration(span: Span) -> str:
        if span.duration_s is None:
            return "(open)"
        return f"({span.duration_s * 1000:.2f} ms)"

    def walk(span: Span, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        status = "" if span.status == "ok" else f" !{span.status}"
        lines.append(
            f"{prefix}{connector}{span.name} {duration(span)}"
            f"{status}{_format_attributes(span)}"
        )
        child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(span.span_id, [])
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1)

    current_trace = None
    for root in roots:
        if root.trace_id != current_trace:
            current_trace = root.trace_id
            lines.append(f"trace {current_trace}")
        walk(root, "", True)
    return "\n".join(lines)
