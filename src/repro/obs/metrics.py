"""Labeled metrics: counters, gauges, histograms, and a registry.

Generalizes the original ``repro.service.metrics`` primitives so the
service layer and the core pipeline share one registry:

* every metric may carry a fixed **label set** (``{"encoder": "imu_en"}``)
  — the registry memoizes one series per ``(name, labels)`` pair;
* snapshots are plain dicts, **merge-able** across processes or runs
  with :func:`merge_snapshots` (counters add, histogram buckets add,
  gauges keep the latest value);
* the whole registry renders as **Prometheus-style text exposition**
  (:meth:`MetricsRegistry.render_prometheus`), the format the
  ``repro obs metrics`` CLI command prints.

:class:`Histogram.percentile` interpolates linearly *within* the bucket
holding the requested rank (rather than reporting the bucket's upper
edge) and reports the true observed maximum for ranks that land in the
overflow bucket.

Histograms additionally retain one **tail exemplar** per series: an
observation passed with a ``trace_id`` that lands at or above the
series' configured percentile (:data:`EXEMPLAR_PERCENTILE` by default)
keeps that trace id alongside its value — highest value wins.  The
exemplar rides snapshots, survives :func:`merge_snapshots` (highest
value across the fleet wins), and surfaces in the Prometheus
exposition as an OpenMetrics-style ``# {trace_id="..."}`` annotation,
so a tail-latency spike links directly to its distributed trace.

Well-known series families registered by the stack include the
service-layer ``service.*`` counters/latencies, per-encoder
``pipeline.*`` series, and the warm-OT-pool family emitted by
:class:`repro.crypto.pool.OTMaterialPool`: ``crypto.pool.hit`` /
``crypto.pool.miss`` counters labeled by material kind,
``crypto.pool.depth`` gauges labeled by kind and group, the
``crypto.pool.produced`` counter, and the ``crypto.pool.refill_s``
histogram timing each background refill pass.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

Labels = Optional[Dict[str, str]]

#: Default tail percentile above which a traced observation is retained
#: as the series' exemplar.
EXEMPLAR_PERCENTILE = 0.99


def _series_key(name: str, labels: Labels) -> str:
    """Canonical series identifier: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self, name: str, labels: Labels = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(f"{self.name}: counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe value that can move both ways (queue depth &c.)."""

    def __init__(self, name: str, labels: Labels = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def latency_buckets() -> Tuple[float, ...]:
    """Default histogram bounds: 100 us .. 60 s, roughly log-spaced."""
    return (
        1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 60.0,
    )


def wakeup_buckets() -> Tuple[float, ...]:
    """Histogram bounds for event-loop wakeup/dispatch latencies: these
    are microsecond-scale on an idle loop, so the default latency
    buckets would dump everything into the first bin."""
    return (
        1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0,
    )


def byte_buckets() -> Tuple[float, ...]:
    """Histogram bounds for buffer/queue depths in bytes: 64 B .. 16 MiB,
    power-of-four spaced (outbound wire buffers, frame sizes)."""
    return tuple(float(64 << (2 * i)) for i in range(10))


class Histogram:
    """A fixed-bucket histogram with interpolated percentiles.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything larger.  Percentiles
    interpolate linearly inside the bucket holding the requested rank
    (the first bucket's lower edge is 0), clamped to the observed
    min/max; ranks landing in the overflow bucket report the true
    observed maximum.
    """

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = None,
        labels: Labels = None,
        exemplar_percentile: float = EXEMPLAR_PERCENTILE,
    ):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self.bounds: Tuple[float, ...] = tuple(
            float(b) for b in (bounds or latency_buckets())
        )
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ConfigurationError(
                f"{name}: histogram bounds must be ascending and non-empty"
            )
        if not (0.0 < exemplar_percentile <= 1.0):
            raise ConfigurationError(
                f"{name}: exemplar_percentile must be in (0, 1]"
            )
        self.exemplar_percentile = float(exemplar_percentile)
        self._counts = [0] * (len(self.bounds) + 1)
        self._total = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._exemplar: Optional[Dict[str, object]] = None
        self._lock = threading.Lock()

    def observe(self, value: float, trace_id: str = None) -> None:
        """Record ``value``; with ``trace_id``, a tail observation (at
        or above :attr:`exemplar_percentile`) is retained as the
        series' exemplar — highest value wins."""
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._total += value
            self._count += 1
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if trace_id and (
                self._exemplar is None
                or value >= self._exemplar["value"]
            ):
                threshold = self._percentile_locked(
                    self.exemplar_percentile
                )
                if value >= threshold:
                    self._exemplar = {
                        "value": value, "trace_id": str(trace_id),
                    }

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Linearly interpolated ``q``-quantile estimate (0 < q <= 1)."""
        if not (0.0 < q <= 1.0):
            raise ConfigurationError(f"{self.name}: quantile must be in (0, 1]")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for i, n in enumerate(self._counts):
            if cumulative + n >= rank and n > 0:
                if i == len(self.bounds):
                    # Overflow bucket: the only honest point estimate
                    # is the true observed maximum.
                    return self._max
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                estimate = lower + (rank - cumulative) / n * (
                    upper - lower
                )
                if self._min is not None:
                    estimate = max(estimate, self._min)
                if self._max is not None:
                    estimate = min(estimate, self._max)
                return estimate
            cumulative += n
        return self._max if self._max is not None else 0.0

    @property
    def exemplar(self) -> Optional[Dict[str, object]]:
        """The retained tail exemplar (``{"value", "trace_id"}``)."""
        with self._lock:
            return dict(self._exemplar) if self._exemplar else None

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            snap = {
                "count": self._count,
                "total": self._total,
                "mean": self._total / self._count if self._count else 0.0,
                "min": self._min,
                "max": self._max,
                "buckets": dict(zip(self.bounds, self._counts)),
                "overflow": self._counts[-1],
            }
            if self._exemplar is not None:
                snap["exemplar"] = dict(self._exemplar)
            return snap


class MetricsRegistry:
    """Namespace of labeled counters/gauges/histograms with one-call
    snapshots and Prometheus-style text exposition."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, labels: Labels = None) -> Counter:
        key = _series_key(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, labels)
            return self._counters[key]

    def gauge(self, name: str, labels: Labels = None) -> Gauge:
        key = _series_key(name, labels)
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(name, labels)
            return self._gauges[key]

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = None,
        labels: Labels = None,
        exemplar_percentile: float = EXEMPLAR_PERCENTILE,
    ) -> Histogram:
        key = _series_key(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(
                    name, bounds, labels,
                    exemplar_percentile=exemplar_percentile,
                )
            return self._histograms[key]

    def snapshot(self) -> Dict[str, object]:
        """All metric values as one nested dict (for tests / CLI).

        Keys are series identifiers — the bare metric name, or
        ``name{k="v"}`` for labeled series — so snapshots of disjoint
        label sets merge without collisions.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        snap: Dict[str, object] = {
            "counters": {k: c.value for k, c in counters.items()},
            "histograms": {k: h.snapshot() for k, h in histograms.items()},
        }
        if gauges:
            snap["gauges"] = {k: g.value for k, g in gauges.items()}
        return snap

    def render_prometheus(self) -> str:
        return render_prometheus(self.snapshot())


# -- snapshot-level operations ----------------------------------------------


def normalize_snapshot(snapshot: Dict[str, object]) -> Dict[str, object]:
    """Repair a snapshot that crossed a JSON boundary, in place.

    JSON stringifies histogram bucket bounds (``0.1`` -> ``"0.1"``),
    which would make :func:`merge_snapshots` see different bucket sets
    when merging a deserialized snapshot with a live one.  Scrapers and
    the CLI call this after ``json.loads`` so bounds compare equal
    again.  Returns the snapshot for chaining.
    """
    for hist in snapshot.get("histograms", {}).values():
        buckets = hist.get("buckets")
        if buckets:
            hist["buckets"] = {
                float(bound): count for bound, count in buckets.items()
            }
    return snapshot


def snapshot_percentile(hist: Dict[str, object], q: float) -> float:
    """:meth:`Histogram.percentile` over a histogram *snapshot* dict.

    Merged fleet snapshots are plain dicts with no live
    :class:`Histogram` behind them; this applies the same
    within-bucket linear interpolation (clamped to the recorded
    min/max, overflow ranks reporting the recorded maximum) so
    percentiles of merged data match what a single registry holding
    all the observations would report.
    """
    if not (0.0 < q <= 1.0):
        raise ConfigurationError("quantile must be in (0, 1]")
    count = hist.get("count", 0)
    if not count:
        return 0.0
    bounds = sorted(hist["buckets"])
    counts = [hist["buckets"][b] for b in bounds]
    counts.append(hist.get("overflow", 0))
    rank = q * count
    cumulative = 0
    for i, n in enumerate(counts):
        if cumulative + n >= rank and n > 0:
            if i == len(bounds):
                return hist["max"]
            lower = bounds[i - 1] if i > 0 else 0.0
            estimate = lower + (rank - cumulative) / n * (bounds[i] - lower)
            if hist.get("min") is not None:
                estimate = max(estimate, hist["min"])
            if hist.get("max") is not None:
                estimate = min(estimate, hist["max"])
            return estimate
        cumulative += n
    return hist["max"] if hist.get("max") is not None else 0.0


def merge_snapshots(*snapshots: Dict[str, object]) -> Dict[str, object]:
    """Combine registry snapshots: counters and histogram buckets add,
    gauges keep the last snapshot's value.  Shapes must agree where
    series collide (same histogram bounds)."""
    merged: Dict[str, object] = {"counters": {}, "histograms": {}}
    gauges: Dict[str, float] = {}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = value
        for key, hist in snap.get("histograms", {}).items():
            into = merged["histograms"].get(key)
            if into is None:
                into = {
                    "count": hist["count"],
                    "total": hist["total"],
                    "mean": hist["mean"],
                    "min": hist["min"],
                    "max": hist["max"],
                    "buckets": dict(hist["buckets"]),
                    "overflow": hist["overflow"],
                }
                if hist.get("exemplar"):
                    into["exemplar"] = dict(hist["exemplar"])
                merged["histograms"][key] = into
                continue
            if set(into["buckets"]) != set(hist["buckets"]):
                raise ConfigurationError(
                    f"{key}: cannot merge histograms with different bounds"
                )
            into["count"] += hist["count"]
            into["total"] += hist["total"]
            into["mean"] = (
                into["total"] / into["count"] if into["count"] else 0.0
            )
            for edge, n in hist["buckets"].items():
                into["buckets"][edge] += n
            into["overflow"] += hist["overflow"]
            mins = [m for m in (into["min"], hist["min"]) if m is not None]
            maxes = [m for m in (into["max"], hist["max"]) if m is not None]
            into["min"] = min(mins) if mins else None
            into["max"] = max(maxes) if maxes else None
            # One exemplar per series fleet-wide: the worst (highest
            # valued) traced tail observation wins.
            exemplars = [
                e for e in (into.get("exemplar"), hist.get("exemplar")) if e
            ]
            if exemplars:
                into["exemplar"] = dict(
                    max(exemplars, key=lambda e: e["value"])
                )
    if gauges:
        merged["gauges"] = gauges
    return merged


def _split_series_key(key: str) -> Tuple[str, str]:
    """``name{k="v"}`` -> (mangled metric name, ``{k="v"}`` or '')."""
    if "{" in key:
        name, _, labels = key.partition("{")
        label_block = "{" + labels
    else:
        name, label_block = key, ""
    mangled = "".join(
        c if (c.isalnum() or c == "_") else "_" for c in name
    )
    return mangled, label_block


def _merge_label_block(block: str, extra: str) -> str:
    """Insert ``extra`` (e.g. ``le="0.1"``) into a label block."""
    if not block:
        return "{" + extra + "}"
    return block[:-1] + "," + extra + "}"


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Prometheus text-exposition rendering of a registry snapshot.

    Metric names are mangled to ``[a-zA-Z0-9_]``; histograms emit the
    standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.
    """
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def declare(name: str, kind: str) -> None:
        if typed.get(name) != kind:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(snapshot.get("counters", {})):
        name, labels = _split_series_key(key)
        declare(name, "counter")
        lines.append(f"{name}{labels} {snapshot['counters'][key]}")
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = _split_series_key(key)
        declare(name, "gauge")
        lines.append(f"{name}{labels} {snapshot['gauges'][key]}")
    for key in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][key]
        name, labels = _split_series_key(key)
        declare(name, "histogram")
        exemplar = hist.get("exemplar")

        def exemplar_suffix(edge) -> str:
            # OpenMetrics-style exemplar annotation on the bucket that
            # contains the retained tail observation.
            if not exemplar:
                return ""
            value = exemplar["value"]
            if edge != "+Inf" and value > edge:
                return ""
            return (
                f' # {{trace_id="{exemplar["trace_id"]}"}} {value}'
            )

        cumulative = 0
        annotated = False
        for edge in sorted(hist["buckets"]):
            cumulative += hist["buckets"][edge]
            le = _merge_label_block(labels, f'le="{edge}"')
            suffix = "" if annotated else exemplar_suffix(edge)
            annotated = annotated or bool(suffix)
            lines.append(f"{name}_bucket{le} {cumulative}{suffix}")
        cumulative += hist["overflow"]
        le = _merge_label_block(labels, 'le="+Inf"')
        suffix = "" if annotated else exemplar_suffix("+Inf")
        lines.append(f"{name}_bucket{le} {cumulative}{suffix}")
        lines.append(f"{name}_sum{labels} {hist['total']}")
        lines.append(f"{name}_count{labels} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
