"""Per-layer forward profiling for :mod:`repro.nn`.

A :class:`LayerProfiler` attached to a :class:`repro.nn.Sequential`
(``encoder.profiler = profiler``) records, for every layer of every
forward pass: wall time, batch size, and an analytic FLOP estimate.
When a tracer is active it additionally emits one child span per layer,
so a traced service run shows exactly which convolution the encode
latency went to.

The hooks are opt-in: a ``Sequential`` with ``profiler`` unset (the
default) pays one attribute check per forward call and nothing else —
the invariant ``benchmarks/test_obs_overhead.py`` pins.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.obs.tracing import Tracer, current_span, resolve_tracer


def flop_estimate(layer, in_shape, out_shape) -> Optional[int]:
    """Analytic multiply-add count for one forward pass of ``layer``.

    Returns ``None`` for layer types without a meaningful estimate.
    Imports :mod:`repro.nn` lazily so the obs package stays importable
    on its own.
    """
    from repro.nn.conv import Conv1d, ConvTranspose1d
    from repro.nn.layers import Dense, Flatten, ReLU, Reshape
    from repro.nn.norm import BatchNorm1d

    def numel(shape) -> int:
        n = 1
        for d in shape:
            n *= int(d)
        return n

    batch = int(in_shape[0]) if in_shape else 1
    if isinstance(layer, Dense):
        return 2 * batch * layer.in_features * layer.out_features
    if isinstance(layer, Conv1d):
        return (
            2 * batch * layer.out_channels * layer.in_channels
            * layer.kernel_size * int(out_shape[-1])
        )
    if isinstance(layer, ConvTranspose1d):
        return (
            2 * batch * layer.out_channels * layer.in_channels
            * layer.kernel_size * int(in_shape[-1])
        )
    if isinstance(layer, BatchNorm1d):
        return 4 * numel(out_shape)
    if isinstance(layer, (ReLU, Flatten, Reshape)):
        return numel(out_shape)
    return None


class LayerStats:
    """Aggregate forward statistics for one (container, layer) pair."""

    __slots__ = (
        "layer_type", "calls", "total_s", "min_s", "max_s",
        "total_items", "total_flops",
    )

    def __init__(self, layer_type: str):
        self.layer_type = layer_type
        self.calls = 0
        self.total_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None
        self.total_items = 0
        self.total_flops = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": self.layer_type,
            "calls": self.calls,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "total_items": self.total_items,
            "total_flops": self.total_flops,
        }


class LayerProfiler:
    """Collects per-layer forward timings; optionally emits spans.

    One profiler may be shared by several containers (the pipeline
    attaches the same instance to IMU-En and RF-En); entries are keyed
    ``"<container>/<layer-name>"``.  ``enabled=False`` makes
    :meth:`record` a no-op so a profiler can stay attached across runs.
    """

    def __init__(self, tracer: Tracer = None, enabled: bool = True):
        self.enabled = bool(enabled)
        self.tracer = tracer
        self._stats: Dict[str, LayerStats] = {}
        self._lock = threading.Lock()

    def record(
        self,
        container: str,
        layer,
        in_shape,
        out_shape,
        start_s: float,
        end_s: float,
    ) -> None:
        if not self.enabled:
            return
        duration = end_s - start_s
        layer_name = getattr(layer, "name", type(layer).__name__)
        key = f"{container}/{layer_name}"
        batch = int(in_shape[0]) if in_shape else 1
        flops = flop_estimate(layer, in_shape, out_shape)
        with self._lock:
            stats = self._stats.get(key)
            if stats is None:
                stats = self._stats[key] = LayerStats(type(layer).__name__)
            stats.calls += 1
            stats.total_s += duration
            stats.min_s = (
                duration if stats.min_s is None
                else min(stats.min_s, duration)
            )
            stats.max_s = (
                duration if stats.max_s is None
                else max(stats.max_s, duration)
            )
            stats.total_items += batch
            if flops is not None:
                stats.total_flops += flops
        tracer = resolve_tracer(self.tracer)
        if tracer.enabled:
            attributes = {"batch_size": batch}
            if flops is not None:
                attributes["flops"] = flops
            tracer.record_span(
                f"nn.{key}",
                parent=current_span(),
                start_s=start_s,
                end_s=end_s,
                **attributes,
            )

    # -- inspection --------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {key: s.as_dict() for key, s in self._stats.items()}

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()

    def report_lines(self) -> List[str]:
        """Human-readable per-layer breakdown, slowest first."""
        stats = self.stats()
        if not stats:
            return ["(no profiled forwards)"]
        width = max(len(k) for k in stats)
        lines = [
            f"{'layer':{width}s} {'type':>16s} {'calls':>6s} "
            f"{'items':>7s} {'mean ms':>8s} {'total ms':>9s} {'GFLOP':>7s}"
        ]
        ordered = sorted(
            stats.items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
        for key, s in ordered:
            gflop = s["total_flops"] / 1e9
            lines.append(
                f"{key:{width}s} {s['type']:>16s} {s['calls']:>6d} "
                f"{s['total_items']:>7d} {s['mean_s'] * 1000:>8.3f} "
                f"{s['total_s'] * 1000:>9.2f} {gflop:>7.3f}"
            )
        return lines
