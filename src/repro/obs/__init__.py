"""`repro.obs` — shared observability for the key-agreement stack.

Three instruments, designed to be threaded through every layer of the
reproduction and to cost (almost) nothing when switched off:

* **tracing** (:mod:`repro.obs.tracing`) — hierarchical spans with a
  thread-local active-span stack, explicit parent handoff for
  cross-thread work (the service's worker and micro-batcher threads),
  JSONL export, and an ASCII tree renderer;
* **metrics** (:mod:`repro.obs.metrics`) — labeled counters, gauges and
  histograms in a registry with merge-able snapshots and
  Prometheus-style text exposition (plus the ring-buffer
  :class:`EventLog` in :mod:`repro.obs.events`);
* **profiling** (:mod:`repro.obs.profiling`) — opt-in per-layer forward
  timing and FLOP estimates for :mod:`repro.nn` containers.

Quick start::

    from repro.obs import Tracer, use_default_tracer, format_trace_tree

    tracer = Tracer()
    with use_default_tracer(tracer):
        system.establish_key(rng=7)     # library code traces itself
    print(format_trace_tree(tracer.finished_spans()))
"""

from repro.obs.collect import (
    TELEMETRY_SCHEMA,
    TelemetryBuffer,
    event_to_dict,
    filter_trace,
    format_stitched,
    hop_breakdown,
    stitch,
    trace_ids,
)
from repro.obs.events import EventLog, ServiceEvent
from repro.obs.metrics import (
    EXEMPLAR_PERCENTILE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    byte_buckets,
    latency_buckets,
    wakeup_buckets,
    merge_snapshots,
    normalize_snapshot,
    render_prometheus,
    snapshot_percentile,
)
from repro.obs.profiling import LayerProfiler, LayerStats, flop_estimate
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
    current_context,
    current_span,
    current_tracer,
    format_trace_tree,
    get_default_tracer,
    load_trace_jsonl,
    parent_from_context,
    resolve_tracer,
    set_default_tracer,
    use_default_tracer,
)

__all__ = [
    "Counter",
    "EXEMPLAR_PERCENTILE",
    "EventLog",
    "Gauge",
    "Histogram",
    "TELEMETRY_SCHEMA",
    "TelemetryBuffer",
    "TraceContext",
    "current_context",
    "event_to_dict",
    "filter_trace",
    "format_stitched",
    "hop_breakdown",
    "parent_from_context",
    "stitch",
    "trace_ids",
    "LayerProfiler",
    "LayerStats",
    "MetricsRegistry",
    "NULL_TRACER",
    "ServiceEvent",
    "Span",
    "Tracer",
    "current_span",
    "current_tracer",
    "flop_estimate",
    "format_trace_tree",
    "get_default_tracer",
    "byte_buckets",
    "latency_buckets",
    "wakeup_buckets",
    "load_trace_jsonl",
    "merge_snapshots",
    "normalize_snapshot",
    "render_prometheus",
    "snapshot_percentile",
    "resolve_tracer",
    "set_default_tracer",
    "use_default_tracer",
]
