"""repro.net — the key-agreement protocol on a real wire.

Everything below the process boundary that PR 1's in-process service
left simulated:

* :mod:`repro.net.codec` — versioned binary codec: length-prefixed
  frames, message-type tags, and round-trip serialization for every
  protocol dataclass plus the session-control frames (hello, accept,
  seed grant, round result, verdict, error);
* :mod:`repro.net.connection` — a socket wrapper speaking that codec
  with read deadlines, max-frame enforcement, zero-copy buffered
  reads, frame/byte metrics, and the bounded non-blocking
  :class:`OutboundBuffer` used by the event-loop tier;
* :mod:`repro.net.eventloop` — a single-threaded ``selectors`` event
  loop (self-pipe wakeups, timer heap, loop health metrics) shared by
  the server and proxy front ends;
* :mod:`repro.net.server` — TCP front ends over
  :class:`repro.service.WaveKeyAccessServer`: the default event-loop
  :class:`WaveKeyTCPServer` (constant thread count at any connection
  count, protocol compute offloaded to the access server's workers)
  and the original :class:`ThreadedWaveKeyTCPServer` baseline;
  sessions feed through the existing admission queue and
  micro-batcher, load shedding maps to wire error frames;
* :mod:`repro.net.client` — a blocking client SDK driving a full
  establishment from the device side, with connect/read timeouts and
  bounded exponential-backoff retries; after a successful agreement
  it holds a :class:`ClientTicket` and can reopen a secure channel
  (:meth:`WaveKeyNetClient.open_channel`) or revoke the ticket
  without re-running the gesture/OT exchange (:mod:`repro.access`);
* :mod:`repro.net.proxy` — a fault-injection TCP proxy porting the
  simulated adversary hooks (tap, delay, drop, corrupt, reorder) to
  real connections, so SV-A/SV-C experiments run over loopback — now
  relaying on the shared event loop.

Quick start (loopback)::

    from repro.core.pretrained import load_default_bundle
    from repro.net import WaveKeyTCPServer, WaveKeyNetClient
    from repro.service import WaveKeyAccessServer

    with WaveKeyAccessServer(load_default_bundle()) as access:
        with WaveKeyTCPServer(access, "127.0.0.1", 0) as tcp:
            host, port = tcp.address
            client = WaveKeyNetClient(host, port)
            result = client.establish(rng_seed=7)
            assert result.success
"""

from repro.net.client import (
    ClientTicket,
    EstablishmentResult,
    NetClientConfig,
    WaveKeyNetClient,
)
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Frame,
    FrameAssembler,
    FrameType,
    RecordFrame,
    ReplDigest,
    ReplPull,
    ReplPush,
    ResumeAccept,
    ResumeRequest,
    RevokeNotice,
    StatsRequest,
    StatsResponse,
    TicketGrant,
    decode_payload,
    encode_message,
    frame_to_bytes,
    framing_overhead,
)
from repro.net.connection import FrameConnection, OutboundBuffer
from repro.net.eventloop import EventLoop
from repro.net.proxy import (
    FaultInjectionProxy,
    corrupt_frames,
    delay_frames,
    drop_frames,
    reorder_once,
)
from repro.net.server import (
    ThreadedWaveKeyTCPServer,
    WaveKeyTCPServer,
    backend_stats_response,
    issue_ticket_grant,
)

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ClientTicket",
    "EstablishmentResult",
    "EventLoop",
    "FaultInjectionProxy",
    "Frame",
    "FrameAssembler",
    "FrameConnection",
    "FrameType",
    "NetClientConfig",
    "OutboundBuffer",
    "RecordFrame",
    "ReplDigest",
    "ReplPull",
    "ReplPush",
    "ResumeAccept",
    "ResumeRequest",
    "RevokeNotice",
    "StatsRequest",
    "StatsResponse",
    "ThreadedWaveKeyTCPServer",
    "TicketGrant",
    "WaveKeyNetClient",
    "WaveKeyTCPServer",
    "backend_stats_response",
    "corrupt_frames",
    "issue_ticket_grant",
    "decode_payload",
    "delay_frames",
    "drop_frames",
    "encode_message",
    "frame_to_bytes",
    "framing_overhead",
    "reorder_once",
]
