"""Blocking client SDK: drive a key establishment from the device side.

:class:`WaveKeyNetClient` dials a :class:`repro.net.server.WaveKeyTCPServer`,
performs the hello/accept handshake, and then plays the mobile half of
the Fig. 4 protocol for every round the server grants: craft ``M_A``,
answer the server's announce, exchange ciphertexts, assemble the
preliminary key, send the reconciliation challenge, verify the HMAC
confirmation, and close the round with a mutual-confirmation ack.

Fault handling is the SDK contract:

* connect failures, read deadlines, oversized frames, undecodable
  bytes, and mid-session disconnects all surface as typed
  :class:`repro.errors.TransportError` subclasses;
* :meth:`WaveKeyNetClient.establish` retries the *whole* establishment
  (fresh connection, fresh server session) on transport errors, with
  bounded exponential backoff — protocol-level failures (keys differ,
  deadline breached, load shed) are returned as results, not retried,
  because the server already applied its own retry policy;
* every run emits client-side spans (``net.establish`` -> connect /
  hello / per-round stages) and frame/byte metrics when given a tracer
  or registry.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.access.channel import ClientAccessChannel, new_nonce
from repro.access.records import derive_resume_secret, revocation_tag
from repro.crypto.group import Group
from repro.crypto.hashes import hmac_digest
from repro.crypto.numbers import WAVEKEY_GROUP_512
from repro.errors import (
    AccessError,
    ConfigurationError,
    ConnectionTimeout,
    GroupMismatch,
    KeyAgreementFailure,
    ProtocolError,
    TicketError,
    TicketExpired,
    TicketRevoked,
    TicketUnknown,
    TransportError,
)
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Accept,
    ConfirmAck,
    ErrorFrame,
    Hello,
    ResumeAccept,
    ResumeRequest,
    RevokeNotice,
    RoundResult,
    SeedGrant,
    TicketGrant,
    Verdict,
)
from repro.net.connection import FrameConnection, connect
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, current_context, resolve_tracer
from repro.protocol.agreement import AgreementParty, KeyAgreementConfig
from repro.protocol.messages import (
    ConfirmationResponse,
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    require_sender,
)
from repro.utils.bits import BitSequence
from repro.utils.rng import child_rng


def _parse_endpoint(spec: str) -> Tuple[str, int]:
    """Split ``"host:port"`` into a ``(host, port)`` pair."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"endpoint {spec!r} must look like HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"endpoint {spec!r} has a non-integer port"
        ) from None
    if not 0 < port < 65536:
        raise ConfigurationError(f"endpoint {spec!r} port out of range")
    return host, port


@dataclass(frozen=True)
class NetClientConfig:
    """Client-side knobs: identity, deadlines, and the retry policy.

    ``endpoints`` is an ordered list of fallback ``"host:port"``
    addresses tried *after* the primary endpoint: when the connect
    phase itself fails (refused, unreachable, timed out) the client
    rotates to the next address on the following dial instead of
    hammering the dead one.  Failures *after* a connection was
    established stick with the current endpoint — the server already
    holds session state worth retrying against.
    """

    name: str = "mobile"
    connect_timeout_s: float = 5.0
    read_timeout_s: float = 10.0
    establish_timeout_s: float = 60.0
    max_retries: int = 2
    backoff_initial_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 1.0
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    endpoints: Tuple[str, ...] = ()
    group: Group = WAVEKEY_GROUP_512

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("client name must be non-empty")
        object.__setattr__(self, "endpoints", tuple(self.endpoints))
        for spec in self.endpoints:
            _parse_endpoint(spec)
        if min(
            self.connect_timeout_s,
            self.read_timeout_s,
            self.establish_timeout_s,
        ) <= 0:
            raise ConfigurationError("timeouts must be > 0")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_initial_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")


@dataclass(frozen=True)
class ClientTicket:
    """Client-side resumption credential.

    Pairs the server's :class:`TicketGrant` with the resumption secret
    the client derived from its own copy of the agreed key — the
    secret never travels, so holding a :class:`ClientTicket` proves
    the holder completed (or was handed the outcome of) an agreement.
    Serializable via :meth:`to_json`/:meth:`from_json` so the CLI can
    park it on disk between invocations.
    """

    ticket_id: str
    resume_secret: bytes
    expires_at: float
    lifetime_s: float
    server: str = ""

    def to_json(self) -> str:
        return json.dumps({
            "ticket_id": self.ticket_id,
            "resume_secret": self.resume_secret.hex(),
            "expires_at": self.expires_at,
            "lifetime_s": self.lifetime_s,
            "server": self.server,
        })

    @staticmethod
    def from_json(text: str) -> "ClientTicket":
        try:
            data = json.loads(text)
            return ClientTicket(
                ticket_id=str(data["ticket_id"]),
                resume_secret=bytes.fromhex(str(data["resume_secret"])),
                expires_at=float(data["expires_at"]),
                lifetime_s=float(data["lifetime_s"]),
                server=str(data.get("server", "")),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise AccessError(f"malformed client ticket: {exc}") from exc


@dataclass
class EstablishmentResult:
    """Client-side view of one (possibly retried) establishment."""

    success: bool
    state: str
    session_id: str = ""
    key: Optional[BitSequence] = None
    attempts: int = 0          # server-side protocol attempts
    connects: int = 1          # connections dialed (1 + transport retries)
    elapsed_s: float = 0.0
    failure_reason: Optional[str] = None
    rounds: List[RoundResult] = field(default_factory=list)
    endpoint: str = ""         # address that served the final attempt
    ticket: Optional[ClientTicket] = None  # resumption credential


class _RoundAborted(Exception):
    """Server ended the round early (carries its RoundResult)."""

    def __init__(self, result: RoundResult):
        super().__init__(result.reason)
        self.result = result


class _ConnectFailed(Exception):
    """The connect phase itself failed (eligible for endpoint failover)."""

    def __init__(self, cause: TransportError):
        super().__init__(str(cause))
        self.cause = cause


class WaveKeyNetClient:
    """Blocking establishment client for one server endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        config: NetClientConfig = None,
        *,
        metrics: MetricsRegistry = None,
        tracer: Tracer = None,
    ):
        self.host = host
        self.port = int(port)
        self.config = config or NetClientConfig()
        self.metrics = metrics
        self.tracer = tracer
        self._endpoints: List[Tuple[str, int]] = [(self.host, self.port)]
        for spec in self.config.endpoints:
            pair = _parse_endpoint(spec)
            if pair not in self._endpoints:
                self._endpoints.append(pair)

    # -- public API --------------------------------------------------------

    def establish(
        self, rng_seed: int, dynamic: bool = False
    ) -> EstablishmentResult:
        """Run one full key establishment, retrying transport faults.

        Returns an :class:`EstablishmentResult` for every protocol-level
        verdict (established, failed, timed out, shed); raises the last
        :class:`TransportError` once the bounded retries are exhausted.
        """
        config = self.config
        tracer = resolve_tracer(self.tracer)
        start = time.monotonic()
        delay = config.backoff_initial_s
        last_error: Optional[TransportError] = None
        endpoint_index = 0
        with tracer.span(
            "net.establish", seed=rng_seed, server=f"{self.host}:{self.port}"
        ) as root:
            for dial in range(1 + config.max_retries):
                if dial:
                    if self.metrics is not None:
                        self.metrics.counter("net.client.retries").inc()
                    time.sleep(delay)
                    delay = min(
                        delay * config.backoff_multiplier,
                        config.backoff_max_s,
                    )
                host, port = self._endpoints[
                    endpoint_index % len(self._endpoints)
                ]
                try:
                    result = self._attempt(
                        host, port, rng_seed, dynamic, tracer
                    )
                    result.connects = dial + 1
                    result.elapsed_s = time.monotonic() - start
                    result.endpoint = f"{host}:{port}"
                    root.set_attribute("state", result.state)
                    root.set_attribute("connects", result.connects)
                    root.set_attribute("endpoint", result.endpoint)
                    return result
                except _ConnectFailed as exc:
                    last_error = exc.cause
                    if self.metrics is not None:
                        self.metrics.counter(
                            "net.client.transport_errors"
                        ).inc()
                    if len(self._endpoints) > 1:
                        endpoint_index += 1
                        if self.metrics is not None:
                            self.metrics.counter(
                                "net.client.failover"
                            ).inc()
                except TransportError as exc:
                    last_error = exc
                    if self.metrics is not None:
                        self.metrics.counter(
                            "net.client.transport_errors"
                        ).inc()
            root.set_attribute("state", "transport_error")
        raise last_error

    def open_channel(self, ticket: ClientTicket) -> ClientAccessChannel:
        """Resume a secure channel from a ticket — no gesture, no OT.

        Dials the primary endpoint, presents the ticket with a fresh
        nonce, verifies the server's proof that it holds the ticket's
        resumption secret, and returns the live channel.  Ticket
        rejections surface as the matching typed error
        (:class:`TicketUnknown` / :class:`TicketExpired` /
        :class:`TicketRevoked`); transport faults raise
        :class:`TransportError` so callers can fall back to
        :meth:`establish`.
        """
        config = self.config
        tracer = resolve_tracer(self.tracer)
        with tracer.span(
            "access.resume", ticket=ticket.ticket_id,
            server=f"{self.host}:{self.port}",
        ) as span:
            conn = connect(
                self.host,
                self.port,
                timeout_s=config.connect_timeout_s,
                max_frame_bytes=config.max_frame_bytes,
                read_timeout_s=config.read_timeout_s,
                metrics=self.metrics,
                endpoint="client",
            )
            try:
                client_nonce = new_nonce()
                conn.send(ResumeRequest(
                    sender=config.name,
                    ticket_id=ticket.ticket_id,
                    client_nonce=client_nonce,
                    trace_context=current_context(service=config.name),
                ))
                answer = conn.recv()
                if isinstance(answer, ErrorFrame):
                    span.set_attribute("rejected", answer.code)
                    if self.metrics is not None:
                        self.metrics.counter(
                            "access.client.resume_rejected",
                            labels={"code": answer.code},
                        ).inc()
                    raise self._ticket_error(answer)
                if not isinstance(answer, ResumeAccept):
                    raise ProtocolError(
                        "expected RESUME_ACCEPT, got "
                        f"{type(answer).__name__}"
                    )
                _, records = ClientAccessChannel.complete_handshake(
                    ticket.resume_secret, client_nonce, answer
                )
            except BaseException:
                conn.close()
                raise
            span.set_attribute("channel", answer.channel_id)
            if self.metrics is not None:
                self.metrics.counter("access.client.resumed").inc()
            return ClientAccessChannel(
                conn, records, answer.channel_id, metrics=self.metrics
            )

    def revoke(self, ticket: ClientTicket) -> bool:
        """Kill a ticket server-side; returns True on the server's ack.

        Authenticated by the ticket's revocation key, so it works from
        any process holding the :class:`ClientTicket` — no secure
        channel required.  Raises the typed ticket error if the server
        no longer honours the id.
        """
        conn = connect(
            self.host,
            self.port,
            timeout_s=self.config.connect_timeout_s,
            max_frame_bytes=self.config.max_frame_bytes,
            read_timeout_s=self.config.read_timeout_s,
            metrics=self.metrics,
            endpoint="client",
        )
        try:
            conn.send(RevokeNotice(
                ticket_id=ticket.ticket_id,
                tag=revocation_tag(
                    ticket.resume_secret, ticket.ticket_id
                ),
            ))
            answer = conn.recv()
        finally:
            conn.close()
        if isinstance(answer, ErrorFrame):
            raise self._ticket_error(answer)
        if isinstance(answer, RoundResult) and answer.success:
            if self.metrics is not None:
                self.metrics.counter("access.client.revoked").inc()
            return True
        raise ProtocolError(
            f"unexpected revocation reply {type(answer).__name__}"
        )

    @staticmethod
    def _ticket_error(error: ErrorFrame) -> Exception:
        """Map a wire error code back to the typed exception."""
        by_code = {
            TicketUnknown.wire_code: TicketUnknown,
            TicketExpired.wire_code: TicketExpired,
            TicketRevoked.wire_code: TicketRevoked,
        }
        exc_type = by_code.get(error.code)
        if exc_type is not None:
            return exc_type(error.detail)
        if error.code in ("resume_invalid", "revoke_auth"):
            return TicketError(f"{error.code}: {error.detail}")
        return ProtocolError(
            f"server error {error.code}: {error.detail}"
        )

    # -- one connection lifecycle ------------------------------------------

    def _attempt(
        self, host: str, port: int, rng_seed: int, dynamic: bool,
        tracer: Tracer,
    ) -> EstablishmentResult:
        config = self.config
        deadline = time.monotonic() + config.establish_timeout_s
        with tracer.span("net.connect", server=f"{host}:{port}"):
            try:
                conn = connect(
                    host,
                    port,
                    timeout_s=config.connect_timeout_s,
                    max_frame_bytes=config.max_frame_bytes,
                    read_timeout_s=config.read_timeout_s,
                    metrics=self.metrics,
                    endpoint="client",
                )
            except TransportError as exc:
                raise _ConnectFailed(exc) from exc
        try:
            with tracer.span("net.hello"):
                # Propagate the active trace (the span just opened, or
                # any caller-held one) so the server continues it.
                # The default group travels as an empty id so the Hello
                # stays byte-identical to the pre-negotiation wire.
                group_id = (
                    "" if config.group == WAVEKEY_GROUP_512
                    else config.group.name
                )
                conn.send(Hello(
                    sender=config.name, rng_seed=rng_seed, dynamic=dynamic,
                    trace_context=current_context(service=config.name),
                    group_id=group_id,
                ))
                answer = conn.recv()
            if isinstance(answer, ErrorFrame):
                return self._error_result(answer)
            if not isinstance(answer, Accept):
                raise ProtocolError(
                    f"expected ACCEPT, got {type(answer).__name__}"
                )
            if answer.version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"server speaks protocol {answer.version}, client "
                    f"speaks {PROTOCOL_VERSION}"
                )
            accept = answer
            agreement_config = KeyAgreementConfig(
                key_length_bits=accept.key_length_bits,
                eta=accept.eta,
                group=config.group,
            )

            rounds: List[RoundResult] = []
            session_key: Optional[BitSequence] = None
            grant: Optional[TicketGrant] = None
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ConnectionTimeout(
                        f"no verdict within {config.establish_timeout_s}s"
                    )
                message = conn.recv(
                    timeout_s=min(config.read_timeout_s, remaining)
                )
                if isinstance(message, SeedGrant):
                    session_key = self._run_round(
                        conn, accept, agreement_config, message,
                        rng_seed, rounds, tracer,
                    )
                elif isinstance(message, RoundResult):
                    rounds.append(message)
                elif isinstance(message, TicketGrant):
                    grant = message
                elif isinstance(message, Verdict):
                    return self._verdict_result(
                        message, accept, session_key, rounds, grant,
                        f"{host}:{port}",
                    )
                elif isinstance(message, ErrorFrame):
                    return self._error_result(message, rounds)
                else:
                    raise ProtocolError(
                        f"unexpected {type(message).__name__} "
                        "between rounds"
                    )
        finally:
            conn.close()

    def _error_result(
        self, error: ErrorFrame, rounds: List[RoundResult] = None
    ) -> EstablishmentResult:
        if error.code in ("busy", "timeout", "unavailable"):
            state = "shed" if error.code == "busy" else "timed_out"
            return EstablishmentResult(
                success=False,
                state=state,
                failure_reason=f"{error.code}: {error.detail}",
                rounds=rounds or [],
            )
        if error.code == GroupMismatch.wire_code:
            # Retrying against the same server cannot change its
            # configured group, so surface the typed error immediately.
            raise GroupMismatch(error.detail or "server rejected the group")
        raise ProtocolError(f"server error {error.code}: {error.detail}")

    def _verdict_result(
        self,
        verdict: Verdict,
        accept: Accept,
        session_key: Optional[BitSequence],
        rounds: List[RoundResult],
        grant: Optional[TicketGrant] = None,
        endpoint: str = "",
    ) -> EstablishmentResult:
        success = verdict.state == "established"
        if success and session_key is None:
            raise ProtocolError(
                "server reported establishment but no round completed "
                "on the client side"
            )
        ticket: Optional[ClientTicket] = None
        if success and grant is not None:
            # The grant names the ticket; the secret comes from the
            # client's own copy of the agreed key.
            ticket = ClientTicket(
                ticket_id=grant.ticket_id,
                resume_secret=derive_resume_secret(session_key.to_bytes()),
                expires_at=grant.expires_at,
                lifetime_s=grant.lifetime_s,
                server=endpoint,
            )
            if self.metrics is not None:
                self.metrics.counter("access.client.grants").inc()
        return EstablishmentResult(
            success=success,
            state=verdict.state,
            session_id=verdict.session_id or accept.session_id,
            key=session_key if success else None,
            attempts=verdict.attempts,
            failure_reason=verdict.reason or None,
            rounds=rounds,
            ticket=ticket,
        )

    # -- one protocol round ------------------------------------------------

    def _expect(self, conn: FrameConnection, message_type, peer: str):
        message = conn.recv()
        if isinstance(message, RoundResult):
            raise _RoundAborted(message)
        if isinstance(message, ErrorFrame):
            raise ProtocolError(
                f"peer error {message.code}: {message.detail}"
            )
        if not isinstance(message, message_type):
            raise ProtocolError(
                f"expected {message_type.__name__}, got "
                f"{type(message).__name__}"
            )
        require_sender(message, peer)
        return message

    def _run_round(
        self,
        conn: FrameConnection,
        accept: Accept,
        agreement_config: KeyAgreementConfig,
        grant: SeedGrant,
        rng_seed: int,
        rounds: List[RoundResult],
        tracer: Tracer,
    ) -> Optional[BitSequence]:
        """Play the mobile side of one round; returns the session key
        when this round's confirmation verified, else None."""
        party = AgreementParty(
            self.config.name,
            grant.seed,
            agreement_config,
            rng=child_rng(rng_seed, "net-client", grant.attempt),
            own_sequences_first=True,
        )
        peer = accept.sender
        with tracer.span("net.round", attempt=grant.attempt) as span:
            try:
                with tracer.span("net.ot.announce"):
                    conn.send(party.craft_announce())
                    announce_s = self._expect(conn, OTAnnounce, peer)
                with tracer.span("net.ot.respond"):
                    conn.send(party.craft_response(announce_s))
                    response_s = self._expect(conn, OTResponse, peer)
                with tracer.span("net.ot.ciphertexts"):
                    conn.send(party.craft_ciphertexts(response_s))
                    cipher_s = self._expect(conn, OTCiphertextBatch, peer)
                with tracer.span("net.ot.assemble"):
                    party.receive_ciphertexts(cipher_s)
                    party.build_preliminary_key()
                with tracer.span("net.reconcile"):
                    challenge = party.craft_challenge()
                    conn.send(challenge)
                    confirmation = self._expect(
                        conn, ConfirmationResponse, peer
                    )
                    party.verify_confirmation(confirmation)
                    conn.send(ConfirmAck(
                        ok=True,
                        tag=hmac_digest(
                            party.final_key.to_bytes(),
                            challenge.nonce + b"ack",
                        ),
                    ))
            except _RoundAborted as exc:
                rounds.append(exc.result)
                span.set_attribute("aborted", exc.result.reason)
                return None
            except KeyAgreementFailure as exc:
                # Report the failed verification so the server's round
                # (and its retry policy) resolves promptly.
                span.set_attribute("failure", str(exc))
                conn.send(ConfirmAck(ok=False, tag=b""))
                return None
            span.set_attribute("confirmed", True)
        return party.session_key()
