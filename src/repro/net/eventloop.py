"""A single-threaded ``selectors`` event loop for the network tier.

One thread owns every socket: readiness events from a
:class:`selectors.DefaultSelector` drive per-connection callbacks, a
self-pipe lets other threads (protocol workers, ticket completion
callbacks) schedule work onto the loop, and a timer heap provides
cancellable deadlines (handshake timeouts, verdict budgets, delayed
fault injection).  The front ends built on it —
:class:`repro.net.server.WaveKeyTCPServer` and
:class:`repro.net.proxy.FaultInjectionProxy` — keep thousands of idle
connections at a constant thread count, where the former
thread-per-connection design paid an OS thread per mostly-idle socket.

Threading contract:

* :meth:`EventLoop.register` / :meth:`unregister` / :meth:`call_later`
  are **loop-thread only** — connection state machines run exclusively
  on the loop;
* :meth:`call_soon` is the **thread-safe** entry: it enqueues a
  callback and wakes the loop via the self-pipe;
* callbacks must never block: protocol compute stays on the access
  server's worker pool, socket writes go through bounded outbound
  buffers flushed on writability.

When given a :class:`MetricsRegistry` the loop emits its own health
series: ``net.loop.wakeup_latency_s`` (self-pipe wake -> drain, the
cross-thread handoff cost), ``net.loop.dispatch_lag_s`` (readiness
report -> handler entry within one tick), ``net.loop.ticks`` and
``net.loop.callback_errors``.
"""

from __future__ import annotations

import heapq
import itertools
import os
import selectors
import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.errors import ServiceError
from repro.obs.metrics import MetricsRegistry, wakeup_buckets

#: Re-exported so front ends do not import ``selectors`` themselves.
EVENT_READ = selectors.EVENT_READ
EVENT_WRITE = selectors.EVENT_WRITE


class Deadline:
    """A cancellable timer handle returned by :meth:`EventLoop.call_later`."""

    __slots__ = ("when", "callback", "cancelled")

    def __init__(self, when: float, callback: Callable[[], None]):
        self.when = when
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Selector + self-pipe + timer heap, on one daemon thread."""

    def __init__(
        self,
        *,
        name: str = "wavekey-net-loop",
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.name = name
        self.metrics = metrics
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        self._wake_lock = threading.Lock()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._selector.register(self._wake_r, EVENT_READ, self._drain_wakeups)
        self._pending: deque = deque()
        self._pending_lock = threading.Lock()
        self._wake_stamps: deque = deque()
        self._timers: list = []
        self._timer_seq = itertools.count()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._dead_this_tick: set = set()

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "EventLoop":
        if self._running:
            raise ServiceError("event loop already started")
        self._running = True
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, join_timeout_s: float = 5.0) -> None:
        if not self._running:
            return
        self._running = False
        self.wake()
        if threading.current_thread() is not self._thread:
            self._thread.join(timeout=join_timeout_s)
        try:
            self._selector.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass
        self._selector.close()
        # Invalidate the write end under the wake lock BEFORE closing:
        # late wakers (worker completions, probes) must see -1, never a
        # recycled fd.  Writing the wake byte into whatever socket
        # inherits the fd number would inject 0x00 into that stream.
        with self._wake_lock:
            wake_w, self._wake_w = self._wake_w, -1
        os.close(self._wake_r)
        os.close(wake_w)

    def assert_loop_thread(self) -> None:
        if self._running and threading.current_thread() is not self._thread:
            raise ServiceError(
                "selector state may only be touched from the loop thread; "
                "use call_soon() to get there"
            )

    # -- selector management (loop thread only) ----------------------------

    def register(self, sock, events: int, callback) -> None:
        """Watch ``sock``; ``callback(mask)`` runs on readiness."""
        self.assert_loop_thread()
        self._selector.register(sock, events, callback)
        self._dead_this_tick.discard(sock.fileno())

    def modify(self, sock, events: int, callback) -> None:
        self.assert_loop_thread()
        self._selector.modify(sock, events, callback)

    def unregister(self, sock) -> None:
        self.assert_loop_thread()
        try:
            self._dead_this_tick.add(sock.fileno())
        except (OSError, ValueError):
            pass
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass

    def call_later(
        self, delay_s: float, callback: Callable[[], None]
    ) -> Deadline:
        """Schedule ``callback()`` on the loop after ``delay_s``."""
        self.assert_loop_thread()
        deadline = Deadline(time.monotonic() + max(0.0, delay_s), callback)
        heapq.heappush(
            self._timers, (deadline.when, next(self._timer_seq), deadline)
        )
        return deadline

    # -- cross-thread entry points -----------------------------------------

    def call_soon(self, callback, *args) -> None:
        """Thread-safe: run ``callback(*args)`` on the next loop tick."""
        with self._pending_lock:
            self._pending.append((callback, args))
        self.wake()

    def wake(self) -> None:
        """Interrupt a blocked ``select`` from any thread."""
        self._wake_stamps.append(time.perf_counter())
        # The lock pins the fd across the write: without it a stop()
        # racing this call can close the pipe and let the OS recycle
        # the fd number for a fresh TCP socket, and the wake byte
        # becomes a stray 0x00 in the middle of that connection's
        # stream (observed as frame desync under backend churn).
        with self._wake_lock:
            if self._wake_w < 0:
                return  # loop torn down: nothing left to wake
            try:
                os.write(self._wake_w, b"\x00")
            except (BlockingIOError, InterruptedError):
                pass  # pipe full: a wakeup is already pending

    # -- internals ---------------------------------------------------------

    def _drain_wakeups(self, mask: int) -> None:
        try:
            drained = os.read(self._wake_r, 4096)
        except (BlockingIOError, InterruptedError):
            return
        if self.metrics is not None and drained:
            now = time.perf_counter()
            hist = self.metrics.histogram(
                "net.loop.wakeup_latency_s", bounds=wakeup_buckets()
            )
            for _ in range(min(len(drained), len(self._wake_stamps))):
                hist.observe(now - self._wake_stamps.popleft())
        else:
            for _ in range(len(drained)):
                if self._wake_stamps:
                    self._wake_stamps.popleft()

    def _next_timeout(self) -> Optional[float]:
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return max(0.0, self._timers[0][0] - time.monotonic())

    def _run_callback(self, callback, *args) -> None:
        try:
            callback(*args)
        except Exception as exc:  # noqa: BLE001 — the loop must survive
            if self.metrics is not None:
                self.metrics.counter("net.loop.callback_errors").inc()
            # Last-resort visibility without assuming a logger exists.
            import sys

            print(
                f"[{self.name}] callback error: {exc!r}", file=sys.stderr
            )

    def _run(self) -> None:
        dispatch_hist = (
            self.metrics.histogram(
                "net.loop.dispatch_lag_s", bounds=wakeup_buckets()
            )
            if self.metrics is not None
            else None
        )
        tick_counter = (
            self.metrics.counter("net.loop.ticks")
            if self.metrics is not None
            else None
        )
        while self._running:
            try:
                events = self._selector.select(self._next_timeout())
            except OSError:
                continue  # fd closed under us during shutdown
            if not self._running:
                break
            if tick_counter is not None:
                tick_counter.inc()
            self._dead_this_tick.clear()
            ready_at = time.perf_counter()
            for key, mask in events:
                if key.fd in self._dead_this_tick:
                    continue  # closed by an earlier callback this tick
                if dispatch_hist is not None:
                    dispatch_hist.observe(time.perf_counter() - ready_at)
                self._run_callback(key.data, mask)
            now = time.monotonic()
            while self._timers and self._timers[0][0] <= now:
                _, _, deadline = heapq.heappop(self._timers)
                if not deadline.cancelled:
                    self._run_callback(deadline.callback)
            while True:
                with self._pending_lock:
                    if not self._pending:
                        break
                    callback, args = self._pending.popleft()
                self._run_callback(callback, *args)
