"""Fault-injection TCP proxy: the simulated adversary hooks on a real wire.

:class:`FaultInjectionProxy` sits between a :class:`WaveKeyNetClient`
and a :class:`WaveKeyTCPServer`, relaying frames in both directions.
Because it reads whole frames (not byte streams), faults operate at the
protocol granularity the paper's SV-A/SV-C experiments reason about:

* **tap** — observe every frame (direction, type, payload) without
  modifying it: the passive eavesdropper;
* **drop** — swallow selected frames: the peer's read deadline fires
  and surfaces as :class:`ConnectionTimeout`;
* **corrupt** — flip payload bytes: the receiver raises
  :class:`DecodeError`;
* **delay** — hold frames: announce-phase delays breach the paper's
  ``2 s + tau`` deadline on the server's protocol clock;
* **reorder** — hold one frame and release it after the next: the
  strict alternating exchange rejects it as a :class:`ProtocolError`.

An ``interceptor(direction, frame) -> (frames, delay_s)`` decides what
to forward; the helpers below build the common ones.  Directions are
``"c2s"`` (client-to-server) and ``"s2c"``.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    FrameType,
    frame_to_bytes,
    read_frame,
)

#: interceptor signature: (direction, frame) -> (frames_to_forward, delay_s)
Interceptor = Callable[[str, Frame], Tuple[List[Frame], float]]

#: tap signature: (direction, frame) -> None
Tap = Callable[[str, Frame], None]


def _forward(direction: str, frame: Frame) -> Tuple[List[Frame], float]:
    return [frame], 0.0


def _matches(frame: Frame, types: Optional[Iterable[FrameType]]) -> bool:
    return types is None or frame.type in set(types)


def drop_frames(
    types: Iterable[FrameType] = None, count: int = 1
) -> Interceptor:
    """Swallow the first ``count`` matching frames (any direction)."""
    remaining = [count]

    def interceptor(direction: str, frame: Frame):
        if remaining[0] > 0 and _matches(frame, types):
            remaining[0] -= 1
            return [], 0.0
        return [frame], 0.0

    return interceptor


def corrupt_frames(
    types: Iterable[FrameType] = None, count: int = 1
) -> Interceptor:
    """Flip the first payload byte of ``count`` matching frames.

    For every ``sender``-carrying message byte 0 is the high byte of
    the sender-length prefix, so the flip yields an impossible string
    length and a deterministic :class:`DecodeError` at the receiver.
    """
    remaining = [count]

    def interceptor(direction: str, frame: Frame):
        if remaining[0] > 0 and _matches(frame, types) and frame.payload:
            remaining[0] -= 1
            payload = bytes([frame.payload[0] ^ 0xFF]) + frame.payload[1:]
            return [Frame(frame.type, payload)], 0.0
        return [frame], 0.0

    return interceptor


def delay_frames(
    delay_s: float, types: Iterable[FrameType] = None, count: int = None
) -> Interceptor:
    """Hold matching frames for ``delay_s`` before forwarding them."""
    remaining = [count]

    def interceptor(direction: str, frame: Frame):
        if _matches(frame, types) and (
            remaining[0] is None or remaining[0] > 0
        ):
            if remaining[0] is not None:
                remaining[0] -= 1
            return [frame], delay_s
        return [frame], 0.0

    return interceptor


def reorder_once(types: Iterable[FrameType] = None) -> Interceptor:
    """Hold the first matching frame and emit it *after* the next frame
    in the same direction — a one-shot swap."""
    held: dict = {}
    done = [False]

    def interceptor(direction: str, frame: Frame):
        if done[0]:
            return [frame], 0.0
        if direction in held:
            done[0] = True
            return [frame, held.pop(direction)], 0.0
        if _matches(frame, types):
            held[direction] = frame
            return [], 0.0
        return [frame], 0.0

    return interceptor


class FaultInjectionProxy:
    """A frame-granular TCP relay with pluggable fault injection."""

    def __init__(
        self,
        upstream: Tuple[str, int],
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        *,
        taps: List[Tap] = None,
        interceptor: Interceptor = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.upstream = upstream
        self.taps = list(taps or [])
        self.interceptor = interceptor or _forward
        self.max_frame_bytes = int(max_frame_bytes)
        self._listen_host = listen_host
        self._listen_port = listen_port
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._pumps: list = []
        self._socks: set = set()
        self._lock = threading.Lock()
        self._running = False
        self.address: Optional[Tuple[str, int]] = None
        self.forwarded = 0
        self.dropped = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FaultInjectionProxy":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._listen_host, self._listen_port))
        sock.listen(16)
        self._sock = sock
        self.address = sock.getsockname()[:2]
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="wavekey-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        with self._lock:
            socks = list(self._socks)
            pumps = list(self._pumps)
        for s in socks:
            try:
                s.close()
            except OSError:
                pass
        for pump in pumps:
            pump.join(timeout=5.0)

    def __enter__(self) -> "FaultInjectionProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- relaying ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client_sock, _ = self._sock.accept()
            except OSError:
                return
            try:
                server_sock = socket.create_connection(
                    self.upstream, timeout=5.0
                )
            except OSError:
                client_sock.close()
                continue
            server_sock.settimeout(None)
            with self._lock:
                self._socks.update((client_sock, server_sock))
            for direction, src, dst in (
                ("c2s", client_sock, server_sock),
                ("s2c", server_sock, client_sock),
            ):
                pump = threading.Thread(
                    target=self._pump,
                    args=(direction, src, dst),
                    name=f"wavekey-proxy-{direction}",
                    daemon=True,
                )
                with self._lock:
                    self._pumps.append(pump)
                pump.start()

    def _recv_exactly(self, sock: socket.socket):
        def recv_exactly(n: int) -> bytes:
            chunks = []
            remaining = n
            while remaining:
                chunk = sock.recv(remaining)
                if not chunk:
                    raise ConnectionError("eof")
                chunks.append(chunk)
                remaining -= len(chunk)
            return b"".join(chunks)

        return recv_exactly

    def _pump(
        self, direction: str, src: socket.socket, dst: socket.socket
    ) -> None:
        recv_exactly = self._recv_exactly(src)
        try:
            while True:
                try:
                    frame = read_frame(recv_exactly, self.max_frame_bytes)
                except (TransportError, ConnectionError, OSError):
                    break
                for tap in self.taps:
                    tap(direction, frame)
                frames, delay_s = self.interceptor(direction, frame)
                if delay_s > 0:
                    time.sleep(delay_s)
                if not frames:
                    self.dropped += 1
                    continue
                try:
                    for out in frames:
                        dst.sendall(frame_to_bytes(out))
                        self.forwarded += 1
                except OSError:
                    break
        finally:
            # Half-close propagation: when one side goes quiet, tear the
            # pair down so the peer's read fails fast instead of hanging.
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
            with self._lock:
                self._socks.discard(src)
                self._socks.discard(dst)
