"""Fault-injection TCP proxy: the simulated adversary hooks on a real wire.

:class:`FaultInjectionProxy` sits between a :class:`WaveKeyNetClient`
and a :class:`WaveKeyTCPServer`, relaying frames in both directions.
Because it reads whole frames (not byte streams), faults operate at the
protocol granularity the paper's SV-A/SV-C experiments reason about:

* **tap** — observe every frame (direction, type, payload) without
  modifying it: the passive eavesdropper;
* **drop** — swallow selected frames: the peer's read deadline fires
  and surfaces as :class:`ConnectionTimeout`;
* **corrupt** — flip payload bytes: the receiver raises
  :class:`DecodeError`;
* **delay** — hold frames: announce-phase delays breach the paper's
  ``2 s + tau`` deadline on the server's protocol clock;
* **reorder** — hold one frame and release it after the next: the
  strict alternating exchange rejects it as a :class:`ProtocolError`.

An ``interceptor(direction, frame) -> (frames, delay_s)`` decides what
to forward; the helpers below build the common ones.  Directions are
``"c2s"`` (client-to-server) and ``"s2c"``.

The proxy runs on one :class:`repro.net.eventloop.EventLoop` thread:
non-blocking upstream connects, :class:`FrameAssembler` readers, and
:class:`OutboundBuffer` writers per direction.  A delayed frame
becomes a loop timer that *pauses reads in that direction* until it is
released, so delays preserve frame order exactly like the old blocking
relay thread did — and an EOF never overtakes frames still held by a
timer or an unflushed outbound buffer.
"""

from __future__ import annotations

import contextlib
import socket
import threading
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    FrameAssembler,
    FrameType,
    frame_to_bytes,
)
from repro.net.connection import SEND_CLOSED, OutboundBuffer
from repro.net.eventloop import EVENT_READ, EVENT_WRITE, EventLoop

#: interceptor signature: (direction, frame) -> (frames_to_forward, delay_s)
Interceptor = Callable[[str, Frame], Tuple[List[Frame], float]]

#: tap signature: (direction, frame) -> None
Tap = Callable[[str, Frame], None]


def _forward(direction: str, frame: Frame) -> Tuple[List[Frame], float]:
    return [frame], 0.0


def _matches(frame: Frame, types: Optional[Iterable[FrameType]]) -> bool:
    return types is None or frame.type in set(types)


def drop_frames(
    types: Iterable[FrameType] = None, count: int = 1
) -> Interceptor:
    """Swallow the first ``count`` matching frames (any direction)."""
    remaining = [count]

    def interceptor(direction: str, frame: Frame):
        if remaining[0] > 0 and _matches(frame, types):
            remaining[0] -= 1
            return [], 0.0
        return [frame], 0.0

    return interceptor


def corrupt_frames(
    types: Iterable[FrameType] = None, count: int = 1
) -> Interceptor:
    """Flip the first payload byte of ``count`` matching frames.

    For every ``sender``-carrying message byte 0 is the high byte of
    the sender-length prefix, so the flip yields an impossible string
    length and a deterministic :class:`DecodeError` at the receiver.
    """
    remaining = [count]

    def interceptor(direction: str, frame: Frame):
        if remaining[0] > 0 and _matches(frame, types) and frame.payload:
            remaining[0] -= 1
            payload = bytes([frame.payload[0] ^ 0xFF]) + frame.payload[1:]
            return [Frame(frame.type, payload)], 0.0
        return [frame], 0.0

    return interceptor


def delay_frames(
    delay_s: float, types: Iterable[FrameType] = None, count: int = None
) -> Interceptor:
    """Hold matching frames for ``delay_s`` before forwarding them."""
    remaining = [count]

    def interceptor(direction: str, frame: Frame):
        if _matches(frame, types) and (
            remaining[0] is None or remaining[0] > 0
        ):
            if remaining[0] is not None:
                remaining[0] -= 1
            return [frame], delay_s
        return [frame], 0.0

    return interceptor


def reorder_once(types: Iterable[FrameType] = None) -> Interceptor:
    """Hold the first matching frame and emit it *after* the next frame
    in the same direction — a one-shot swap."""
    held: dict = {}
    done = [False]

    def interceptor(direction: str, frame: Frame):
        if done[0]:
            return [frame], 0.0
        if direction in held:
            done[0] = True
            return [frame, held.pop(direction)], 0.0
        if _matches(frame, types):
            held[direction] = frame
            return [], 0.0
        return [frame], 0.0

    return interceptor


class _Flow:
    """One relay direction: frames assembled from ``src``, forwarded
    into ``dst``'s outbound buffer."""

    __slots__ = (
        "direction", "src", "dst", "assembler", "outbound", "paused", "eof",
    )

    def __init__(self, direction, src, dst, max_frame_bytes):
        self.direction = direction
        self.src = src
        self.dst = dst
        self.assembler = FrameAssembler(max_frame_bytes)
        # The proxy never sheds — frames already read must be relayed,
        # so forwards go in with force=True and the bound is nominal.
        self.outbound = OutboundBuffer()
        self.paused = False   # a delayed frame holds this direction
        self.eof = False


class _Link:
    """One proxied client<->server connection pair (loop-thread only)."""

    __slots__ = (
        "proxy", "client_sock", "server_sock", "flows", "closing",
        "closed", "pending_timers",
    )

    def __init__(self, proxy, client_sock, server_sock):
        self.proxy = proxy
        self.client_sock = client_sock
        self.server_sock = server_sock
        self.flows = {
            "c2s": _Flow(
                "c2s", client_sock, server_sock, proxy.max_frame_bytes
            ),
            "s2c": _Flow(
                "s2c", server_sock, client_sock, proxy.max_frame_bytes
            ),
        }
        self.closing = False
        self.closed = False
        self.pending_timers = 0

    def flow_reading(self, sock) -> "_Flow":
        return self.flows["c2s" if sock is self.client_sock else "s2c"]

    def flow_writing(self, sock) -> "_Flow":
        return self.flows["s2c" if sock is self.client_sock else "c2s"]


class FaultInjectionProxy:
    """A frame-granular TCP relay with pluggable fault injection.

    Listener, relays, timers, and fault delays all run on a single
    event-loop thread regardless of connection count.
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        *,
        taps: List[Tap] = None,
        interceptor: Interceptor = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.upstream = upstream
        self.taps = list(taps or [])
        self.interceptor = interceptor or _forward
        self.max_frame_bytes = int(max_frame_bytes)
        self._listen_host = listen_host
        self._listen_port = listen_port
        self._sock: Optional[socket.socket] = None
        self._links: set = set()  # loop-thread only
        self._running = False
        self.loop: Optional[EventLoop] = None
        self.address: Optional[Tuple[str, int]] = None
        self.forwarded = 0
        self.dropped = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FaultInjectionProxy":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._listen_host, self._listen_port))
        sock.listen(128)
        sock.setblocking(False)
        self._sock = sock
        self.address = sock.getsockname()[:2]
        self._running = True
        self.loop = EventLoop(name="wavekey-proxy-loop").start()
        self.loop.call_soon(
            self.loop.register, sock, EVENT_READ, self._on_listener_ready
        )
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        done = threading.Event()
        self.loop.call_soon(self._shutdown_on_loop, done)
        done.wait(timeout=5.0)
        self.loop.stop()

    def _shutdown_on_loop(self, done: threading.Event) -> None:
        try:
            self.loop.unregister(self._sock)
            self._sock.close()
            for link in list(self._links):
                self._close_link(link)
        finally:
            done.set()

    def __enter__(self) -> "FaultInjectionProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- accept / upstream dial (loop thread) ------------------------------

    def _on_listener_ready(self, mask: int) -> None:
        while True:
            try:
                client_sock, _ = self._sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed by stop()
            client_sock.setblocking(False)
            server_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server_sock.setblocking(False)
            err = server_sock.connect_ex(self.upstream)
            if err not in (0, 115, 36, 10035):  # EINPROGRESS variants
                client_sock.close()
                server_sock.close()
                continue
            link = _Link(self, client_sock, server_sock)
            self._links.add(link)
            # Until the upstream connect completes, the kernel queues
            # whatever the client sends; relaying starts once writable
            # reports the dial verdict.
            self.loop.register(
                server_sock, EVENT_WRITE,
                lambda m, lk=link: self._on_upstream_dialed(lk),
            )

    def _on_upstream_dialed(self, link: _Link) -> None:
        if link.closed:
            return
        err = link.server_sock.getsockopt(
            socket.SOL_SOCKET, socket.SO_ERROR
        )
        if err != 0:
            self.loop.unregister(link.server_sock)
            for sock in (link.client_sock, link.server_sock):
                with contextlib.suppress(OSError):
                    sock.close()
            self._links.discard(link)
            return
        for sock in (link.client_sock, link.server_sock):
            with contextlib.suppress(OSError):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.loop.unregister(link.server_sock)
        self.loop.register(
            link.client_sock, EVENT_READ,
            lambda m, lk=link, s=link.client_sock: self._on_sock_ready(
                lk, s, m
            ),
        )
        self.loop.register(
            link.server_sock, EVENT_READ,
            lambda m, lk=link, s=link.server_sock: self._on_sock_ready(
                lk, s, m
            ),
        )

    def _update_interest(self, link: _Link, sock) -> None:
        if link.closed:
            return
        reading = link.flow_reading(sock)
        writing = link.flow_writing(sock)
        events = 0
        if not (reading.paused or reading.eof or link.closing):
            events |= EVENT_READ
        if writing.outbound.pending > 0:
            events |= EVENT_WRITE
        callback = (
            lambda m, lk=link, s=sock: self._on_sock_ready(lk, s, m)
        )
        if events:
            try:
                self.loop.modify(sock, events, callback)
            except KeyError:
                self.loop.register(sock, events, callback)
        else:
            self.loop.unregister(sock)

    # -- relaying (loop thread) --------------------------------------------

    def _on_sock_ready(self, link: _Link, sock, mask: int) -> None:
        if link.closed:
            return
        if mask & EVENT_WRITE:
            flow = link.flow_writing(sock)
            try:
                flow.outbound.flush(sock)
            except OSError:
                self._teardown(link)
                return
            self._update_interest(link, sock)
            self._maybe_finish_close(link)
            if link.closed:
                return
        if mask & EVENT_READ:
            self._service_reads(link, link.flow_reading(sock))

    def _service_reads(self, link: _Link, flow: _Flow) -> None:
        for _ in range(16):
            if flow.paused or link.closing:
                break
            try:
                n = flow.assembler.read_into(flow.src)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._teardown(link)
                return
            if n == 0:
                flow.eof = True
                break
        self._drain(link, flow)

    def _drain(self, link: _Link, flow: _Flow) -> None:
        """Push assembled frames through taps + interceptor until the
        buffer runs dry, a delay pauses the direction, or the link
        tears down."""
        while not link.closed and not flow.paused:
            try:
                frame = flow.assembler.next_frame()
            except TransportError:
                # The relayed byte stream itself is malformed; nothing
                # sane can be forwarded past this point.
                self._teardown(link)
                return
            if frame is None:
                break
            for tap in self.taps:
                tap(flow.direction, frame)
            frames, delay_s = self.interceptor(flow.direction, frame)
            if not frames:
                self.dropped += 1
                continue
            if delay_s > 0:
                # Hold this direction: later frames queue behind the
                # delayed one, preserving order exactly like the old
                # blocking relay thread.
                flow.paused = True
                link.pending_timers += 1
                self.loop.call_later(
                    delay_s,
                    lambda lk=link, f=flow, fr=tuple(frames): (
                        self._release_delayed(lk, f, fr)
                    ),
                )
                break
            self._forward_frames(link, flow, frames)
        if not link.closed:
            self._update_interest(link, flow.src)
            if flow.eof and not flow.paused:
                link.closing = True
                self._update_interest(link, flow.dst)
            self._maybe_finish_close(link)

    def _release_delayed(self, link: _Link, flow: _Flow, frames) -> None:
        link.pending_timers -= 1
        if link.closed:
            return
        flow.paused = False
        self._forward_frames(link, flow, frames)
        # Frames buffered while paused (or the EOF seen behind them)
        # resume through the normal drain path.
        self._drain(link, flow)

    def _forward_frames(self, link: _Link, flow: _Flow, frames) -> None:
        for frame in frames:
            if flow.outbound.append(
                frame_to_bytes(frame), force=True
            ) == SEND_CLOSED:
                return
            self.forwarded += 1
        self._update_interest(link, flow.dst)

    # -- teardown (loop thread) --------------------------------------------

    def _maybe_finish_close(self, link: _Link) -> None:
        if not link.closing or link.closed:
            return
        if link.pending_timers > 0:
            return
        if any(f.outbound.pending > 0 for f in link.flows.values()):
            return
        self._close_link(link)

    def _teardown(self, link: _Link) -> None:
        """Hard stop: the relayed stream broke mid-frame."""
        self._close_link(link)

    def _close_link(self, link: _Link) -> None:
        if link.closed:
            return
        link.closed = True
        for flow in link.flows.values():
            flow.outbound.close()
        for sock in (link.client_sock, link.server_sock):
            self.loop.unregister(sock)
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()
        self._links.discard(link)
