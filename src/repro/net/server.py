"""Threaded TCP front end over :class:`WaveKeyAccessServer`.

:class:`WaveKeyTCPServer` puts the access-control service on a real
socket: an accept loop hands each client connection to its own handler
thread, the handler performs the hello/accept handshake and submits an
:class:`AccessRequest` into the *existing* admission queue, and the
session's key agreement runs over the wire via :class:`_NetAgreement`
— the per-session ``agreement_fn`` that replaces the in-process
two-party simulation with the server half of the Fig. 4 exchange.

Operational mapping onto the wire:

* **load shedding** — a shed admission becomes an ``ErrorFrame`` with
  code ``busy`` carrying the queue depth, and the connection closes;
* **deadlines** — socket reads carry per-connection timeouts, and all
  network wait time advances the session's :class:`ProtocolClock`, so
  a slow or stalled client breaches the paper's ``2 s + tau`` announce
  deadline exactly as a slow reader link would;
* **sender validation** — the hello fixes the peer identity for the
  connection; every subsequent protocol message claiming a different
  ``sender`` is rejected (anti-spoofing);
* **observability** — handler and agreement stages emit spans under
  the session's trace, and the shared registry collects wire-level
  frame/byte counters next to the service metrics.
"""

from __future__ import annotations

import contextlib
import socket
import threading
from typing import Optional, Tuple

from repro.crypto.hashes import hmac_verify
from repro.errors import (
    DeadlineExceeded,
    KeyAgreementFailure,
    ProtocolError,
    ServiceError,
    TransportError,
)
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Accept,
    ConfirmAck,
    ErrorFrame,
    Hello,
    RoundResult,
    SeedGrant,
    Verdict,
)
from repro.net.connection import FrameConnection
from repro.protocol.agreement import AgreementParty, KeyAgreementOutcome
from repro.protocol.messages import (
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    ReconciliationChallenge,
    require_sender,
)
from repro.obs.tracing import resolve_tracer
from repro.service.server import WaveKeyAccessServer
from repro.service.sessions import AccessRequest, SessionState
from repro.utils.rng import child_rng


class _NetAgreement:
    """Server half of the Fig. 4 exchange over one client connection.

    Instances are per-connection and passed as the session's
    ``agreement_fn``; the access server calls them once per attempt
    with the freshly encoded seeds.  Each call runs one wire round:
    seed grant, the three OT messages in both directions, the
    reconciliation challenge, the HMAC confirmation, and the mutual
    confirmation ack.
    """

    #: Network waits must not serialize other sessions' compute: the
    #: access server skips its compute lock for this agreement_fn and
    #: lets real crafting time (including contention) bill the clock.
    hold_compute_lock = False

    def __init__(self, conn: FrameConnection, peer: str, server_name: str):
        self.conn = conn
        self.peer = peer
        self.server_name = server_name
        self.attempt = 0

    def _expect(self, message_type):
        message = self.conn.recv()
        if isinstance(message, ErrorFrame):
            raise ProtocolError(
                f"peer error {message.code}: {message.detail}"
            )
        if not isinstance(message, message_type):
            raise ProtocolError(
                f"expected {message_type.__name__}, got "
                f"{type(message).__name__}"
            )
        if hasattr(message, "sender"):
            require_sender(message, self.peer)
        return message

    def __call__(
        self, seed_m, seed_r, config, transport=None, clock=None, rng=None
    ) -> KeyAgreementOutcome:
        self.attempt += 1
        conn = self.conn
        tracer = resolve_tracer(None)
        mismatch = seed_m.hamming_distance(seed_r)
        party = AgreementParty(
            self.server_name,
            seed_r,
            config,
            rng=child_rng(rng, "party"),
            own_sequences_first=False,
        )

        def fail(reason: str) -> KeyAgreementOutcome:
            with contextlib.suppress(TransportError):
                conn.send(RoundResult(success=False, reason=reason))
            return KeyAgreementOutcome(
                success=False,
                mobile_key=None,
                server_key=None,
                elapsed_s=clock.now,
                failure_reason=reason,
                seed_mismatch_bits=mismatch,
            )

        with tracer.span(
            "net.agreement",
            attempt=self.attempt,
            peer=self.peer,
            seed_mismatch_bits=mismatch,
        ):
            try:
                # The device's simulated sensing, granted over the wire.
                with tracer.span("net.seed_grant"):
                    with clock.measure():
                        conn.send(SeedGrant(self.attempt, seed_m))

                # M_A both ways; arrival deadline-checked (SIV-D.2).
                # clock.measure() wall-clocks the socket wait, so real
                # network latency counts against the tau budget.
                with tracer.span("net.ot.announce"):
                    with clock.measure():
                        announce_c = self._expect(OTAnnounce)
                    clock.check_deadline(
                        config.announce_deadline_s, f"M_A ({self.peer})"
                    )
                    with clock.measure():
                        conn.send(party.craft_announce())

                # M_B both ways.
                with tracer.span("net.ot.respond"):
                    with clock.measure():
                        response_c = self._expect(OTResponse)
                        conn.send(party.craft_response(announce_c))

                # M_E both ways.
                with tracer.span("net.ot.ciphertexts"):
                    with clock.measure():
                        cipher_c = self._expect(OTCiphertextBatch)
                        conn.send(party.craft_ciphertexts(response_c))

                with tracer.span("net.ot.assemble"):
                    with clock.measure():
                        party.receive_ciphertexts(cipher_c)
                        party.build_preliminary_key()

                # Reconciliation + mutual confirmation.
                with tracer.span("net.reconcile"):
                    with clock.measure():
                        challenge = self._expect(ReconciliationChallenge)
                        confirmation = party.answer_challenge(challenge)
                        conn.send(confirmation)
                        ack = self._expect(ConfirmAck)
                        if not ack.ok:
                            raise KeyAgreementFailure(
                                "client reported HMAC confirmation failure"
                            )
                        if not hmac_verify(
                            party.final_key.to_bytes(),
                            challenge.nonce + b"ack",
                            ack.tag,
                        ):
                            raise KeyAgreementFailure(
                                "confirmation ack HMAC mismatch: peers "
                                "hold different keys"
                            )
            except DeadlineExceeded as exc:
                return fail(f"deadline: {exc}")
            except KeyAgreementFailure as exc:
                return fail(f"agreement: {exc}")
            except TransportError as exc:
                return fail(f"transport: {exc}")
            except ProtocolError as exc:
                return fail(f"protocol: {exc}")

        try:
            conn.send(RoundResult(success=True))
        except TransportError as exc:
            # The keys agree but the client never heard it; report the
            # round as failed so server and client views stay consistent.
            return KeyAgreementOutcome(
                success=False,
                mobile_key=None,
                server_key=None,
                elapsed_s=clock.now,
                failure_reason=f"transport: {exc}",
                seed_mismatch_bits=mismatch,
            )
        key = party.session_key()
        return KeyAgreementOutcome(
            success=True,
            mobile_key=key,
            server_key=key,
            elapsed_s=clock.now,
            seed_mismatch_bits=mismatch,
        )


class WaveKeyTCPServer:
    """Accept loop + per-connection handlers over an access server."""

    def __init__(
        self,
        access_server: WaveKeyAccessServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "server",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        read_timeout_s: float = 10.0,
        handshake_timeout_s: float = 5.0,
        verdict_grace_s: float = 10.0,
    ):
        self.access_server = access_server
        self.name = name
        self.max_frame_bytes = int(max_frame_bytes)
        self.read_timeout_s = float(read_timeout_s)
        self.handshake_timeout_s = float(handshake_timeout_s)
        self.verdict_grace_s = float(verdict_grace_s)
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: list = []
        self._conns: set = set()
        self._lock = threading.Lock()
        self._running = False
        self.sessions_served = 0
        self.address: Optional[Tuple[str, int]] = None

    @property
    def metrics(self):
        return self.access_server.metrics

    @property
    def events(self):
        return self.access_server.events

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WaveKeyTCPServer":
        if self._running:
            raise ServiceError("TCP server already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        self._sock = sock
        self.address = sock.getsockname()[:2]
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="wavekey-net-accept", daemon=True
        )
        self._accept_thread.start()
        self.events.emit(
            "net_listening", host=self.address[0], port=self.address[1]
        )
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        with self._lock:
            conns = list(self._conns)
            handlers = list(self._handlers)
        for conn in conns:
            conn.close()
        for handler in handlers:
            handler.join(timeout=5.0)
        self.events.emit("net_stopped", sessions_served=self.sessions_served)

    def __enter__(self) -> "WaveKeyTCPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling -----------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client_sock, addr = self._sock.accept()
            except OSError:
                return  # listener closed by stop()
            handler = threading.Thread(
                target=self._handle,
                args=(client_sock, addr),
                name=f"wavekey-net-{addr[0]}:{addr[1]}",
                daemon=True,
            )
            with self._lock:
                self._handlers.append(handler)
                self._handlers = [
                    t for t in self._handlers if t.is_alive() or t is handler
                ]
            handler.start()

    def _handle(self, client_sock: socket.socket, addr) -> None:
        conn = FrameConnection(
            client_sock,
            max_frame_bytes=self.max_frame_bytes,
            read_timeout_s=self.read_timeout_s,
            metrics=self.metrics,
            endpoint="server",
        )
        with self._lock:
            self._conns.add(conn)
        try:
            self._converse(conn, addr)
        except TransportError as exc:
            self.metrics.counter(
                "net.server.transport_errors"
            ).inc()
            self.events.emit(
                "net_transport_error", peer=f"{addr[0]}:{addr[1]}",
                error=str(exc),
            )
        except Exception as exc:  # noqa: BLE001 — never kill the handler
            self.events.emit(
                "net_handler_error", peer=f"{addr[0]}:{addr[1]}",
                error=repr(exc),
            )
        finally:
            with self._lock:
                self._conns.discard(conn)
            conn.close()

    def _converse(self, conn: FrameConnection, addr) -> None:
        hello = conn.recv(timeout_s=self.handshake_timeout_s)
        if not isinstance(hello, Hello):
            conn.send(ErrorFrame(
                "protocol",
                f"expected HELLO, got {type(hello).__name__}",
            ))
            return
        if hello.version != PROTOCOL_VERSION:
            conn.send(ErrorFrame(
                "version",
                f"server speaks protocol {PROTOCOL_VERSION}, "
                f"client sent {hello.version}",
            ))
            return
        if not hello.sender or hello.sender == self.name:
            conn.send(ErrorFrame(
                "identity", f"invalid client identity {hello.sender!r}"
            ))
            return

        agreement = _NetAgreement(
            conn, peer=hello.sender, server_name=self.name
        )
        request = AccessRequest(
            rng_seed=hello.rng_seed,
            dynamic=hello.dynamic,
            agreement_fn=agreement,
        )
        try:
            ticket = self.access_server.submit(request)
        except ServiceError as exc:
            conn.send(ErrorFrame("unavailable", str(exc)))
            return

        if ticket.done():
            record = ticket.result(timeout=0.1)
            if record.state is SessionState.SHED:
                # Structured load shedding, mapped to a wire error frame.
                rejection = record.rejection
                conn.send(ErrorFrame(
                    "busy",
                    f"{rejection.code}: queue "
                    f"{rejection.queue_depth}/{rejection.queue_capacity}",
                ))
                self.metrics.counter("net.server.shed").inc()
                return

        config = self.access_server.agreement_config
        conn.send(Accept(
            sender=self.name,
            session_id=request.session_id,
            key_length_bits=config.key_length_bits,
            eta=config.eta,
        ))

        budget = (
            self.access_server.config.session_deadline_s
            + self.verdict_grace_s
        )
        try:
            record = ticket.result(timeout=budget)
        except ServiceError as exc:
            conn.send(ErrorFrame("timeout", str(exc)))
            return
        # Count before sending: a client acting on the verdict must
        # never observe a stale sessions_served.
        with self._lock:
            self.sessions_served += 1
        self.metrics.counter("net.server.sessions").inc()
        conn.send(Verdict(
            state=record.state.value,
            attempts=record.attempts,
            reason=record.failure_reason or "",
            session_id=record.session_id,
        ))
