"""TCP front ends over :class:`WaveKeyAccessServer`.

Two servers speak the same wire protocol:

* :class:`WaveKeyTCPServer` — the default **event-loop** front end: a
  single ``selectors`` thread owns every socket, per-connection state
  machines (handshake -> request -> agreement rounds -> verdict) are
  driven by readiness events, and the only per-session threads are the
  access server's existing protocol workers.  Thousands of idle
  connections cost file descriptors, not OS threads.
* :class:`ThreadedWaveKeyTCPServer` — the original thread-per-connection
  design, kept as the latency baseline for the scaling benchmarks and
  behind ``repro serve --no-event-loop``.

The event-loop data path:

* **reads** — the loop ``recv_into``\\ s each readable socket into that
  connection's reusable :class:`FrameAssembler` buffer and decodes
  complete frames in place (no per-chunk allocations, no joins);
* **compute offload** — decoded protocol messages are queued to the
  session's worker channel; the access server's worker runs the same
  :class:`_NetAgreement` exchange as before, blocking on the in-memory
  channel instead of the socket, and its sends append encoded bytes to
  the connection's bounded :class:`OutboundBuffer` and wake the loop
  through the self-pipe;
* **writes** — the loop flushes outbound buffers on writability;
  partial writes keep their ``memoryview`` offset.  A peer that stops
  reading hits the buffer bound and is shed with an ``overloaded``
  error frame (``net.server.backpressure_shed``);
* **verdicts** — session completion fires a ticket done-callback that
  hops onto the loop and flushes the terminal verdict, so no thread
  ever parks in ``ticket.result``;
* **deadlines** — loop timers enforce the hello deadline
  (``net.server.handshake_timeouts``) and the verdict budget; mid-round
  read deadlines ride the worker channel's bounded ``get``.

Operational mapping onto the wire (both servers):

* **load shedding** — a shed admission becomes an ``ErrorFrame`` with
  code ``busy`` carrying the queue depth, and the connection closes;
* **deadlines** — network wait time advances the session's
  :class:`ProtocolClock`, so a slow or stalled client breaches the
  paper's ``2 s + tau`` announce deadline exactly as a slow reader
  link would;
* **sender validation** — the hello fixes the peer identity for the
  connection; every subsequent protocol message claiming a different
  ``sender`` is rejected (anti-spoofing);
* **observability** — wire-level frame/byte counters, loop health
  series (``net.loop.*``), and a ``net.conn.open`` gauge share the
  access server's registry.
"""

from __future__ import annotations

import contextlib
import json
import queue
import socket
import struct
import threading
import time
from typing import Optional, Tuple

from repro.access.channel import ServerAccessChannel, default_op_handler
from repro.access.records import derive_resume_secret, verify_revocation_tag
from repro.access.store import KeyStore
from repro.crypto.hashes import hmac_verify
from repro.crypto.numbers import WAVEKEY_GROUP_512
from repro.errors import (
    AccessError,
    ConnectionClosed,
    ConnectionTimeout,
    DeadlineExceeded,
    GroupMismatch,
    KeyAgreementFailure,
    ProtocolError,
    RecordRejected,
    ServiceError,
    TicketError,
    TicketUnknown,
    TransportError,
)
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Accept,
    ConfirmAck,
    ErrorFrame,
    FrameAssembler,
    Hello,
    RecordFrame,
    ReplDigest,
    ReplPull,
    ReplPush,
    ResumeRequest,
    RevokeNotice,
    RoundResult,
    SeedGrant,
    StatsRequest,
    StatsResponse,
    TelemetryRequest,
    TelemetryResponse,
    TicketGrant,
    Verdict,
    decode_payload,
    encode_message,
    frame_to_bytes,
)
from repro.net.connection import (
    SEND_CLOSED,
    SEND_OK,
    SEND_OVERFLOW,
    FrameConnection,
    OutboundBuffer,
)
from repro.net.eventloop import EVENT_READ, EVENT_WRITE, EventLoop
from repro.obs.metrics import byte_buckets
from repro.obs.tracing import parent_from_context, resolve_tracer
from repro.protocol.agreement import AgreementParty, KeyAgreementOutcome
from repro.protocol.messages import (
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    ReconciliationChallenge,
    require_sender,
)
from repro.service.server import WaveKeyAccessServer
from repro.service.sessions import AccessRequest, SessionState
from repro.utils.rng import child_rng

_UNSET = object()
_FRAME_HEADER_BYTES = struct.calcsize("!IB")


def issue_ticket_grant(front_end, record, peer: str) -> Optional[TicketGrant]:
    """Grant a resumption ticket for one successful agreement.

    Shared by both front ends: when the session ended ``ESTABLISHED``
    with a key on the record, derive the resumption secret
    (:func:`derive_resume_secret` — the agreed key itself is never
    stored), register it in the front end's :class:`KeyStore`, and
    build the :class:`TicketGrant` to send ahead of the verdict.
    Returns ``None`` for any non-resumable outcome.
    """
    key = getattr(record, "key", None)
    if record.state is not SessionState.ESTABLISHED or key is None:
        return None
    ticket = front_end.key_store.issue(
        derive_resume_secret(key.to_bytes()),
        peer=peer,
        metadata={"session_id": record.session_id},
    )
    front_end.metrics.counter("access.grants").inc()
    front_end.events.emit(
        "access_ticket_granted", peer=peer, ticket_id=ticket.ticket_id,
        lifetime_s=ticket.lifetime_s,
    )
    return TicketGrant(
        ticket_id=ticket.ticket_id,
        expires_at=time.time() + ticket.lifetime_s,
        lifetime_s=ticket.lifetime_s,
    )


def answer_revocation(front_end, notice: RevokeNotice):
    """Decide one :class:`RevokeNotice`; returns the reply message.

    Only a holder of the ticket's revocation key (derived from the
    agreed key) can revoke; the reply is a ``RoundResult`` ack on
    success and a typed :class:`ErrorFrame` otherwise.
    """
    metrics = front_end.metrics
    ticket = front_end.key_store.peek(notice.ticket_id)
    if ticket is None:
        metrics.counter(
            "access.revocations", labels={"outcome": "unknown"}
        ).inc()
        return ErrorFrame(
            "ticket_unknown", f"no live ticket {notice.ticket_id}"
        )
    if not verify_revocation_tag(
        ticket.resume_secret, ticket.ticket_id, notice.tag
    ):
        metrics.counter(
            "access.revocations", labels={"outcome": "bad_tag"}
        ).inc()
        front_end.events.emit(
            "access_revoke_rejected", ticket_id=notice.ticket_id,
            reason="bad_tag",
        )
        return ErrorFrame(
            "revoke_auth",
            "revocation tag mismatch: peer does not hold the ticket key",
        )
    front_end.key_store.revoke(notice.ticket_id)
    metrics.counter("access.revocations", labels={"outcome": "ok"}).inc()
    front_end.events.emit("access_revoked", ticket_id=notice.ticket_id)
    return RoundResult(success=True, reason="revoked")


def answer_replication(front_end, message):
    """Decide one ``REPL_*`` first-frame; returns the reply message.

    Shared by both front ends: delegates to the attached
    :class:`~repro.replica.replicator.Replicator` (non-blocking), or
    refuses with a typed ``replication_disabled`` error so a
    misdirected peer learns immediately rather than timing out.
    """
    replicator = getattr(front_end, "replicator", None)
    if replicator is None:
        front_end.metrics.counter(
            "replica.requests", labels={"outcome": "disabled"}
        ).inc()
        return ErrorFrame(
            "replication_disabled",
            f"backend {front_end.name} does not replicate ticket state",
        )
    return replicator.handle(message)


def backend_stats_response(front_end) -> StatsResponse:
    """The wire stats document for one backend front end.

    Answered in place of an :class:`Accept` when a peer's first frame
    is a :class:`StatsRequest` — the cluster gateway's health probe and
    metrics scrape in one round trip.  Carries the front end's identity
    and session count, the access server's live admission-queue
    pressure, and a full metrics-registry snapshot for fleet merging.
    """
    access = front_end.access_server
    depth, capacity = access.queue_state()
    document = {
        "role": "backend",
        "name": front_end.name,
        "sessions_served": front_end.sessions_served,
        "queue_depth": depth,
        "queue_capacity": capacity,
        "snapshot": access.metrics.snapshot(),
    }
    return StatsResponse(payload_json=json.dumps(document, default=str))


def backend_telemetry_response(
    front_end, drain: bool = False
) -> TelemetryResponse:
    """The wire telemetry document for one backend front end.

    Answered in place of an :class:`Accept` when a peer's first frame
    is a :class:`TelemetryRequest` — the distributed-trace scrape.
    Flushes the front end's :class:`~repro.obs.collect.TelemetryBuffer`
    (finished spans + recent events, stamped with the service identity)
    and serializes its document; ``drain`` clears the buffer so a
    periodic scraper sees each span exactly once.  Front ends without a
    buffer answer an empty document so scrapers need no special-casing.
    """
    telemetry = front_end.telemetry
    if telemetry is None:
        document = {
            "schema": "repro.telemetry/1",
            "service": front_end.name,
            "spans": [],
            "events": [],
            "dropped_spans": 0,
            "dropped_events": 0,
        }
    else:
        telemetry.flush()
        document = telemetry.document(drain=drain)
    return TelemetryResponse(
        payload_json=json.dumps(document, default=str)
    )


class _NetAgreement:
    """Server half of the Fig. 4 exchange over one client connection.

    Instances are per-connection and passed as the session's
    ``agreement_fn``; the access server calls them once per attempt
    with the freshly encoded seeds.  Each call runs one wire round:
    seed grant, the three OT messages in both directions, the
    reconciliation challenge, the HMAC confirmation, and the mutual
    confirmation ack.  ``conn`` is anything with the
    :class:`FrameConnection` send/recv contract — the real socket
    wrapper (threaded server) or a :class:`_WorkerChannel` bridging to
    the event loop.
    """

    #: Network waits must not serialize other sessions' compute: the
    #: access server skips its compute lock for this agreement_fn and
    #: lets real crafting time (including contention) bill the clock.
    hold_compute_lock = False

    def __init__(self, conn, peer: str, server_name: str, pool=None):
        self.conn = conn
        self.peer = peer
        self.server_name = server_name
        self.pool = pool
        self.attempt = 0

    def _expect(self, message_type):
        message = self.conn.recv()
        if isinstance(message, ErrorFrame):
            raise ProtocolError(
                f"peer error {message.code}: {message.detail}"
            )
        if not isinstance(message, message_type):
            raise ProtocolError(
                f"expected {message_type.__name__}, got "
                f"{type(message).__name__}"
            )
        if hasattr(message, "sender"):
            require_sender(message, self.peer)
        return message

    def __call__(
        self, seed_m, seed_r, config, transport=None, clock=None, rng=None
    ) -> KeyAgreementOutcome:
        self.attempt += 1
        conn = self.conn
        tracer = resolve_tracer(None)
        mismatch = seed_m.hamming_distance(seed_r)
        party = AgreementParty(
            self.server_name,
            seed_r,
            config,
            rng=child_rng(rng, "party"),
            own_sequences_first=False,
            pool=self.pool,
        )

        def fail(reason: str) -> KeyAgreementOutcome:
            with contextlib.suppress(TransportError):
                conn.send(RoundResult(success=False, reason=reason))
            return KeyAgreementOutcome(
                success=False,
                mobile_key=None,
                server_key=None,
                elapsed_s=clock.now,
                failure_reason=reason,
                seed_mismatch_bits=mismatch,
            )

        with tracer.span(
            "net.agreement",
            attempt=self.attempt,
            peer=self.peer,
            seed_mismatch_bits=mismatch,
        ):
            try:
                # The device's simulated sensing, granted over the wire.
                with tracer.span("net.seed_grant"):
                    with clock.measure():
                        conn.send(SeedGrant(self.attempt, seed_m))

                # M_A both ways; arrival deadline-checked (SIV-D.2).
                # clock.measure() wall-clocks the socket wait, so real
                # network latency counts against the tau budget.
                with tracer.span("net.ot.announce"):
                    with clock.measure():
                        announce_c = self._expect(OTAnnounce)
                    clock.check_deadline(
                        config.announce_deadline_s, f"M_A ({self.peer})"
                    )
                    with clock.measure():
                        conn.send(party.craft_announce())

                # M_B both ways.
                with tracer.span("net.ot.respond"):
                    with clock.measure():
                        response_c = self._expect(OTResponse)
                        conn.send(party.craft_response(announce_c))

                # M_E both ways.
                with tracer.span("net.ot.ciphertexts"):
                    with clock.measure():
                        cipher_c = self._expect(OTCiphertextBatch)
                        conn.send(party.craft_ciphertexts(response_c))

                with tracer.span("net.ot.assemble"):
                    with clock.measure():
                        party.receive_ciphertexts(cipher_c)
                        party.build_preliminary_key()

                # Reconciliation + mutual confirmation.
                with tracer.span("net.reconcile"):
                    with clock.measure():
                        challenge = self._expect(ReconciliationChallenge)
                        confirmation = party.answer_challenge(challenge)
                        conn.send(confirmation)
                        ack = self._expect(ConfirmAck)
                        if not ack.ok:
                            raise KeyAgreementFailure(
                                "client reported HMAC confirmation failure"
                            )
                        if not hmac_verify(
                            party.final_key.to_bytes(),
                            challenge.nonce + b"ack",
                            ack.tag,
                        ):
                            raise KeyAgreementFailure(
                                "confirmation ack HMAC mismatch: peers "
                                "hold different keys"
                            )
            except DeadlineExceeded as exc:
                return fail(f"deadline: {exc}")
            except KeyAgreementFailure as exc:
                return fail(f"agreement: {exc}")
            except TransportError as exc:
                return fail(f"transport: {exc}")
            except ProtocolError as exc:
                return fail(f"protocol: {exc}")

        try:
            conn.send(RoundResult(success=True))
        except TransportError as exc:
            # The keys agree but the client never heard it; report the
            # round as failed so server and client views stay consistent.
            return KeyAgreementOutcome(
                success=False,
                mobile_key=None,
                server_key=None,
                elapsed_s=clock.now,
                failure_reason=f"transport: {exc}",
                seed_mismatch_bits=mismatch,
            )
        key = party.session_key()
        return KeyAgreementOutcome(
            success=True,
            mobile_key=key,
            server_key=key,
            elapsed_s=clock.now,
            seed_mismatch_bits=mismatch,
        )


# -- event-loop front end ------------------------------------------------------

#: Inbox sentinel: the connection is gone; wakes any blocked worker.
_CLOSED = object()

#: _ClientConn lifecycle.
_HANDSHAKE = "handshake"
_AGREEMENT = "agreement"
_SECURE = "secure"
_CLOSING = "closing"


class _WorkerChannel:
    """The protocol worker's :class:`FrameConnection`-shaped view of one
    event-loop connection: ``recv`` blocks on the inbox the loop fills,
    ``send`` appends encoded bytes to the outbound buffer and wakes the
    loop.  All failures keep the typed-transport-error contract so
    :class:`_NetAgreement` is byte-for-byte reusable."""

    def __init__(self, conn: "_ClientConn"):
        self._conn = conn

    def send(self, message) -> None:
        self._conn.send_from_worker(message)

    def recv(self, timeout_s: float = _UNSET):
        conn = self._conn
        if timeout_s is _UNSET:
            timeout_s = conn.server.read_timeout_s
        try:
            item = conn.inbox.get(timeout=timeout_s)
        except queue.Empty:
            raise ConnectionTimeout(
                f"read timed out after {timeout_s}s waiting for a frame"
            )
        if item is _CLOSED:
            conn.inbox.put(_CLOSED)  # keep later readers unblocked
            raise ConnectionClosed("connection closed")
        if isinstance(item, Exception):
            raise item
        return item


class _ClientConn:
    """Per-connection state owned by the event loop."""

    __slots__ = (
        "server", "sock", "addr", "state", "assembler", "outbound",
        "inbox", "channel", "ticket", "deadline", "closed", "want_write",
        "access", "peer", "hello_at", "trace_parent",
    )

    def __init__(self, server: "WaveKeyTCPServer", sock, addr):
        self.server = server
        self.sock = sock
        self.addr = addr
        self.state = _HANDSHAKE
        self.assembler = FrameAssembler(server.max_frame_bytes)
        self.outbound = OutboundBuffer(server.max_outbound_bytes)
        self.inbox: "queue.Queue" = queue.Queue()
        self.channel = _WorkerChannel(self)
        self.ticket = None
        self.deadline = None
        self.closed = False
        self.want_write = False
        self.access: Optional[ServerAccessChannel] = None
        self.peer = ""
        self.hello_at: Optional[float] = None
        self.trace_parent = None

    @property
    def peername(self) -> str:
        return f"{self.addr[0]}:{self.addr[1]}"

    # -- worker-thread send path ------------------------------------------

    def send_from_worker(self, message) -> None:
        server = self.server
        start = time.perf_counter()
        data = frame_to_bytes(encode_message(message))
        encode_s = time.perf_counter() - start
        verdict = self.outbound.append(data)
        if verdict == SEND_CLOSED:
            raise ConnectionClosed("send failed: connection closed")
        if verdict == SEND_OVERFLOW:
            server.loop.call_soon(server._shed_backpressure, self)
            raise ConnectionClosed(
                "send failed: outbound buffer overflow "
                f"({self.outbound.pending}/{self.outbound.max_pending_bytes}"
                " bytes pending, peer not reading)"
            )
        server._note_frame_sent(len(data), encode_s, self.outbound.pending)
        server.loop.call_soon(server._ensure_writable, self)


class WaveKeyTCPServer:
    """Event-loop TCP front end over an access server.

    Public surface (constructor, ``start``/``stop``/context manager,
    ``address``, ``sessions_served``, ``metrics``, ``events``) matches
    the original threaded server, so clients, tests, and the CLI are
    agnostic to which front end is running.
    """

    def __init__(
        self,
        access_server: WaveKeyAccessServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "server",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        read_timeout_s: float = 10.0,
        handshake_timeout_s: float = 5.0,
        verdict_grace_s: float = 10.0,
        max_outbound_bytes: int = 1 << 20,
        inbox_limit: int = 256,
        key_store: Optional[KeyStore] = None,
        op_handler=default_op_handler,
        secure_idle_timeout_s: float = 30.0,
        telemetry=None,
        telemetry_flush_interval_s: float = 1.0,
        replicator=None,
    ):
        self.access_server = access_server
        self.name = name
        self.max_frame_bytes = int(max_frame_bytes)
        self.read_timeout_s = float(read_timeout_s)
        self.handshake_timeout_s = float(handshake_timeout_s)
        self.verdict_grace_s = float(verdict_grace_s)
        self.max_outbound_bytes = int(max_outbound_bytes)
        self.inbox_limit = int(inbox_limit)
        # explicit None-check: an empty KeyStore is falsy (__len__)
        self.key_store = (
            key_store
            if key_store is not None
            else KeyStore(metrics=access_server.metrics)
        )
        self.replicator = replicator
        self.op_handler = op_handler
        self.secure_idle_timeout_s = float(secure_idle_timeout_s)
        self.telemetry = telemetry
        self.telemetry_flush_interval_s = float(telemetry_flush_interval_s)
        self._telemetry_deadline = None
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._conns: set = set()  # loop-thread only
        self._running = False
        self.loop: Optional[EventLoop] = None
        self.sessions_served = 0
        self.address: Optional[Tuple[str, int]] = None
        self._labels = {"endpoint": "server"}

    @property
    def metrics(self):
        return self.access_server.metrics

    @property
    def events(self):
        return self.access_server.events

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WaveKeyTCPServer":
        if self._running:
            raise ServiceError("TCP server already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(1024)
        sock.setblocking(False)
        self._sock = sock
        self.address = sock.getsockname()[:2]
        self._running = True
        self.loop = EventLoop(
            name="wavekey-net-loop", metrics=self.metrics
        ).start()
        self.loop.call_soon(
            self.loop.register, sock, EVENT_READ, self._on_listener_ready
        )
        if self.telemetry is not None:
            # Periodic flush keeps the tracer's own span bound from
            # filling between scrapes; armed on the loop thread because
            # call_later is loop-thread-only.
            self.loop.call_soon(self._telemetry_flush_tick)
        if self.replicator is not None:
            # The replicator's fleet identity is the bound address, so
            # attachment waits for the listen socket.
            self.replicator.attach(self)
        self.events.emit(
            "net_listening", host=self.address[0], port=self.address[1],
            mode="event-loop",
        )
        return self

    def _telemetry_flush_tick(self) -> None:
        if not self._running or self.telemetry is None:
            return
        self.telemetry.flush()
        self._telemetry_deadline = self.loop.call_later(
            self.telemetry_flush_interval_s, self._telemetry_flush_tick
        )

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self.replicator is not None:
            self.replicator.stop()
        done = threading.Event()
        self.loop.call_soon(self._shutdown_on_loop, done)
        done.wait(timeout=5.0)
        self.loop.stop()
        self.events.emit("net_stopped", sessions_served=self.sessions_served)

    def _shutdown_on_loop(self, done: threading.Event) -> None:
        try:
            if self._telemetry_deadline is not None:
                self._telemetry_deadline.cancel()
            self.loop.unregister(self._sock)
            self._sock.close()
            for conn in list(self._conns):
                self._close_conn(conn)
        finally:
            done.set()

    def __enter__(self) -> "WaveKeyTCPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- metrics helpers (registry is thread-safe) -------------------------

    def _note_frame_sent(
        self, n_bytes: int, encode_s: float, outbound_depth: int
    ) -> None:
        metrics = self.metrics
        metrics.counter("net.frames_sent", labels=self._labels).inc()
        metrics.counter(
            "net.bytes_sent", labels=self._labels
        ).inc(n_bytes)
        metrics.histogram(
            "net.encode_s", labels=self._labels
        ).observe(encode_s)
        metrics.histogram(
            "net.loop.outbound_buffer_bytes", bounds=byte_buckets()
        ).observe(outbound_depth)

    def _note_frame_received(self, payload_len: int, decode_s: float) -> None:
        metrics = self.metrics
        metrics.counter("net.frames_received", labels=self._labels).inc()
        metrics.counter(
            "net.bytes_received", labels=self._labels
        ).inc(payload_len + _FRAME_HEADER_BYTES)
        metrics.histogram(
            "net.decode_s", labels=self._labels
        ).observe(decode_s)

    # -- accept path (loop thread) -----------------------------------------

    def _on_listener_ready(self, mask: int) -> None:
        while True:
            try:
                client_sock, addr = self._sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed by stop()
            client_sock.setblocking(False)
            # Disable Nagle: the protocol is strict request/response,
            # so coalescing 40-byte frames only adds RTTs.
            with contextlib.suppress(OSError):
                client_sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            conn = _ClientConn(self, client_sock, addr)
            self._conns.add(conn)
            self.loop.register(client_sock, EVENT_READ,
                               lambda m, c=conn: self._on_conn_ready(c, m))
            conn.deadline = self.loop.call_later(
                self.handshake_timeout_s,
                lambda c=conn: self._handshake_timeout(c),
            )
            self.metrics.gauge("net.conn.open").inc()

    # -- read path (loop thread) -------------------------------------------

    def _on_conn_ready(self, conn: _ClientConn, mask: int) -> None:
        if conn.closed:
            return
        if mask & EVENT_WRITE:
            try:
                drained = conn.outbound.flush(conn.sock)
            except OSError as exc:
                self._transport_error(
                    conn, ConnectionClosed(f"send failed: {exc}")
                )
                return
            if drained:
                if conn.state == _CLOSING:
                    self._close_conn(conn)
                    return
                conn.want_write = False
                self.loop.modify(
                    conn.sock, EVENT_READ,
                    lambda m, c=conn: self._on_conn_ready(c, m),
                )
        if mask & EVENT_READ and conn.state != _CLOSING:
            self._service_reads(conn)

    def _service_reads(self, conn: _ClientConn) -> None:
        eof = False
        # Bounded reads per readiness event keep the loop fair; the
        # selector is level-triggered, so leftover kernel bytes retrigger.
        for _ in range(16):
            try:
                n = conn.assembler.read_into(conn.sock)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._transport_error(
                    conn, ConnectionClosed(f"read failed: {exc}")
                )
                return
            if n == 0:
                eof = True
                break
        self._drain_frames(conn)
        if eof and not conn.closed:
            self._transport_error(
                conn, ConnectionClosed("peer closed the connection")
            )

    def _drain_frames(self, conn: _ClientConn) -> None:
        while not conn.closed:
            try:
                frame = conn.assembler.next_frame()
            except TransportError as exc:
                if conn.assembler.broken:
                    # Poisoned length prefix: the stream cannot recover.
                    self._transport_error(conn, exc)
                    return
                self._frame_error(conn, exc)
                continue
            if frame is None:
                return
            self._on_frame(conn, frame)

    def _on_frame(self, conn: _ClientConn, frame) -> None:
        start = time.perf_counter()
        try:
            message = decode_payload(frame)
        except TransportError as exc:
            self._frame_error(conn, exc)
            return
        self._note_frame_received(
            len(frame.payload), time.perf_counter() - start
        )
        if conn.state == _HANDSHAKE:
            self._handle_hello(conn, message)
        elif conn.state == _SECURE:
            self._handle_secure_frame(conn, message)
        else:
            if conn.inbox.qsize() >= self.inbox_limit:
                self.metrics.counter("net.server.inbox_shed").inc()
                self.events.emit(
                    "net_inbox_overflow", peer=conn.peername,
                    limit=self.inbox_limit,
                )
                self._enqueue(conn, ErrorFrame(
                    "flood",
                    f"over {self.inbox_limit} frames queued ahead of the "
                    "protocol worker",
                ), force=True)
                self._close_after_flush(conn)
                return
            conn.inbox.put(message)

    def _frame_error(self, conn: _ClientConn, exc: TransportError) -> None:
        """A single frame failed to decode but the stream is aligned."""
        if conn.state == _AGREEMENT:
            # The worker fails the round ("transport: ...") and the
            # server's retry policy may grant a fresh one — the
            # connection survives, matching the threaded front end.
            conn.inbox.put(exc)
            return
        self._transport_error(conn, exc)

    def _transport_error(self, conn: _ClientConn, exc: TransportError) -> None:
        self.metrics.counter("net.server.transport_errors").inc()
        self.events.emit(
            "net_transport_error", peer=conn.peername, error=str(exc)
        )
        if conn.state == _AGREEMENT:
            conn.inbox.put(exc)
        self._close_conn(conn)

    # -- handshake / verdict state machine (loop thread) -------------------

    def _handle_hello(self, conn: _ClientConn, message) -> None:
        if isinstance(message, StatsRequest):
            self.metrics.counter("net.server.stats_requests").inc()
            self._enqueue(conn, backend_stats_response(self))
            self._close_after_flush(conn)
            return
        if isinstance(message, TelemetryRequest):
            self.metrics.counter("net.server.telemetry_requests").inc()
            self._enqueue(
                conn, backend_telemetry_response(self, drain=message.drain)
            )
            self._close_after_flush(conn)
            return
        if isinstance(message, ResumeRequest):
            self._handle_resume(conn, message)
            return
        if isinstance(message, RevokeNotice):
            self._enqueue(conn, answer_revocation(self, message))
            self._close_after_flush(conn)
            return
        if isinstance(message, (ReplDigest, ReplPull, ReplPush)):
            self._enqueue(conn, answer_replication(self, message))
            self._close_after_flush(conn)
            return
        if not isinstance(message, Hello):
            self._enqueue(conn, ErrorFrame(
                "protocol",
                f"expected HELLO, got {type(message).__name__}",
            ))
            self._close_after_flush(conn)
            return
        if message.version != PROTOCOL_VERSION:
            self._enqueue(conn, ErrorFrame(
                "version",
                f"server speaks protocol {PROTOCOL_VERSION}, "
                f"client sent {message.version}",
            ))
            self._close_after_flush(conn)
            return
        if not message.sender or message.sender == self.name:
            self._enqueue(conn, ErrorFrame(
                "identity", f"invalid client identity {message.sender!r}"
            ))
            self._close_after_flush(conn)
            return
        served_group = self.access_server.agreement_config.group
        requested_group = message.group_id or WAVEKEY_GROUP_512.name
        if requested_group != served_group.name:
            self._enqueue(conn, ErrorFrame(
                GroupMismatch.wire_code,
                f"server runs OT group {served_group.name!r}, "
                f"client requested {requested_group!r}",
            ))
            self._close_after_flush(conn)
            return

        conn.peer = message.sender
        conn.hello_at = time.monotonic()
        conn.trace_parent = parent_from_context(message.trace_context)
        agreement = _NetAgreement(
            conn.channel, peer=message.sender, server_name=self.name,
            pool=self.access_server.ot_pool,
        )
        request = AccessRequest(
            rng_seed=message.rng_seed,
            dynamic=message.dynamic,
            agreement_fn=agreement,
            trace_context=conn.trace_parent,
        )
        try:
            ticket = self.access_server.submit(request)
        except ServiceError as exc:
            self._enqueue(conn, ErrorFrame("unavailable", str(exc)))
            self._close_after_flush(conn)
            return
        conn.ticket = ticket

        if ticket.done():
            record = ticket.result(timeout=0.1)
            if record.state is SessionState.SHED:
                self._send_shed(conn, record)
                return

        config = self.access_server.agreement_config
        self._enqueue(conn, Accept(
            sender=self.name,
            session_id=request.session_id,
            key_length_bits=config.key_length_bits,
            eta=config.eta,
        ))
        if conn.closed or conn.state == _CLOSING:
            return  # the accept itself overflowed: connection is shedding
        conn.state = _AGREEMENT
        if conn.deadline is not None:
            conn.deadline.cancel()
        budget = (
            self.access_server.config.session_deadline_s
            + self.verdict_grace_s
        )
        conn.deadline = self.loop.call_later(
            budget,
            lambda c=conn, b=budget, sid=request.session_id: (
                self._verdict_timeout(c, b, sid)
            ),
        )
        ticket.add_done_callback(
            lambda record, c=conn: self.loop.call_soon(
                self._deliver_verdict, c, record
            )
        )

    def _handle_resume(self, conn: _ClientConn, message: ResumeRequest) -> None:
        """First-frame ticket resumption: no gesture, no OT — straight
        to a secure channel if the ticket is alive."""
        resume_start = time.monotonic()
        parent = parent_from_context(message.trace_context)
        if message.version != PROTOCOL_VERSION:
            self._enqueue(conn, ErrorFrame(
                "version",
                f"server speaks protocol {PROTOCOL_VERSION}, "
                f"client sent {message.version}",
            ))
            self._close_after_flush(conn)
            return
        tracer = resolve_tracer(self.access_server.tracer)
        try:
            with tracer.span(
                "access.resume.accept", parent=parent,
                peer=message.sender, ticket_id=message.ticket_id,
            ):
                ticket = self.key_store.resume(message.ticket_id)
                channel, accept = ServerAccessChannel.accept(
                    ticket,
                    message.client_nonce,
                    handler=self.op_handler,
                    metrics=self.metrics,
                    sender=self.name,
                )
        except TicketError as exc:
            self.metrics.counter(
                "access.resume", labels={"outcome": exc.wire_code}
            ).inc()
            if self.replicator is not None and isinstance(exc, TicketUnknown):
                # With replication on, every live grant should have
                # reached us — an unknown ticket is a replication miss
                # (entry still in flight, or issuer died before push).
                self.metrics.counter("replica.resume.miss").inc()
            self.events.emit(
                "access_resume_rejected", peer=conn.peername,
                ticket_id=message.ticket_id, code=exc.wire_code,
            )
            self._enqueue(conn, ErrorFrame(exc.wire_code, str(exc)))
            self._close_after_flush(conn)
            return
        except AccessError as exc:
            self._enqueue(conn, ErrorFrame("resume_invalid", str(exc)))
            self._close_after_flush(conn)
            return
        conn.peer = message.sender
        conn.access = channel
        conn.trace_parent = parent
        channel.trace_parent = parent
        channel.tracer = tracer
        conn.state = _SECURE
        self._arm_secure_idle(conn)
        self.metrics.counter(
            "access.resume", labels={"outcome": "ok"}
        ).inc()
        self.metrics.histogram("access.resume.latency").observe(
            time.monotonic() - resume_start,
            trace_id=parent.trace_id if parent is not None else None,
        )
        self.events.emit(
            "access_resumed", peer=conn.peername,
            ticket_id=ticket.ticket_id, channel_id=channel.channel_id,
        )
        self._enqueue(conn, accept)

    def _arm_secure_idle(self, conn: _ClientConn) -> None:
        if conn.deadline is not None:
            conn.deadline.cancel()
        conn.deadline = self.loop.call_later(
            self.secure_idle_timeout_s,
            lambda c=conn: self._secure_idle_timeout(c),
        )

    def _secure_idle_timeout(self, conn: _ClientConn) -> None:
        if conn.closed or conn.state != _SECURE:
            return
        self.metrics.counter("access.idle_timeouts").inc()
        self._enqueue(conn, ErrorFrame(
            "timeout",
            f"secure channel idle for {self.secure_idle_timeout_s:.1f}s",
        ))
        self._close_after_flush(conn)

    def _handle_secure_frame(self, conn: _ClientConn, message) -> None:
        """One inbound frame on an open secure channel (loop thread —
        record crypto is a few HMACs, far below a loop tick)."""
        if not isinstance(message, RecordFrame):
            self._enqueue(conn, ErrorFrame(
                "protocol",
                f"expected RECORD, got {type(message).__name__}",
            ))
            self._close_after_flush(conn)
            return
        start = time.perf_counter()
        try:
            reply = conn.access.handle_record(message)
        except RecordRejected as exc:
            self.metrics.counter("access.records_rejected").inc()
            self.events.emit(
                "access_record_rejected", peer=conn.peername,
                error=str(exc),
            )
            self._enqueue(conn, ErrorFrame("record_rejected", str(exc)))
            self._close_after_flush(conn)
            return
        except AccessError as exc:
            self._enqueue(conn, ErrorFrame("access", str(exc)))
            self._close_after_flush(conn)
            return
        self.metrics.histogram("access.op_s").observe(
            time.perf_counter() - start
        )
        if reply is None:  # orderly "bye"
            self._close_conn(conn)
            return
        self._arm_secure_idle(conn)
        self._enqueue(conn, reply)

    def _send_shed(self, conn: _ClientConn, record) -> None:
        # Structured load shedding, mapped to a wire error frame.
        rejection = record.rejection
        self._enqueue(conn, ErrorFrame(
            "busy",
            f"{rejection.code}: queue "
            f"{rejection.queue_depth}/{rejection.queue_capacity}",
        ))
        self.metrics.counter("net.server.shed").inc()
        self._close_after_flush(conn)

    def _deliver_verdict(self, conn: _ClientConn, record) -> None:
        if conn.closed:
            return
        if conn.deadline is not None:
            conn.deadline.cancel()
        if record.state is SessionState.SHED:
            self._send_shed(conn, record)
            return
        # Count before sending: a client acting on the verdict must
        # never observe a stale sessions_served.
        self.sessions_served += 1
        self.metrics.counter("net.server.sessions").inc()
        if conn.hello_at is not None:
            trace_id = (
                conn.trace_parent.trace_id
                if conn.trace_parent is not None
                else getattr(
                    getattr(record, "trace", None), "trace_id", None
                )
            )
            self.metrics.histogram("net.session.latency").observe(
                time.monotonic() - conn.hello_at, trace_id=trace_id
            )
        grant = issue_ticket_grant(self, record, conn.peer)
        if grant is not None:
            self._enqueue(conn, grant)
        self._enqueue(conn, Verdict(
            state=record.state.value,
            attempts=record.attempts,
            reason=record.failure_reason or "",
            session_id=record.session_id,
        ))
        self._close_after_flush(conn)

    def _verdict_timeout(
        self, conn: _ClientConn, budget: float, session_id: str
    ) -> None:
        if conn.closed or (conn.ticket is not None and conn.ticket.done()):
            return
        self._enqueue(conn, ErrorFrame(
            "timeout",
            f"session {session_id} did not finish within {budget}s",
        ))
        self._close_after_flush(conn)

    def _handshake_timeout(self, conn: _ClientConn) -> None:
        if conn.closed or conn.state != _HANDSHAKE:
            return
        self.metrics.counter("net.server.handshake_timeouts").inc()
        self.events.emit(
            "net_handshake_timeout", peer=conn.peername,
            deadline_s=self.handshake_timeout_s,
        )
        self._enqueue(conn, ErrorFrame(
            "timeout",
            f"no HELLO within {self.handshake_timeout_s:.1f}s",
        ))
        self._close_after_flush(conn)

    # -- write path (loop thread) ------------------------------------------

    def _enqueue(self, conn: _ClientConn, message, force: bool = False) -> None:
        """Loop-side send: encode, append, and arm EVENT_WRITE."""
        if conn.closed:
            return
        start = time.perf_counter()
        data = frame_to_bytes(encode_message(message))
        encode_s = time.perf_counter() - start
        verdict = conn.outbound.append(data, force=force)
        if verdict == SEND_CLOSED:
            return
        if verdict == SEND_OVERFLOW:
            self._shed_backpressure(conn)
            return
        self._note_frame_sent(len(data), encode_s, conn.outbound.pending)
        self._ensure_writable(conn)

    def _shed_backpressure(self, conn: _ClientConn) -> None:
        """The bounded outbound buffer is full: the peer stopped
        reading.  Shed it with a terminal error frame (allowed past the
        bound) rather than buffering without limit."""
        if conn.closed or conn.state == _CLOSING:
            return
        self.metrics.counter("net.server.backpressure_shed").inc()
        self.events.emit(
            "net_backpressure_shed", peer=conn.peername,
            pending_bytes=conn.outbound.pending,
            bound=self.max_outbound_bytes,
        )
        self._enqueue(conn, ErrorFrame(
            "overloaded",
            f"outbound buffer exceeded {self.max_outbound_bytes} bytes; "
            "read faster or reconnect",
        ), force=True)
        self._close_after_flush(conn)

    def _ensure_writable(self, conn: _ClientConn) -> None:
        if conn.closed or conn.want_write:
            return
        if conn.outbound.pending == 0:
            # Raced with the flush (or with close): nothing to arm.
            if conn.state == _CLOSING:
                self._close_conn(conn)
            return
        conn.want_write = True
        events = EVENT_WRITE if conn.state == _CLOSING else (
            EVENT_READ | EVENT_WRITE
        )
        self.loop.modify(
            conn.sock, events, lambda m, c=conn: self._on_conn_ready(c, m)
        )

    def _close_after_flush(self, conn: _ClientConn) -> None:
        if conn.closed:
            return
        conn.state = _CLOSING
        if conn.outbound.pending == 0:
            self._close_conn(conn)
            return
        conn.want_write = False  # force re-arm with WRITE-only interest
        self._ensure_writable(conn)

    def _close_conn(self, conn: _ClientConn) -> None:
        if conn.closed:
            return
        conn.closed = True
        conn.outbound.close()
        if conn.deadline is not None:
            conn.deadline.cancel()
        self.loop.unregister(conn.sock)
        with contextlib.suppress(OSError):
            conn.sock.close()
        self._conns.discard(conn)
        conn.inbox.put(_CLOSED)
        self.metrics.gauge("net.conn.open").dec()


# -- threaded front end (baseline) ---------------------------------------------


class ThreadedWaveKeyTCPServer:
    """Accept loop + per-connection handler threads over an access
    server — the original front end, kept as the latency baseline for
    the scaling benchmarks and behind ``repro serve --no-event-loop``.
    Every connection costs one OS thread for its whole lifetime."""

    def __init__(
        self,
        access_server: WaveKeyAccessServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "server",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        read_timeout_s: float = 10.0,
        handshake_timeout_s: float = 5.0,
        verdict_grace_s: float = 10.0,
        key_store: Optional[KeyStore] = None,
        op_handler=default_op_handler,
        secure_idle_timeout_s: float = 30.0,
        telemetry=None,
        telemetry_flush_interval_s: float = 1.0,
        replicator=None,
    ):
        self.access_server = access_server
        self.name = name
        self.max_frame_bytes = int(max_frame_bytes)
        self.read_timeout_s = float(read_timeout_s)
        self.handshake_timeout_s = float(handshake_timeout_s)
        self.verdict_grace_s = float(verdict_grace_s)
        # explicit None-check: an empty KeyStore is falsy (__len__)
        self.key_store = (
            key_store
            if key_store is not None
            else KeyStore(metrics=access_server.metrics)
        )
        self.replicator = replicator
        self.op_handler = op_handler
        self.secure_idle_timeout_s = float(secure_idle_timeout_s)
        self.telemetry = telemetry
        self.telemetry_flush_interval_s = float(telemetry_flush_interval_s)
        self._telemetry_deadline = None
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: list = []
        self._conns: set = set()
        self._lock = threading.Lock()
        self._running = False
        self.sessions_served = 0
        self.address: Optional[Tuple[str, int]] = None

    @property
    def metrics(self):
        return self.access_server.metrics

    @property
    def events(self):
        return self.access_server.events

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ThreadedWaveKeyTCPServer":
        if self._running:
            raise ServiceError("TCP server already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        self._sock = sock
        self.address = sock.getsockname()[:2]
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="wavekey-net-accept", daemon=True
        )
        self._accept_thread.start()
        if self.replicator is not None:
            self.replicator.attach(self)
        self.events.emit(
            "net_listening", host=self.address[0], port=self.address[1],
            mode="threaded",
        )
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self.replicator is not None:
            self.replicator.stop()
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        with self._lock:
            conns = list(self._conns)
            handlers = list(self._handlers)
        for conn in conns:
            conn.close()
        for handler in handlers:
            handler.join(timeout=5.0)
        self.events.emit("net_stopped", sessions_served=self.sessions_served)

    def __enter__(self) -> "ThreadedWaveKeyTCPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling -----------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client_sock, addr = self._sock.accept()
            except OSError:
                return  # listener closed by stop()
            handler = threading.Thread(
                target=self._handle,
                args=(client_sock, addr),
                name=f"wavekey-net-{addr[0]}:{addr[1]}",
                daemon=True,
            )
            with self._lock:
                self._handlers.append(handler)
                self._handlers = [
                    t for t in self._handlers if t.is_alive() or t is handler
                ]
            handler.start()

    def _handle(self, client_sock: socket.socket, addr) -> None:
        conn = FrameConnection(
            client_sock,
            max_frame_bytes=self.max_frame_bytes,
            read_timeout_s=self.read_timeout_s,
            metrics=self.metrics,
            endpoint="server",
        )
        with self._lock:
            self._conns.add(conn)
        try:
            self._converse(conn, addr)
        except TransportError as exc:
            self.metrics.counter(
                "net.server.transport_errors"
            ).inc()
            self.events.emit(
                "net_transport_error", peer=f"{addr[0]}:{addr[1]}",
                error=str(exc),
            )
        except Exception as exc:  # noqa: BLE001 — never kill the handler
            self.events.emit(
                "net_handler_error", peer=f"{addr[0]}:{addr[1]}",
                error=repr(exc),
            )
        finally:
            with self._lock:
                self._conns.discard(conn)
            conn.close()

    def _converse(self, conn: FrameConnection, addr) -> None:
        hello = conn.recv(timeout_s=self.handshake_timeout_s)
        if isinstance(hello, StatsRequest):
            self.metrics.counter("net.server.stats_requests").inc()
            conn.send(backend_stats_response(self))
            return
        if isinstance(hello, TelemetryRequest):
            self.metrics.counter("net.server.telemetry_requests").inc()
            conn.send(backend_telemetry_response(self, drain=hello.drain))
            return
        if isinstance(hello, ResumeRequest):
            self._converse_secure(conn, hello)
            return
        if isinstance(hello, RevokeNotice):
            conn.send(answer_revocation(self, hello))
            return
        if isinstance(hello, (ReplDigest, ReplPull, ReplPush)):
            conn.send(answer_replication(self, hello))
            return
        if not isinstance(hello, Hello):
            conn.send(ErrorFrame(
                "protocol",
                f"expected HELLO, got {type(hello).__name__}",
            ))
            return
        if hello.version != PROTOCOL_VERSION:
            conn.send(ErrorFrame(
                "version",
                f"server speaks protocol {PROTOCOL_VERSION}, "
                f"client sent {hello.version}",
            ))
            return
        if not hello.sender or hello.sender == self.name:
            conn.send(ErrorFrame(
                "identity", f"invalid client identity {hello.sender!r}"
            ))
            return
        served_group = self.access_server.agreement_config.group
        requested_group = hello.group_id or WAVEKEY_GROUP_512.name
        if requested_group != served_group.name:
            conn.send(ErrorFrame(
                GroupMismatch.wire_code,
                f"server runs OT group {served_group.name!r}, "
                f"client requested {requested_group!r}",
            ))
            return

        hello_at = time.monotonic()
        trace_parent = parent_from_context(hello.trace_context)
        agreement = _NetAgreement(
            conn, peer=hello.sender, server_name=self.name,
            pool=self.access_server.ot_pool,
        )
        request = AccessRequest(
            rng_seed=hello.rng_seed,
            dynamic=hello.dynamic,
            agreement_fn=agreement,
            trace_context=trace_parent,
        )
        try:
            ticket = self.access_server.submit(request)
        except ServiceError as exc:
            conn.send(ErrorFrame("unavailable", str(exc)))
            return

        if ticket.done():
            record = ticket.result(timeout=0.1)
            if record.state is SessionState.SHED:
                # Structured load shedding, mapped to a wire error frame.
                rejection = record.rejection
                conn.send(ErrorFrame(
                    "busy",
                    f"{rejection.code}: queue "
                    f"{rejection.queue_depth}/{rejection.queue_capacity}",
                ))
                self.metrics.counter("net.server.shed").inc()
                return

        config = self.access_server.agreement_config
        conn.send(Accept(
            sender=self.name,
            session_id=request.session_id,
            key_length_bits=config.key_length_bits,
            eta=config.eta,
        ))

        budget = (
            self.access_server.config.session_deadline_s
            + self.verdict_grace_s
        )
        try:
            record = ticket.result(timeout=budget)
        except ServiceError as exc:
            conn.send(ErrorFrame("timeout", str(exc)))
            return
        # Count before sending: a client acting on the verdict must
        # never observe a stale sessions_served.
        with self._lock:
            self.sessions_served += 1
        self.metrics.counter("net.server.sessions").inc()
        self.metrics.histogram("net.session.latency").observe(
            time.monotonic() - hello_at,
            trace_id=(
                trace_parent.trace_id
                if trace_parent is not None
                else getattr(
                    getattr(record, "trace", None), "trace_id", None
                )
            ),
        )
        grant = issue_ticket_grant(self, record, hello.sender)
        if grant is not None:
            conn.send(grant)
        conn.send(Verdict(
            state=record.state.value,
            attempts=record.attempts,
            reason=record.failure_reason or "",
            session_id=record.session_id,
        ))

    def _converse_secure(
        self, conn: FrameConnection, request: ResumeRequest
    ) -> None:
        """Blocking secure-channel conversation (threaded parity with
        the event-loop server's ``_SECURE`` state)."""
        resume_start = time.monotonic()
        parent = parent_from_context(request.trace_context)
        if request.version != PROTOCOL_VERSION:
            conn.send(ErrorFrame(
                "version",
                f"server speaks protocol {PROTOCOL_VERSION}, "
                f"client sent {request.version}",
            ))
            return
        tracer = resolve_tracer(self.access_server.tracer)
        try:
            with tracer.span(
                "access.resume.accept", parent=parent,
                peer=request.sender, ticket_id=request.ticket_id,
            ):
                ticket = self.key_store.resume(request.ticket_id)
                channel, accept = ServerAccessChannel.accept(
                    ticket,
                    request.client_nonce,
                    handler=self.op_handler,
                    metrics=self.metrics,
                    sender=self.name,
                )
        except TicketError as exc:
            self.metrics.counter(
                "access.resume", labels={"outcome": exc.wire_code}
            ).inc()
            if self.replicator is not None and isinstance(exc, TicketUnknown):
                self.metrics.counter("replica.resume.miss").inc()
            self.events.emit(
                "access_resume_rejected", ticket_id=request.ticket_id,
                code=exc.wire_code,
            )
            conn.send(ErrorFrame(exc.wire_code, str(exc)))
            return
        except AccessError as exc:
            conn.send(ErrorFrame("resume_invalid", str(exc)))
            return
        channel.trace_parent = parent
        channel.tracer = tracer
        self.metrics.counter(
            "access.resume", labels={"outcome": "ok"}
        ).inc()
        self.metrics.histogram("access.resume.latency").observe(
            time.monotonic() - resume_start,
            trace_id=parent.trace_id if parent is not None else None,
        )
        self.events.emit(
            "access_resumed", ticket_id=ticket.ticket_id,
            channel_id=channel.channel_id,
        )
        conn.send(accept)
        while True:
            try:
                message = conn.recv(timeout_s=self.secure_idle_timeout_s)
            except ConnectionTimeout:
                self.metrics.counter("access.idle_timeouts").inc()
                conn.send(ErrorFrame(
                    "timeout",
                    "secure channel idle for "
                    f"{self.secure_idle_timeout_s:.1f}s",
                ))
                return
            except ConnectionClosed:
                return
            if not isinstance(message, RecordFrame):
                conn.send(ErrorFrame(
                    "protocol",
                    f"expected RECORD, got {type(message).__name__}",
                ))
                return
            start = time.perf_counter()
            try:
                reply = channel.handle_record(message)
            except RecordRejected as exc:
                self.metrics.counter("access.records_rejected").inc()
                self.events.emit(
                    "access_record_rejected", error=str(exc)
                )
                conn.send(ErrorFrame("record_rejected", str(exc)))
                return
            except AccessError as exc:
                conn.send(ErrorFrame("access", str(exc)))
                return
            self.metrics.histogram("access.op_s").observe(
                time.perf_counter() - start
            )
            if reply is None:  # orderly "bye"
                return
            conn.send(reply)
