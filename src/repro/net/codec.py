"""Versioned binary codec for the WaveKey wire protocol.

Frame layout (everything big-endian)::

    +----------------+-----------+--------------------+
    | body length u32| type u8   | payload            |
    +----------------+-----------+--------------------+

``body length`` counts the type byte plus the payload, so a receiver
can bound memory before reading the body (:class:`FrameTooLarge`).

Two message families share the framing:

* the **protocol dataclasses** of :mod:`repro.protocol.messages` —
  ``M_A``/``M_B``/``M_E`` (:class:`OTAnnounce`, :class:`OTResponse`,
  :class:`OTCiphertextBatch`), the reconciliation challenge, and the
  HMAC confirmation;
* the **session-control frames** defined here — hello/accept handshake,
  per-attempt seed grant, confirmation ack, round result, terminal
  verdict, and structured error frames;
* the **access-layer frames** (:mod:`repro.access`) — resumption
  ticket grant, resume request/accept, sealed channel records, and
  authenticated revocation notices;
* the **replication frames** (:mod:`repro.replica`) — digest
  exchange, missing-suffix pull, and entry push carrying JSON
  documents of content-addressed ticket-state log entries.

Encoded sizes are reconciled with the latency model: for every protocol
dataclass, ``len(payload) == msg.wire_size_bytes() + framing_overhead``
where the overhead is exactly the codec's field headers (sender string,
element counts, per-element length prefixes) plus the 5-byte frame
header — :func:`framing_overhead` computes it so tests can pin the
identity exactly.

OT group elements travel as ``u16`` length plus the group's canonical
encoding — minimal big-endian bytes for MODP (byte-identical to the
historical integer fields) and 32-byte compressed points for
curve25519; the codec treats them as opaque and the negotiated group
validates them.  Bare integers still use the same u16-length + minimal
big-endian layout; bit sequences are a ``u32`` bit count plus MSB-first
packed bytes.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.crypto.ot import OTCiphertexts
from repro.errors import DecodeError, FrameTooLarge, ProtocolError
from repro.obs.tracing import TraceContext
from repro.protocol.messages import (
    ConfirmationResponse,
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    ReconciliationChallenge,
)
from repro.utils.bits import BitSequence

#: Bump on any incompatible change to frame layout or message payloads.
PROTOCOL_VERSION = 1

#: Frame header: u32 body length + u8 frame type.
HEADER_BYTES = 5

#: Default bound on one frame's payload; generous next to real messages
#: (a 512-bit-group M_E for l_s=128 is ~20 KiB).
DEFAULT_MAX_FRAME_BYTES = 1 << 20


class FrameType(enum.IntEnum):
    """One byte on the wire identifying the payload schema."""

    HELLO = 0x01
    ACCEPT = 0x02
    SEED_GRANT = 0x03
    OT_ANNOUNCE = 0x10
    OT_RESPONSE = 0x11
    OT_CIPHERTEXTS = 0x12
    RECON_CHALLENGE = 0x13
    CONFIRM_RESPONSE = 0x14
    CONFIRM_ACK = 0x15
    ROUND_RESULT = 0x20
    VERDICT = 0x21
    ERROR = 0x30
    STATS_REQUEST = 0x40
    STATS_RESPONSE = 0x41
    TELEMETRY_REQUEST = 0x42
    TELEMETRY_RESPONSE = 0x43
    TICKET_GRANT = 0x50
    RESUME_REQUEST = 0x51
    RESUME_ACCEPT = 0x52
    RECORD = 0x53
    REVOKE_NOTICE = 0x54
    REPL_DIGEST = 0x60
    REPL_PULL = 0x61
    REPL_PUSH = 0x62


class Frame(NamedTuple):
    """A decoded frame header + raw payload (pre message decode)."""

    type: FrameType
    payload: bytes


# -- session-control messages -------------------------------------------------


def _trace_context_wire_bytes(context: Optional[TraceContext]) -> int:
    """Encoded size of the optional trace-context tail (0 when absent:
    context-less frames are byte-identical to the pre-trace wire)."""
    if context is None:
        return 0
    return (
        1  # presence/format marker
        + 2 + len(context.trace_id.encode("utf-8"))
        + 2 + len(context.span_id.encode("utf-8"))
        + 1  # sampled flag
        + 2 + len(context.service.encode("utf-8"))
    )


@dataclass(frozen=True)
class Hello:
    """Client -> server: open a session (the wire's AccessRequest).

    ``trace_context`` (optional) carries the client's distributed
    trace: when present, every hop — gateway splice, backend worker
    pool — parents its spans under the client's root instead of
    minting a new trace.  Encoded as a trailing optional block, so a
    context-less Hello is byte-identical to the pre-trace wire format
    and old peers interoperate cleanly.

    ``group_id`` (optional) negotiates the OT group for the session:
    empty means the historical default (the 512-bit MODP simulation
    group), anything else names the group the client will run the
    exchange in (e.g. ``curve25519``).  Same trailing-block encoding,
    so default-group Hellos stay byte-identical to the old wire; a
    server configured for a different group answers with a typed
    ``group`` error frame instead of mis-decoding elements.
    """

    sender: str
    rng_seed: int
    dynamic: bool = False
    version: int = PROTOCOL_VERSION
    trace_context: Optional[TraceContext] = None
    group_id: str = ""

    def wire_size_bytes(self) -> int:
        """Exact encoded payload size (codec reconciliation)."""
        seed = int(self.rng_seed)
        seed_bytes = max(1, (seed.bit_length() + 7) // 8)
        group_bytes = (
            1 + 2 + len(self.group_id.encode("utf-8"))
            if self.group_id else 0
        )
        return (
            1  # version
            + 2 + len(self.sender.encode("utf-8"))
            + 2 + seed_bytes
            + 1  # dynamic flag
            + _trace_context_wire_bytes(self.trace_context)
            + group_bytes
        )


@dataclass(frozen=True)
class Accept:
    """Server -> client: session admitted; carries the protocol
    operating point so both sides build identical reconciliation
    parameters."""

    sender: str
    session_id: str
    key_length_bits: int
    eta: float
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class SeedGrant:
    """Server -> client: the device-side key-seed for one attempt.

    In a real deployment the device derives this from its own IMU
    sensing of the shared gesture; the reproduction's sensor simulator
    lives server-side, so the simulated device sensing is granted over
    the wire at the start of each round.
    """

    attempt: int
    seed: BitSequence


@dataclass(frozen=True)
class ConfirmAck:
    """Client -> server: mutual confirmation closing one round.

    ``tag`` is ``HMAC(final_key, nonce || b"ack")`` — proof to the
    server that the mobile reconstructed the same key; ``ok=False``
    (empty tag) reports a client-side verification failure.
    """

    ok: bool
    tag: bytes


@dataclass(frozen=True)
class RoundResult:
    """Server -> client: verdict of one protocol round (attempt)."""

    success: bool
    reason: str = ""


@dataclass(frozen=True)
class Verdict:
    """Server -> client: the session's terminal state."""

    state: str
    attempts: int
    reason: str = ""
    session_id: str = ""


@dataclass(frozen=True)
class ErrorFrame:
    """Either direction: a structured wire-level error (load shed,
    version mismatch, malformed frame)."""

    code: str
    detail: str = ""


@dataclass(frozen=True)
class StatsRequest:
    """Client -> server: ask for an operational stats snapshot instead
    of opening a session.

    Sent as the *first* frame where a :class:`Hello` would go; the
    server answers with one :class:`StatsResponse` and closes.  The
    cluster tier uses this exchange both as a health probe and as the
    metrics scrape feeding the fleet view.
    """

    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class StatsResponse:
    """Server -> client: one JSON document of operational stats.

    The payload is JSON (not a binary schema) because it carries a
    whole :meth:`MetricsRegistry.snapshot` — an open-ended, labeled
    series set that evolves faster than the wire protocol should.
    ``role`` inside the document distinguishes a single backend
    (``"backend"``) from a gateway answering with its merged fleet
    view (``"gateway"``).
    """

    payload_json: str
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class TelemetryRequest:
    """Client -> server: ask for buffered telemetry instead of opening
    a session.

    Sent as the *first* frame where a :class:`Hello` would go; the
    server answers with one :class:`TelemetryResponse` and closes.
    The response carries the server's bounded ring of finished span
    trees and recent events (:class:`repro.obs.collect.TelemetryBuffer`)
    — the raw material the trace stitcher
    (``repro obs trace --stitch``) joins across processes by trace_id.
    ``drain=True`` additionally clears the server's buffer, so a
    periodic scraper sees each span exactly once; the default peek
    leaves the buffer intact for concurrent readers.
    """

    drain: bool = False
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class TelemetryResponse:
    """Server -> client: one JSON telemetry document.

    JSON for the same reason :class:`StatsResponse` is: the payload is
    an open-ended document (``service`` identity, span dicts, event
    dicts, drop counters) that evolves faster than the wire protocol
    should.
    """

    payload_json: str
    version: int = PROTOCOL_VERSION


# -- access-layer messages (repro.access) -------------------------------------


@dataclass(frozen=True)
class TicketGrant:
    """Server -> client: a session-resumption ticket.

    Issued alongside the terminal verdict of a successful agreement: a
    returning client presents ``ticket_id`` in a :class:`ResumeRequest`
    to open a secure channel without re-running the gesture/OT
    exchange.  The resumption secret itself never travels — both sides
    derive it from the agreed key (:mod:`repro.access.records`), so the
    grant only names the ticket and its lifetime.
    """

    ticket_id: str
    expires_at: float   # server wall-clock (unix seconds)
    lifetime_s: float
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class ResumeRequest:
    """Client -> server: open a secure channel from a live ticket.

    Sent as the *first* frame where a :class:`Hello` would go.
    ``client_nonce`` freshens the channel key schedule so records from
    an earlier resumption of the same ticket never replay into this
    one.  ``trace_context`` propagates the client's distributed trace
    exactly as on :class:`Hello` (optional trailing block; absent ==
    byte-identical to the pre-trace format).
    """

    sender: str
    ticket_id: str
    client_nonce: bytes
    version: int = PROTOCOL_VERSION
    trace_context: Optional[TraceContext] = None

    def wire_size_bytes(self) -> int:
        """Exact encoded payload size (codec reconciliation)."""
        return (
            1  # version
            + 2 + len(self.sender.encode("utf-8"))
            + 2 + len(self.ticket_id.encode("utf-8"))
            + 1 + len(self.client_nonce)
            + _trace_context_wire_bytes(self.trace_context)
        )


@dataclass(frozen=True)
class ResumeAccept:
    """Server -> client: the resumption is live.

    ``tag`` authenticates the server to the client: an HMAC over both
    nonces and the channel id under a key only a holder of the ticket's
    resumption secret can derive — a server that never saw the agreed
    key cannot produce it.
    """

    sender: str
    channel_id: str
    server_nonce: bytes
    tag: bytes
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class RecordFrame:
    """Either direction: one sealed record of the secure channel.

    ``seq`` is the per-direction record counter (explicit, strictly
    sequential — receivers reject replays and reorders outright);
    ``ciphertext`` is the keystream-encrypted payload; ``tag`` is the
    encrypt-then-MAC HMAC over the sequence number and ciphertext
    under the direction's MAC key.
    """

    seq: int
    ciphertext: bytes
    tag: bytes


@dataclass(frozen=True)
class RevokeNotice:
    """Client -> server: kill a ticket, authenticated out-of-channel.

    Sent as a connection's first frame (no secure channel required —
    a device that lost its session state must still be able to revoke).
    ``tag`` is an HMAC over the ticket id under the ticket's dedicated
    revocation key, so only a holder of the agreed key can revoke.
    """

    ticket_id: str
    tag: bytes
    version: int = PROTOCOL_VERSION


# -- replication messages (repro.replica) -------------------------------------


@dataclass(frozen=True)
class ReplDigest:
    """Either direction: one replication digest document.

    Sent as a connection's *first* frame it asks "where do you stand?":
    the receiver answers with its own :class:`ReplDigest` and closes.
    Also sent as the acknowledgement to a :class:`ReplPush`, carrying
    the receiver's post-ingest digest so the pusher learns what stuck.
    The payload is JSON (same argument as :class:`StatsResponse`): a
    per-origin high-water vector is an open-ended document that grows
    with fleet membership, not a fixed binary schema.
    """

    sender: str
    payload_json: str
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class ReplPull:
    """Either direction: "send me every entry my digest lacks".

    Sent as a connection's first frame with the requester's digest in
    the JSON payload; the receiver answers with one :class:`ReplPush`
    carrying only the missing per-origin suffixes (plus its own digest)
    and closes.  This is the anti-entropy catch-up path — a rebooted
    backend pulls the world's delta, never the world.
    """

    sender: str
    payload_json: str
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class ReplPush:
    """Either direction: a batch of replication log entries.

    Sent as a connection's first frame (eager push of fresh grants and
    revocations, or the gateway ferrying entries between backends) the
    receiver ingests every entry and acks with a :class:`ReplDigest`;
    sent as the answer to a :class:`ReplPull` it carries the requested
    suffix.  Entries are content-addressed JSON documents — the
    receiver recomputes each entry id and drops tampered or duplicate
    entries without poisoning the rest of the batch.
    """

    sender: str
    payload_json: str
    version: int = PROTOCOL_VERSION


# -- primitive writers / readers ---------------------------------------------


class _Writer:
    """Accumulates big-endian fields into one payload."""

    __slots__ = ("_parts",)

    def __init__(self):
        self._parts = []

    def u8(self, value: int) -> "_Writer":
        self._parts.append(struct.pack("!B", value))
        return self

    def u16(self, value: int) -> "_Writer":
        self._parts.append(struct.pack("!H", value))
        return self

    def u32(self, value: int) -> "_Writer":
        self._parts.append(struct.pack("!I", value))
        return self

    def u64(self, value: int) -> "_Writer":
        self._parts.append(struct.pack("!Q", value))
        return self

    def f64(self, value: float) -> "_Writer":
        self._parts.append(struct.pack("!d", value))
        return self

    def string(self, value: str) -> "_Writer":
        data = value.encode("utf-8")
        if len(data) > 0xFFFF:
            raise ProtocolError("string field over 65535 bytes")
        return self.u16(len(data)).raw(data)

    def blob8(self, data: bytes) -> "_Writer":
        if len(data) > 0xFF:
            raise ProtocolError("blob8 field over 255 bytes")
        return self.u8(len(data)).raw(data)

    def blob16(self, data: bytes) -> "_Writer":
        if len(data) > 0xFFFF:
            raise ProtocolError("blob16 field over 65535 bytes")
        return self.u16(len(data)).raw(data)

    def blob32(self, data: bytes) -> "_Writer":
        """u32-length blob: stats documents outgrow the u16 cap."""
        if len(data) > 0xFFFFFFFF:
            raise ProtocolError("blob32 field over 2**32-1 bytes")
        return self.u32(len(data)).raw(data)

    def uint(self, value: int) -> "_Writer":
        """Arbitrary-precision non-negative int: u16 length + minimal
        big-endian bytes (zero encodes as one zero byte, matching the
        ``max(1, ...)`` sizing in ``wire_size_bytes``)."""
        value = int(value)
        if value < 0:
            raise ProtocolError("cannot encode a negative integer")
        data = value.to_bytes(max(1, (value.bit_length() + 7) // 8), "big")
        return self.blob16(data)

    def bits(self, seq: BitSequence) -> "_Writer":
        """u32 bit count + MSB-first packed bytes."""
        return self.u32(len(seq)).raw(seq.to_bytes())

    def raw(self, data: bytes) -> "_Writer":
        self._parts.append(bytes(data))
        return self

    def payload(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Consumes a payload; every underrun or leftover is a DecodeError."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise DecodeError(
                f"payload truncated: wanted {n} bytes at offset "
                f"{self._pos}, have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos:self._pos + n]
        self._pos += n
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("!I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("!Q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("!d", self._take(8))[0]

    def string(self) -> str:
        data = self._take(self.u16())
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid utf-8 in string field: {exc}")

    def blob8(self) -> bytes:
        return self._take(self.u8())

    def blob16(self) -> bytes:
        return self._take(self.u16())

    def blob32(self) -> bytes:
        return self._take(self.u32())

    def uint(self) -> int:
        data = self.blob16()
        if not data:
            raise DecodeError("empty integer field")
        return int.from_bytes(data, "big")

    def bits(self) -> BitSequence:
        n_bits = self.u32()
        data = self._take((n_bits + 7) // 8)
        try:
            return BitSequence.from_bytes(data, n_bits)
        except Exception as exc:  # ShapeError and friends
            raise DecodeError(f"invalid bit sequence: {exc}")

    @property
    def remaining(self) -> int:
        """Unconsumed bytes — gates optional trailing blocks."""
        return len(self._data) - self._pos

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise DecodeError(
                f"{len(self._data) - self._pos} trailing bytes after payload"
            )


# -- per-message encoders -----------------------------------------------------


def _encode_announce_like(msg) -> bytes:
    w = _Writer().string(msg.sender).u16(len(msg.elements))
    for element in msg.elements:
        w.blob16(element)
    return w.payload()


def _read_element(r: _Reader) -> bytes:
    """One length-prefixed group element (opaque encoded bytes).

    For MODP elements the bytes are the minimal big-endian integer the
    old ``uint`` field carried — the frames are byte-identical — but
    the codec no longer interprets them: validation happens where the
    negotiated group decodes them.  An empty element can encode
    nothing in any group, so it is rejected here like the empty
    integer field always was.
    """
    data = r.blob16()
    if not data:
        raise DecodeError("empty group element field")
    return data


def _decode_announce(payload: bytes) -> OTAnnounce:
    r = _Reader(payload)
    sender = r.string()
    elements = tuple(_read_element(r) for _ in range(r.u16()))
    r.expect_end()
    return OTAnnounce(sender=sender, elements=elements)


def _decode_response(payload: bytes) -> OTResponse:
    r = _Reader(payload)
    sender = r.string()
    elements = tuple(_read_element(r) for _ in range(r.u16()))
    r.expect_end()
    return OTResponse(sender=sender, elements=elements)


def _encode_ciphertexts(msg: OTCiphertextBatch) -> bytes:
    w = _Writer().string(msg.sender).u16(len(msg.pairs))
    for pair in msg.pairs:
        w.blob16(pair.e0).blob16(pair.e1)
    return w.payload()


def _decode_ciphertexts(payload: bytes) -> OTCiphertextBatch:
    r = _Reader(payload)
    sender = r.string()
    pairs = tuple(
        OTCiphertexts(e0=r.blob16(), e1=r.blob16())
        for _ in range(r.u16())
    )
    r.expect_end()
    return OTCiphertextBatch(sender=sender, pairs=pairs)


def _encode_challenge(msg: ReconciliationChallenge) -> bytes:
    return (
        _Writer()
        .string(msg.sender)
        .bits(msg.sketch)
        .blob8(msg.nonce)
        .payload()
    )


def _decode_challenge(payload: bytes) -> ReconciliationChallenge:
    r = _Reader(payload)
    sender = r.string()
    sketch = r.bits()
    nonce = r.blob8()
    r.expect_end()
    return ReconciliationChallenge(sender=sender, sketch=sketch, nonce=nonce)


def _encode_confirmation(msg: ConfirmationResponse) -> bytes:
    return _Writer().string(msg.sender).blob8(msg.tag).payload()


def _decode_confirmation(payload: bytes) -> ConfirmationResponse:
    r = _Reader(payload)
    sender = r.string()
    tag = r.blob8()
    r.expect_end()
    return ConfirmationResponse(sender=sender, tag=tag)


#: Format marker opening the optional trace-context tail; a second
#: format would get a new marker value rather than a version bump.
_TRACE_CONTEXT_MARKER = 0x01

#: Format marker opening the optional group-id tail block (Hello only):
#: one codec string naming the negotiated OT group.
_GROUP_ID_MARKER = 0x02


def _write_trace_context(
    w: _Writer, context: Optional[TraceContext]
) -> _Writer:
    """Append the optional trace-context block; absent contexts write
    nothing, keeping the frame byte-identical to the pre-trace wire."""
    if context is None:
        return w
    return (
        w.u8(_TRACE_CONTEXT_MARKER)
        .string(context.trace_id)
        .string(context.span_id)
        .u8(1 if context.sampled else 0)
        .string(context.service)
    )


def _read_trace_context(r: _Reader) -> Optional[TraceContext]:
    """Consume the optional trace-context tail if present.

    A pre-trace peer never sends it (``remaining == 0`` -> ``None``);
    an unknown marker is a decode error, not silently misparsed fields.
    """
    if r.remaining == 0:
        return None
    marker = r.u8()
    if marker != _TRACE_CONTEXT_MARKER:
        raise DecodeError(
            f"unknown trace-context marker 0x{marker:02x}"
        )
    trace_id = r.string()
    span_id = r.string()
    sampled = bool(r.u8())
    service = r.string()
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        sampled=sampled,
        service=service,
    )


def _encode_hello(msg: Hello) -> bytes:
    w = (
        _Writer()
        .u8(msg.version)
        .string(msg.sender)
        .uint(msg.rng_seed)
        .u8(1 if msg.dynamic else 0)
    )
    _write_trace_context(w, msg.trace_context)
    if msg.group_id:
        w.u8(_GROUP_ID_MARKER).string(msg.group_id)
    return w.payload()


def _decode_hello(payload: bytes) -> Hello:
    r = _Reader(payload)
    version = r.u8()
    sender = r.string()
    rng_seed = r.uint()
    dynamic = bool(r.u8())
    # Optional trailing blocks, each at most once, any order: pre-trace
    # peers send none, default-group peers omit the group block.
    trace_context: Optional[TraceContext] = None
    group_id = ""
    while r.remaining:
        marker = r.u8()
        if marker == _TRACE_CONTEXT_MARKER:
            if trace_context is not None:
                raise DecodeError("duplicate trace-context block")
            trace_context = TraceContext(
                trace_id=r.string(),
                span_id=r.string(),
                sampled=bool(r.u8()),
                service=r.string(),
            )
        elif marker == _GROUP_ID_MARKER:
            if group_id:
                raise DecodeError("duplicate group-id block")
            group_id = r.string()
            if not group_id:
                raise DecodeError("empty group-id block")
        else:
            raise DecodeError(
                f"unknown trace-context marker 0x{marker:02x}"
            )
    return Hello(
        sender=sender,
        rng_seed=rng_seed,
        dynamic=dynamic,
        version=version,
        trace_context=trace_context,
        group_id=group_id,
    )


def _encode_accept(msg: Accept) -> bytes:
    return (
        _Writer()
        .u8(msg.version)
        .string(msg.sender)
        .string(msg.session_id)
        .u16(msg.key_length_bits)
        .f64(msg.eta)
        .payload()
    )


def _decode_accept(payload: bytes) -> Accept:
    r = _Reader(payload)
    version = r.u8()
    sender = r.string()
    session_id = r.string()
    key_length_bits = r.u16()
    eta = r.f64()
    r.expect_end()
    return Accept(
        sender=sender,
        session_id=session_id,
        key_length_bits=key_length_bits,
        eta=eta,
        version=version,
    )


def _encode_seed_grant(msg: SeedGrant) -> bytes:
    return _Writer().u16(msg.attempt).bits(msg.seed).payload()


def _decode_seed_grant(payload: bytes) -> SeedGrant:
    r = _Reader(payload)
    attempt = r.u16()
    seed = r.bits()
    r.expect_end()
    return SeedGrant(attempt=attempt, seed=seed)


def _encode_confirm_ack(msg: ConfirmAck) -> bytes:
    return _Writer().u8(1 if msg.ok else 0).blob8(msg.tag).payload()


def _decode_confirm_ack(payload: bytes) -> ConfirmAck:
    r = _Reader(payload)
    ok = bool(r.u8())
    tag = r.blob8()
    r.expect_end()
    return ConfirmAck(ok=ok, tag=tag)


def _encode_round_result(msg: RoundResult) -> bytes:
    return (
        _Writer().u8(1 if msg.success else 0).string(msg.reason).payload()
    )


def _decode_round_result(payload: bytes) -> RoundResult:
    r = _Reader(payload)
    success = bool(r.u8())
    reason = r.string()
    r.expect_end()
    return RoundResult(success=success, reason=reason)


def _encode_verdict(msg: Verdict) -> bytes:
    return (
        _Writer()
        .string(msg.state)
        .u16(msg.attempts)
        .string(msg.reason)
        .string(msg.session_id)
        .payload()
    )


def _decode_verdict(payload: bytes) -> Verdict:
    r = _Reader(payload)
    state = r.string()
    attempts = r.u16()
    reason = r.string()
    session_id = r.string()
    r.expect_end()
    return Verdict(
        state=state, attempts=attempts, reason=reason, session_id=session_id
    )


def _encode_error(msg: ErrorFrame) -> bytes:
    return _Writer().string(msg.code).string(msg.detail).payload()


def _encode_stats_request(msg: StatsRequest) -> bytes:
    return _Writer().u8(msg.version).payload()


def _decode_stats_request(payload: bytes) -> StatsRequest:
    r = _Reader(payload)
    version = r.u8()
    r.expect_end()
    return StatsRequest(version=version)


def _encode_stats_response(msg: StatsResponse) -> bytes:
    return (
        _Writer()
        .u8(msg.version)
        .blob32(msg.payload_json.encode("utf-8"))
        .payload()
    )


def _decode_stats_response(payload: bytes) -> StatsResponse:
    r = _Reader(payload)
    version = r.u8()
    data = r.blob32()
    r.expect_end()
    try:
        document = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DecodeError(f"invalid utf-8 in stats document: {exc}")
    return StatsResponse(payload_json=document, version=version)


def _encode_telemetry_request(msg: TelemetryRequest) -> bytes:
    return _Writer().u8(msg.version).u8(1 if msg.drain else 0).payload()


def _decode_telemetry_request(payload: bytes) -> TelemetryRequest:
    r = _Reader(payload)
    version = r.u8()
    drain = bool(r.u8())
    r.expect_end()
    return TelemetryRequest(drain=drain, version=version)


def _encode_telemetry_response(msg: TelemetryResponse) -> bytes:
    return (
        _Writer()
        .u8(msg.version)
        .blob32(msg.payload_json.encode("utf-8"))
        .payload()
    )


def _decode_telemetry_response(payload: bytes) -> TelemetryResponse:
    r = _Reader(payload)
    version = r.u8()
    data = r.blob32()
    r.expect_end()
    try:
        document = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DecodeError(f"invalid utf-8 in telemetry document: {exc}")
    return TelemetryResponse(payload_json=document, version=version)


def _encode_ticket_grant(msg: TicketGrant) -> bytes:
    return (
        _Writer()
        .u8(msg.version)
        .string(msg.ticket_id)
        .f64(msg.expires_at)
        .f64(msg.lifetime_s)
        .payload()
    )


def _decode_ticket_grant(payload: bytes) -> TicketGrant:
    r = _Reader(payload)
    version = r.u8()
    ticket_id = r.string()
    expires_at = r.f64()
    lifetime_s = r.f64()
    r.expect_end()
    return TicketGrant(
        ticket_id=ticket_id,
        expires_at=expires_at,
        lifetime_s=lifetime_s,
        version=version,
    )


def _encode_resume_request(msg: ResumeRequest) -> bytes:
    w = (
        _Writer()
        .u8(msg.version)
        .string(msg.sender)
        .string(msg.ticket_id)
        .blob8(msg.client_nonce)
    )
    return _write_trace_context(w, msg.trace_context).payload()


def _decode_resume_request(payload: bytes) -> ResumeRequest:
    r = _Reader(payload)
    version = r.u8()
    sender = r.string()
    ticket_id = r.string()
    client_nonce = r.blob8()
    trace_context = _read_trace_context(r)
    r.expect_end()
    return ResumeRequest(
        sender=sender,
        ticket_id=ticket_id,
        client_nonce=client_nonce,
        version=version,
        trace_context=trace_context,
    )


def _encode_resume_accept(msg: ResumeAccept) -> bytes:
    return (
        _Writer()
        .u8(msg.version)
        .string(msg.sender)
        .string(msg.channel_id)
        .blob8(msg.server_nonce)
        .blob8(msg.tag)
        .payload()
    )


def _decode_resume_accept(payload: bytes) -> ResumeAccept:
    r = _Reader(payload)
    version = r.u8()
    sender = r.string()
    channel_id = r.string()
    server_nonce = r.blob8()
    tag = r.blob8()
    r.expect_end()
    return ResumeAccept(
        sender=sender,
        channel_id=channel_id,
        server_nonce=server_nonce,
        tag=tag,
        version=version,
    )


def _encode_record(msg: RecordFrame) -> bytes:
    return (
        _Writer()
        .u64(msg.seq)
        .blob32(msg.ciphertext)
        .blob8(msg.tag)
        .payload()
    )


def _decode_record(payload: bytes) -> RecordFrame:
    r = _Reader(payload)
    seq = r.u64()
    ciphertext = r.blob32()
    tag = r.blob8()
    r.expect_end()
    return RecordFrame(seq=seq, ciphertext=ciphertext, tag=tag)


def _encode_revoke_notice(msg: RevokeNotice) -> bytes:
    return (
        _Writer()
        .u8(msg.version)
        .string(msg.ticket_id)
        .blob8(msg.tag)
        .payload()
    )


def _decode_revoke_notice(payload: bytes) -> RevokeNotice:
    r = _Reader(payload)
    version = r.u8()
    ticket_id = r.string()
    tag = r.blob8()
    r.expect_end()
    return RevokeNotice(ticket_id=ticket_id, tag=tag, version=version)


def _decode_error(payload: bytes) -> ErrorFrame:
    r = _Reader(payload)
    code = r.string()
    detail = r.string()
    r.expect_end()
    return ErrorFrame(code=code, detail=detail)


def _encode_repl(msg) -> bytes:
    return (
        _Writer()
        .u8(msg.version)
        .string(msg.sender)
        .blob32(msg.payload_json.encode("utf-8"))
        .payload()
    )


def _decode_repl(payload: bytes, cls):
    r = _Reader(payload)
    version = r.u8()
    sender = r.string()
    data = r.blob32()
    r.expect_end()
    try:
        document = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DecodeError(f"invalid utf-8 in replication document: {exc}")
    return cls(sender=sender, payload_json=document, version=version)


def _decode_repl_digest(payload: bytes) -> ReplDigest:
    return _decode_repl(payload, ReplDigest)


def _decode_repl_pull(payload: bytes) -> ReplPull:
    return _decode_repl(payload, ReplPull)


def _decode_repl_push(payload: bytes) -> ReplPush:
    return _decode_repl(payload, ReplPush)


_ENCODERS: Dict[type, Tuple[FrameType, Callable]] = {
    OTAnnounce: (FrameType.OT_ANNOUNCE, _encode_announce_like),
    OTResponse: (FrameType.OT_RESPONSE, _encode_announce_like),
    OTCiphertextBatch: (FrameType.OT_CIPHERTEXTS, _encode_ciphertexts),
    ReconciliationChallenge: (FrameType.RECON_CHALLENGE, _encode_challenge),
    ConfirmationResponse: (FrameType.CONFIRM_RESPONSE, _encode_confirmation),
    Hello: (FrameType.HELLO, _encode_hello),
    Accept: (FrameType.ACCEPT, _encode_accept),
    SeedGrant: (FrameType.SEED_GRANT, _encode_seed_grant),
    ConfirmAck: (FrameType.CONFIRM_ACK, _encode_confirm_ack),
    RoundResult: (FrameType.ROUND_RESULT, _encode_round_result),
    Verdict: (FrameType.VERDICT, _encode_verdict),
    ErrorFrame: (FrameType.ERROR, _encode_error),
    StatsRequest: (FrameType.STATS_REQUEST, _encode_stats_request),
    StatsResponse: (FrameType.STATS_RESPONSE, _encode_stats_response),
    TelemetryRequest: (
        FrameType.TELEMETRY_REQUEST, _encode_telemetry_request
    ),
    TelemetryResponse: (
        FrameType.TELEMETRY_RESPONSE, _encode_telemetry_response
    ),
    TicketGrant: (FrameType.TICKET_GRANT, _encode_ticket_grant),
    ResumeRequest: (FrameType.RESUME_REQUEST, _encode_resume_request),
    ResumeAccept: (FrameType.RESUME_ACCEPT, _encode_resume_accept),
    RecordFrame: (FrameType.RECORD, _encode_record),
    RevokeNotice: (FrameType.REVOKE_NOTICE, _encode_revoke_notice),
    ReplDigest: (FrameType.REPL_DIGEST, _encode_repl),
    ReplPull: (FrameType.REPL_PULL, _encode_repl),
    ReplPush: (FrameType.REPL_PUSH, _encode_repl),
}

_DECODERS: Dict[FrameType, Callable] = {
    FrameType.OT_ANNOUNCE: _decode_announce,
    FrameType.OT_RESPONSE: _decode_response,
    FrameType.OT_CIPHERTEXTS: _decode_ciphertexts,
    FrameType.RECON_CHALLENGE: _decode_challenge,
    FrameType.CONFIRM_RESPONSE: _decode_confirmation,
    FrameType.HELLO: _decode_hello,
    FrameType.ACCEPT: _decode_accept,
    FrameType.SEED_GRANT: _decode_seed_grant,
    FrameType.CONFIRM_ACK: _decode_confirm_ack,
    FrameType.ROUND_RESULT: _decode_round_result,
    FrameType.VERDICT: _decode_verdict,
    FrameType.ERROR: _decode_error,
    FrameType.STATS_REQUEST: _decode_stats_request,
    FrameType.STATS_RESPONSE: _decode_stats_response,
    FrameType.TELEMETRY_REQUEST: _decode_telemetry_request,
    FrameType.TELEMETRY_RESPONSE: _decode_telemetry_response,
    FrameType.TICKET_GRANT: _decode_ticket_grant,
    FrameType.RESUME_REQUEST: _decode_resume_request,
    FrameType.RESUME_ACCEPT: _decode_resume_accept,
    FrameType.RECORD: _decode_record,
    FrameType.REVOKE_NOTICE: _decode_revoke_notice,
    FrameType.REPL_DIGEST: _decode_repl_digest,
    FrameType.REPL_PULL: _decode_repl_pull,
    FrameType.REPL_PUSH: _decode_repl_push,
}


# -- public API ---------------------------------------------------------------


def encode_message(message) -> Frame:
    """Serialize any wire message into a typed frame."""
    try:
        frame_type, encoder = _ENCODERS[type(message)]
    except KeyError:
        raise ProtocolError(
            f"{type(message).__name__} is not a wire message"
        )
    return Frame(frame_type, encoder(message))


def decode_payload(frame: Frame):
    """Deserialize a frame back into its message object.

    Raises :class:`DecodeError` on unknown types, truncated payloads,
    and trailing bytes; message-level validation failures (empty
    announce, short nonce...) surface as :class:`ProtocolError` from
    the dataclass constructors.
    """
    try:
        frame_type = FrameType(frame.type)
    except ValueError:
        raise DecodeError(f"unknown frame type 0x{int(frame.type):02x}")
    return _DECODERS[frame_type](frame.payload)


def frame_to_bytes(frame: Frame) -> bytes:
    """Wrap a frame in the length-prefixed wire header."""
    body_len = len(frame.payload) + 1
    return struct.pack("!IB", body_len, int(frame.type)) + frame.payload


def read_frame(
    recv_exactly: Callable[[int], bytes],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Frame:
    """Read one frame via ``recv_exactly(n) -> bytes``.

    Enforces ``max_frame_bytes`` on the payload *before* reading the
    body, so an oversized (or corrupted-length) frame cannot balloon
    memory; the frame type is validated but the payload is returned
    raw (the proxy tampers with frames without decoding them).
    """
    header = recv_exactly(4)
    (body_len,) = struct.unpack("!I", header)
    if body_len < 1:
        raise DecodeError("frame body length must be >= 1")
    if body_len - 1 > max_frame_bytes:
        raise FrameTooLarge(
            f"incoming frame payload of {body_len - 1} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    body = recv_exactly(body_len)
    try:
        frame_type = FrameType(body[0])
    except ValueError:
        raise DecodeError(f"unknown frame type 0x{body[0]:02x}")
    return Frame(frame_type, body[1:])


class FrameAssembler:
    """Incremental frame decoder over one reusable receive buffer.

    The blocking :func:`read_frame` pulls exactly one frame per call
    and blocks inside ``recv``; an event loop instead gets *whatever
    bytes are currently readable* and must carve frames out of them.
    :class:`FrameAssembler` owns a single growable ``bytearray``:
    :meth:`read_into` fills it with ``socket.recv_into`` (no per-chunk
    ``bytes`` objects, no join), and :meth:`next_frame` parses complete
    frames in place, copying each payload out exactly once.

    Error taxonomy mirrors :func:`read_frame`:

    * :class:`FrameTooLarge` / zero-length body — the length prefix is
      poisoned, so the stream position is unrecoverable; the assembler
      marks itself :attr:`broken` and refuses further parsing;
    * unknown frame type — the frame was consumed whole, so the stream
      stays aligned; the :class:`DecodeError` is per-frame and
      :meth:`next_frame` may be called again.
    """

    __slots__ = ("max_frame_bytes", "broken", "_buf", "_start", "_end")

    def __init__(
        self,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        initial_capacity: int = 8192,
    ):
        self.max_frame_bytes = int(max_frame_bytes)
        self.broken = False
        self._buf = bytearray(max(HEADER_BYTES, int(initial_capacity)))
        self._start = 0   # first unparsed byte
        self._end = 0     # one past the last received byte

    @property
    def buffered(self) -> int:
        """Bytes received but not yet parsed into frames."""
        return self._end - self._start

    @property
    def capacity(self) -> int:
        """Current size of the reusable buffer (diagnostics)."""
        return len(self._buf)

    def _reserve(self, need: int) -> None:
        """Make at least ``need`` bytes of tail room, compacting (moving
        the unparsed window to offset 0) before growing."""
        if self._start == self._end:
            self._start = self._end = 0
        free = len(self._buf) - self._end
        if free >= need:
            return
        pending = self._end - self._start
        if self._start and len(self._buf) - pending >= need:
            # Slide the window down in place; no allocation.
            self._buf[:pending] = memoryview(self._buf)[
                self._start:self._end
            ]
            self._start, self._end = 0, pending
            return
        capacity = len(self._buf)
        while capacity - pending < need:
            capacity *= 2
        grown = bytearray(capacity)
        grown[:pending] = memoryview(self._buf)[self._start:self._end]
        self._buf = grown
        self._start, self._end = 0, pending

    def read_into(self, sock) -> int:
        """One non-blocking ``recv_into`` from ``sock``.

        Returns the byte count (0 = EOF).  Raises ``BlockingIOError``
        when the socket has nothing (callers loop until it does), and
        OS errors as-is — the event loop owns the typed-error mapping.
        """
        # Reserve enough for the frame in progress when its length is
        # already known, else a page; one recv per readiness event is
        # the fairness unit, the loop calls again while data remains.
        need = 4096
        if self._end - self._start >= 4:
            (body_len,) = struct.unpack_from("!I", self._buf, self._start)
            if 1 <= body_len - 1 <= self.max_frame_bytes:
                need = max(need, 4 + body_len - self.buffered)
        self._reserve(need)
        n = sock.recv_into(memoryview(self._buf)[self._end:])
        self._end += n
        return n

    def feed(self, data: bytes) -> int:
        """Append raw bytes (tests, non-socket sources)."""
        data = bytes(data)
        self._reserve(len(data))
        self._buf[self._end:self._end + len(data)] = data
        self._end += len(data)
        return len(data)

    def next_frame(self) -> Optional[Frame]:
        """Parse and return one complete frame, or ``None`` if the
        buffer holds only a partial frame."""
        if self.broken:
            raise DecodeError("frame stream is unrecoverable")
        avail = self._end - self._start
        if avail < 4:
            return None
        (body_len,) = struct.unpack_from("!I", self._buf, self._start)
        if body_len < 1:
            self.broken = True
            raise DecodeError("frame body length must be >= 1")
        if body_len - 1 > self.max_frame_bytes:
            self.broken = True
            raise FrameTooLarge(
                f"incoming frame payload of {body_len - 1} bytes exceeds "
                f"the {self.max_frame_bytes}-byte limit"
            )
        if avail < 4 + body_len:
            return None
        type_byte = self._buf[self._start + 4]
        payload = bytes(
            memoryview(self._buf)[
                self._start + 5:self._start + 4 + body_len
            ]
        )
        self._start += 4 + body_len
        try:
            frame_type = FrameType(type_byte)
        except ValueError:
            # The whole frame was consumed: the stream stays aligned.
            raise DecodeError(f"unknown frame type 0x{type_byte:02x}")
        return Frame(frame_type, payload)

    def drain(self) -> List[Frame]:
        """All currently complete frames (stops at the first partial)."""
        frames: List[Frame] = []
        while True:
            frame = self.next_frame()
            if frame is None:
                return frames
            frames.append(frame)


def framing_overhead(message) -> int:
    """Exact codec overhead of a protocol dataclass, in bytes.

    For the five :mod:`repro.protocol.messages` classes this is the
    difference between the encoded frame (header included) and the
    payload bytes that ``wire_size_bytes()`` models::

        len(frame_to_bytes(encode_message(m)))
            == m.wire_size_bytes() + framing_overhead(m)

    Per message: the 5-byte frame header, the sender string (u16 length
    + utf-8), and the per-field length prefixes (u16 per integer
    element, u16 per ciphertext half, u32 bit count for sketches, u8
    nonce/tag lengths).
    """
    sender_bytes = 2 + len(message.sender.encode("utf-8"))
    if isinstance(message, (OTAnnounce, OTResponse)):
        return HEADER_BYTES + sender_bytes + 2 + 2 * len(message.elements)
    if isinstance(message, OTCiphertextBatch):
        return HEADER_BYTES + sender_bytes + 2 + 4 * len(message.pairs)
    if isinstance(message, ReconciliationChallenge):
        return HEADER_BYTES + sender_bytes + 4 + 1
    if isinstance(message, ConfirmationResponse):
        return HEADER_BYTES + sender_bytes + 1
    raise ProtocolError(
        f"{type(message).__name__} has no wire_size_bytes() model"
    )
