"""A socket speaking the WaveKey frame codec.

:class:`FrameConnection` owns one TCP socket and turns it into a typed
message stream: ``send(message)`` / ``recv(timeout)`` with per-call
read deadlines, max-frame enforcement, and a write lock (the server's
worker thread and connection handler share one socket).  All failures
are typed :class:`repro.errors.TransportError` subclasses so callers
can retry transport faults without swallowing protocol errors.

When given a :class:`MetricsRegistry`, the connection emits labeled
frame/byte counters and encode/decode latency histograms per endpoint
(``{"endpoint": "client"}`` vs ``"server"``) — the wire-level half of
the observability story.
"""

from __future__ import annotations

import socket
import struct
import time
from typing import Optional, Tuple

from repro.errors import (
    ConnectionClosed,
    ConnectionTimeout,
    TransportError,
)
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    decode_payload,
    encode_message,
    frame_to_bytes,
    read_frame,
)
from repro.obs.metrics import MetricsRegistry

import threading

_UNSET = object()


def connect(
    host: str,
    port: int,
    timeout_s: float = 5.0,
    **kwargs,
) -> "FrameConnection":
    """Dial ``host:port`` and wrap the socket; connection failures and
    connect deadlines surface as typed transport errors."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
    except socket.timeout as exc:
        raise ConnectionTimeout(
            f"connect to {host}:{port} timed out after {timeout_s}s"
        ) from exc
    except OSError as exc:
        raise TransportError(f"connect to {host}:{port} failed: {exc}")
    return FrameConnection(sock, **kwargs)


class FrameConnection:
    """One framed, typed, metered TCP connection."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        read_timeout_s: float = 10.0,
        metrics: Optional[MetricsRegistry] = None,
        endpoint: str = "client",
    ):
        self._sock = sock
        self.max_frame_bytes = int(max_frame_bytes)
        self.read_timeout_s = float(read_timeout_s)
        self.metrics = metrics
        self.endpoint = endpoint
        self._labels = {"endpoint": endpoint}
        self._write_lock = threading.Lock()
        self._rx_buf = bytearray(4096)
        self._closed = False
        # Disable Nagle: the protocol is strict request/response, so
        # coalescing 40-byte frames only adds RTTs.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "FrameConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def peername(self) -> Tuple[str, int]:
        try:
            return self._sock.getpeername()
        except OSError:
            return ("?", 0)

    # -- sending -----------------------------------------------------------

    def send(self, message) -> None:
        """Encode and write one message (thread-safe)."""
        start = time.perf_counter()
        data = frame_to_bytes(encode_message(message))
        encode_s = time.perf_counter() - start
        try:
            with self._write_lock:
                self._sock.sendall(data)
        except socket.timeout as exc:
            raise ConnectionTimeout(f"send timed out: {exc}") from exc
        except OSError as exc:
            raise ConnectionClosed(f"send failed: {exc}") from exc
        if self.metrics is not None:
            self.metrics.counter(
                "net.frames_sent", labels=self._labels
            ).inc()
            self.metrics.counter(
                "net.bytes_sent", labels=self._labels
            ).inc(len(data))
            self.metrics.histogram(
                "net.encode_s", labels=self._labels
            ).observe(encode_s)

    # -- receiving ---------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        # recv_into a reusable per-connection buffer: no per-chunk bytes
        # objects and no b"".join — one copy out at the end, which the
        # decoders need as immutable bytes anyway.
        if len(self._rx_buf) < n:
            self._rx_buf = bytearray(max(n, 2 * len(self._rx_buf)))
        view = memoryview(self._rx_buf)
        got = 0
        while got < n:
            try:
                nread = self._sock.recv_into(view[got:n])
            except socket.timeout as exc:
                raise ConnectionTimeout(
                    f"read timed out after {self._sock.gettimeout()}s "
                    f"waiting for {n - got}/{n} bytes"
                ) from exc
            except OSError as exc:
                raise ConnectionClosed(f"read failed: {exc}") from exc
            if not nread:
                raise ConnectionClosed(
                    f"peer closed the connection with {n - got}/{n} "
                    "bytes outstanding"
                )
            got += nread
        return bytes(view[:n])

    def recv_frame(self, timeout_s: float = _UNSET) -> Frame:
        """Read one raw frame, enforcing the read deadline and frame
        size limit."""
        if timeout_s is _UNSET:
            timeout_s = self.read_timeout_s
        self._sock.settimeout(timeout_s)
        return read_frame(self._recv_exactly, self.max_frame_bytes)

    def recv(self, timeout_s: float = _UNSET):
        """Read and decode one message."""
        frame = self.recv_frame(timeout_s)
        start = time.perf_counter()
        message = decode_payload(frame)
        decode_s = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.counter(
                "net.frames_received", labels=self._labels
            ).inc()
            self.metrics.counter(
                "net.bytes_received", labels=self._labels
            ).inc(len(frame.payload) + struct.calcsize("!IB"))
            self.metrics.histogram(
                "net.decode_s", labels=self._labels
            ).observe(decode_s)
        return message


#: OutboundBuffer.append verdicts.
SEND_OK = "ok"
SEND_OVERFLOW = "overflow"
SEND_CLOSED = "closed"


class OutboundBuffer:
    """A bounded, thread-safe, non-blocking send queue for one socket.

    Producers (protocol workers, the event loop itself) ``append``
    encoded frames; the event loop ``flush``\\ es to the non-blocking
    socket whenever it reports writable, handling partial writes with a
    ``memoryview`` offset instead of re-slicing the buffer.

    The bound is the backpressure contract: a peer that stops reading
    accumulates at most ``max_pending_bytes`` server-side, after which
    ``append`` reports :data:`SEND_OVERFLOW` and the connection owner
    sheds the client with a wire error frame (``force=True`` bypasses
    the bound for exactly that terminal error frame).
    """

    def __init__(self, max_pending_bytes: int = 1 << 20):
        self.max_pending_bytes = int(max_pending_bytes)
        self._buf = bytearray()
        self._offset = 0
        self._closed = False
        self._lock = threading.Lock()

    @property
    def pending(self) -> int:
        """Bytes queued but not yet accepted by the kernel."""
        with self._lock:
            return len(self._buf) - self._offset

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def append(self, data: bytes, force: bool = False) -> str:
        """Queue ``data``; returns one of the ``SEND_*`` verdicts."""
        with self._lock:
            if self._closed:
                return SEND_CLOSED
            pending = len(self._buf) - self._offset
            if not force and pending + len(data) > self.max_pending_bytes:
                return SEND_OVERFLOW
            self._buf += data
            return SEND_OK

    def flush(self, sock: socket.socket) -> bool:
        """Write as much as the kernel accepts; True when drained."""
        with self._lock:
            while self._offset < len(self._buf):
                view = memoryview(self._buf)[self._offset:]
                try:
                    sent = sock.send(view)
                except (BlockingIOError, InterruptedError):
                    return False
                finally:
                    view.release()
                self._offset += sent
            # Fully drained: recycle the buffer in place.
            del self._buf[:]
            self._offset = 0
            return True

    def close(self) -> None:
        """Refuse further appends (the connection is going away)."""
        with self._lock:
            self._closed = True
