"""A socket speaking the WaveKey frame codec.

:class:`FrameConnection` owns one TCP socket and turns it into a typed
message stream: ``send(message)`` / ``recv(timeout)`` with per-call
read deadlines, max-frame enforcement, and a write lock (the server's
worker thread and connection handler share one socket).  All failures
are typed :class:`repro.errors.TransportError` subclasses so callers
can retry transport faults without swallowing protocol errors.

When given a :class:`MetricsRegistry`, the connection emits labeled
frame/byte counters and encode/decode latency histograms per endpoint
(``{"endpoint": "client"}`` vs ``"server"``) — the wire-level half of
the observability story.
"""

from __future__ import annotations

import socket
import struct
import time
from typing import Optional, Tuple

from repro.errors import (
    ConnectionClosed,
    ConnectionTimeout,
    TransportError,
)
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    decode_payload,
    encode_message,
    frame_to_bytes,
    read_frame,
)
from repro.obs.metrics import MetricsRegistry

import threading

_UNSET = object()


def connect(
    host: str,
    port: int,
    timeout_s: float = 5.0,
    **kwargs,
) -> "FrameConnection":
    """Dial ``host:port`` and wrap the socket; connection failures and
    connect deadlines surface as typed transport errors."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
    except socket.timeout as exc:
        raise ConnectionTimeout(
            f"connect to {host}:{port} timed out after {timeout_s}s"
        ) from exc
    except OSError as exc:
        raise TransportError(f"connect to {host}:{port} failed: {exc}")
    return FrameConnection(sock, **kwargs)


class FrameConnection:
    """One framed, typed, metered TCP connection."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        read_timeout_s: float = 10.0,
        metrics: Optional[MetricsRegistry] = None,
        endpoint: str = "client",
    ):
        self._sock = sock
        self.max_frame_bytes = int(max_frame_bytes)
        self.read_timeout_s = float(read_timeout_s)
        self.metrics = metrics
        self.endpoint = endpoint
        self._labels = {"endpoint": endpoint}
        self._write_lock = threading.Lock()
        self._closed = False
        # Disable Nagle: the protocol is strict request/response, so
        # coalescing 40-byte frames only adds RTTs.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "FrameConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def peername(self) -> Tuple[str, int]:
        try:
            return self._sock.getpeername()
        except OSError:
            return ("?", 0)

    # -- sending -----------------------------------------------------------

    def send(self, message) -> None:
        """Encode and write one message (thread-safe)."""
        start = time.perf_counter()
        data = frame_to_bytes(encode_message(message))
        encode_s = time.perf_counter() - start
        try:
            with self._write_lock:
                self._sock.sendall(data)
        except socket.timeout as exc:
            raise ConnectionTimeout(f"send timed out: {exc}") from exc
        except OSError as exc:
            raise ConnectionClosed(f"send failed: {exc}") from exc
        if self.metrics is not None:
            self.metrics.counter(
                "net.frames_sent", labels=self._labels
            ).inc()
            self.metrics.counter(
                "net.bytes_sent", labels=self._labels
            ).inc(len(data))
            self.metrics.histogram(
                "net.encode_s", labels=self._labels
            ).observe(encode_s)

    # -- receiving ---------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout as exc:
                raise ConnectionTimeout(
                    f"read timed out after {self._sock.gettimeout()}s "
                    f"waiting for {remaining}/{n} bytes"
                ) from exc
            except OSError as exc:
                raise ConnectionClosed(f"read failed: {exc}") from exc
            if not chunk:
                raise ConnectionClosed(
                    f"peer closed the connection with {remaining}/{n} "
                    "bytes outstanding"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv_frame(self, timeout_s: float = _UNSET) -> Frame:
        """Read one raw frame, enforcing the read deadline and frame
        size limit."""
        if timeout_s is _UNSET:
            timeout_s = self.read_timeout_s
        self._sock.settimeout(timeout_s)
        return read_frame(self._recv_exactly, self.max_frame_bytes)

    def recv(self, timeout_s: float = _UNSET):
        """Read and decode one message."""
        frame = self.recv_frame(timeout_s)
        start = time.perf_counter()
        message = decode_payload(frame)
        decode_s = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.counter(
                "net.frames_received", labels=self._labels
            ).inc()
            self.metrics.counter(
                "net.bytes_received", labels=self._labels
            ).inc(len(frame.payload) + struct.calcsize("!IB"))
            self.metrics.histogram(
                "net.decode_s", labels=self._labels
            ).observe(decode_s)
        return message
