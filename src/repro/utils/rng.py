"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).
Components that spawn sub-simulations derive *named* child generators so
that adding a new consumer of randomness never perturbs the streams of
existing ones — a standard requirement for reproducible distributed-system
simulations.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` to a :class:`numpy.random.Generator`.

    ``None`` yields a generator seeded from OS entropy; an ``int`` yields a
    deterministic generator; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def derive_seed(base_seed: int, *names: object) -> int:
    """Derive a stable 63-bit child seed from a base seed and a name path.

    The derivation hashes the textual path so it is stable across runs,
    Python versions, and process boundaries (unlike ``hash()``).
    """
    material = ":".join([str(int(base_seed))] + [str(n) for n in names])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def child_rng(rng: RngLike, *names: object) -> np.random.Generator:
    """Return a child generator for the component identified by ``names``.

    When ``rng`` is an integer seed the child is fully deterministic via
    :func:`derive_seed`.  When ``rng`` is already a generator we spawn from
    it (deterministic given the parent state).  ``None`` gives fresh
    entropy.
    """
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(derive_seed(int(rng), *names))
    if isinstance(rng, np.random.Generator):
        return rng.spawn(1)[0]
    return np.random.default_rng()
