"""Bit-sequence handling.

Key seeds, preliminary keys, and final keys are all sequences of bits.  We
represent them as :class:`BitSequence`, a thin immutable wrapper around a
``numpy`` ``uint8`` array constrained to {0, 1}.  The wrapper keeps the
protocol code readable (``seed[i]``, ``a ^ b``, ``a.mismatch_rate(b)``)
while remaining cheap to convert to ``bytes`` for hashing and encryption.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

import numpy as np

from repro.errors import ShapeError

BitsLike = Union["BitSequence", np.ndarray, bytes, Iterable[int]]


def _coerce_bit_array(bits: BitsLike) -> np.ndarray:
    if isinstance(bits, BitSequence):
        return bits.array
    if isinstance(bits, (bytes, bytearray)):
        return bytes_to_bits(bytes(bits))
    arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
    arr = arr.astype(np.uint8, copy=True).ravel()
    if arr.size and arr.max(initial=0) > 1:
        raise ShapeError("bit array contains values outside {0, 1}")
    return arr


class BitSequence:
    """An immutable sequence of bits with protocol-friendly helpers."""

    __slots__ = ("_bits",)

    def __init__(self, bits: BitsLike = ()):
        arr = _coerce_bit_array(bits)
        arr.setflags(write=False)
        self._bits = arr

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, n: int) -> "BitSequence":
        """All-zero sequence of length ``n``."""
        return cls(np.zeros(int(n), dtype=np.uint8))

    @classmethod
    def random(cls, n: int, rng: np.random.Generator) -> "BitSequence":
        """Uniformly random sequence of length ``n`` drawn from ``rng``."""
        return cls(rng.integers(0, 2, size=int(n), dtype=np.uint8))

    @classmethod
    def from_int(cls, value: int, width: int) -> "BitSequence":
        """Big-endian ``width``-bit encoding of a non-negative integer."""
        return cls(int_to_bits(value, width))

    @classmethod
    def from_bytes(cls, data: bytes, n_bits: int = None) -> "BitSequence":
        """Decode ``data`` MSB-first, optionally truncating to ``n_bits``."""
        bits = bytes_to_bits(data)
        if n_bits is not None:
            if n_bits > bits.size:
                raise ShapeError(
                    f"requested {n_bits} bits but data only holds {bits.size}"
                )
            bits = bits[:n_bits]
        return cls(bits)

    # -- views -------------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The underlying read-only ``uint8`` array."""
        return self._bits

    def to_bytes(self) -> bytes:
        """MSB-first packing; the final byte is zero-padded."""
        return bits_to_bytes(self._bits)

    def to_int(self) -> int:
        """Interpret the sequence as a big-endian unsigned integer."""
        return bits_to_int(self._bits)

    def to01(self) -> str:
        """Render as a '0101...' string (handy in logs and tests)."""
        return "".join("1" if b else "0" for b in self._bits)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return int(self._bits.size)

    def __iter__(self) -> Iterator[int]:
        return (int(b) for b in self._bits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return BitSequence(self._bits[index])
        return int(self._bits[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitSequence):
            return NotImplemented
        return self._bits.shape == other._bits.shape and bool(
            np.all(self._bits == other._bits)
        )

    def __hash__(self) -> int:
        return hash((len(self), self.to_bytes()))

    def __repr__(self) -> str:
        preview = self.to01() if len(self) <= 32 else self.to01()[:29] + "..."
        return f"BitSequence(len={len(self)}, bits={preview})"

    # -- operations ----------------------------------------------------------

    def __xor__(self, other: "BitSequence") -> "BitSequence":
        if len(self) != len(other):
            raise ShapeError(
                f"XOR of mismatched lengths: {len(self)} vs {len(other)}"
            )
        return BitSequence(np.bitwise_xor(self._bits, other.array))

    def __add__(self, other: "BitSequence") -> "BitSequence":
        """Concatenation (the paper's ``||`` operator)."""
        return BitSequence(np.concatenate([self._bits, other.array]))

    def concat(self, *others: "BitSequence") -> "BitSequence":
        """Concatenate ``self`` with every sequence in ``others``."""
        parts = [self._bits] + [o.array for o in others]
        return BitSequence(np.concatenate(parts))

    def hamming_distance(self, other: "BitSequence") -> int:
        """Number of positions where the two sequences differ."""
        if len(self) != len(other):
            raise ShapeError(
                f"hamming distance of mismatched lengths: "
                f"{len(self)} vs {len(other)}"
            )
        return int(np.count_nonzero(self._bits != other.array))

    def mismatch_rate(self, other: "BitSequence") -> float:
        """Fraction of differing positions (0.0 for identical sequences)."""
        if len(self) == 0 and len(other) == 0:
            return 0.0
        return self.hamming_distance(other) / len(self)

    def popcount(self) -> int:
        """Number of one-bits."""
        return int(np.count_nonzero(self._bits))


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Big-endian bit array of ``value`` padded/constrained to ``width``."""
    value = int(value)
    if value < 0:
        raise ShapeError("cannot encode a negative integer as bits")
    if width < 0:
        raise ShapeError("bit width must be non-negative")
    if value >> width:
        raise ShapeError(f"{value} does not fit in {width} bits")
    return np.array(
        [(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8
    )


def bits_to_int(bits: np.ndarray) -> int:
    """Big-endian integer value of a bit array."""
    value = 0
    for b in np.asarray(bits, dtype=np.uint8).ravel():
        value = (value << 1) | int(b)
    return value


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Unpack bytes MSB-first into a ``uint8`` bit array."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack an MSB-first bit array into bytes (zero-padding the tail)."""
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    return np.packbits(arr).tobytes()


def hamming_distance(a: BitsLike, b: BitsLike) -> int:
    """Hamming distance between two bit-like sequences."""
    return BitSequence(a).hamming_distance(BitSequence(b))


def mismatch_rate(a: BitsLike, b: BitsLike) -> float:
    """Bit-mismatch rate between two bit-like sequences."""
    return BitSequence(a).mismatch_rate(BitSequence(b))
