"""Shared utilities: seeded RNG plumbing, bit-sequence handling, validation."""

from repro.utils.bits import (
    BitSequence,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    mismatch_rate,
)
from repro.utils.rng import child_rng, derive_seed, ensure_rng
from repro.utils.validation import (
    check_matrix,
    check_positive,
    check_probability,
    check_range,
)

__all__ = [
    "BitSequence",
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "hamming_distance",
    "int_to_bits",
    "mismatch_rate",
    "child_rng",
    "derive_seed",
    "ensure_rng",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_range",
]
