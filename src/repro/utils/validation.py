"""Argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` /
:class:`repro.errors.ShapeError` with messages that name the offending
parameter, so misuse of the public API fails fast and legibly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError


def check_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Validate that ``value`` is positive (or non-negative)."""
    value = float(value)
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value}")
    if allow_zero:
        if value < 0:
            raise ConfigurationError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    value = float(value)
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value}"
        )
    return value


def check_matrix(
    name: str, matrix: np.ndarray, shape: Tuple[int, ...]
) -> np.ndarray:
    """Validate the shape of ``matrix`` (``-1`` entries match anything)."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != len(shape):
        raise ShapeError(
            f"{name} must have {len(shape)} dimensions, got {arr.ndim}"
        )
    for axis, (actual, expected) in enumerate(zip(arr.shape, shape)):
        if expected != -1 and actual != expected:
            raise ShapeError(
                f"{name} has shape {arr.shape}, expected {shape} "
                f"(mismatch on axis {axis})"
            )
    if not np.all(np.isfinite(arr)):
        raise ShapeError(f"{name} contains non-finite values")
    return arr
