"""Device spoofing by random key-seed guessing (paper SV-B.1).

The adversary impersonates the RFID server with a uniformly random seed
guess; the attack succeeds when the guess lands within the ECC radius of
the mobile device's seed.  Eq. 4 gives the closed form; the Monte-Carlo
harness here verifies it empirically against real seeds produced by the
trained pipeline.
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import AttackOutcome, seed_within_ecc_radius
from repro.core.hyperparams import random_guess_success
from repro.utils.bits import BitSequence
from repro.utils.rng import ensure_rng


class RandomGuessAttack:
    """Monte-Carlo random-guessing harness."""

    def __init__(self, eta: float):
        self.eta = float(eta)

    def analytic_success(self, seed_length: int) -> float:
        """Eq. 4 at this attack's operating point."""
        return random_guess_success(seed_length, self.eta)

    def run(
        self,
        victim_seeds: Sequence[BitSequence],
        guesses_per_victim: int = 100,
        rng=None,
    ) -> AttackOutcome:
        """Guess uniformly against each victim seed."""
        rng = ensure_rng(rng)
        outcome = AttackOutcome(attack="random-guessing")
        for seed in victim_seeds:
            for _ in range(guesses_per_victim):
                guess = BitSequence.random(len(seed), rng)
                outcome.add(seed_within_ecc_radius(guess, seed, self.eta))
        return outcome
