"""Shared attack-result types.

All attack harnesses report :class:`AttackTrial` records; the benchmark
layer aggregates them into success rates comparable with the paper's
numbers.  The uniform success criterion for device-spoofing attacks is
the paper's: an attack succeeds when the adversary's inferred key-seed
falls within the ECC correction radius ``eta`` of the victim's seed
(SV-B.1), i.e. the reconciliation step would converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.utils.bits import BitSequence


@dataclass(frozen=True)
class AttackTrial:
    """One attack attempt against one key-establishment instance."""

    succeeded: bool
    mismatch_rate: Optional[float] = None
    detail: str = ""


@dataclass
class AttackOutcome:
    """Aggregate over many attack trials."""

    attack: str
    trials: List[AttackTrial] = field(default_factory=list)

    def add(self, trial: AttackTrial) -> None:
        self.trials.append(trial)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def n_successes(self) -> int:
        return sum(1 for t in self.trials if t.succeeded)

    @property
    def success_rate(self) -> float:
        if not self.trials:
            raise ConfigurationError(f"{self.attack}: no trials recorded")
        return self.n_successes / self.n_trials

    def mismatch_rates(self) -> List[float]:
        return [
            t.mismatch_rate
            for t in self.trials
            if t.mismatch_rate is not None
        ]

    def __repr__(self) -> str:
        return (
            f"AttackOutcome({self.attack}: {self.n_successes}/"
            f"{self.n_trials} succeeded)"
        )


def seed_within_ecc_radius(
    attacker_seed: BitSequence, victim_seed: BitSequence, eta: float
) -> AttackTrial:
    """Apply the uniform spoofing success criterion."""
    rate = attacker_seed.mismatch_rate(victim_seed)
    return AttackTrial(succeeded=rate <= eta, mismatch_rate=rate)
