"""Device spoofing by gesture mimicking (paper SV-B.2, SVI-E.1).

The adversary watches the victim's gesture and replays it with their own
mobile device; the replicated motion passes through the *real* IMU
acquisition + key-seed pipeline, so every imperfection of human imitation
(modelled in :mod:`repro.gesture.mimicry`) propagates into seed mismatch.

The paper's evaluation: six victims x 20 gestures each, mimicked by the
other five volunteers — 600 instances, zero successes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attacks.base import (
    AttackOutcome,
    AttackTrial,
    seed_within_ecc_radius,
)
from repro.core.pipeline import KeySeedPipeline
from repro.errors import SimulationError
from repro.gesture import (
    GestureTrajectory,
    MimicryModel,
    VolunteerProfile,
    mimic_trajectory,
    sample_gesture,
)
from repro.imu import MobileDeviceProfile, MobileIMU, calibrate_imu_record
from repro.rfid import (
    ChannelGeometry,
    EnvironmentProfile,
    RFIDReader,
    TagProfile,
    process_rfid_record,
)
from repro.utils.bits import BitSequence
from repro.utils.rng import child_rng, ensure_rng


@dataclass
class GestureMimicryAttack:
    """Mimicry harness bound to a deployment's hardware and models."""

    pipeline: KeySeedPipeline
    eta: float
    device: MobileDeviceProfile
    tag: TagProfile
    environment: EnvironmentProfile
    geometry: ChannelGeometry = None
    mimicry_model: MimicryModel = MimicryModel()

    def __post_init__(self):
        if self.geometry is None:
            self.geometry = ChannelGeometry()

    def victim_server_seed(
        self, victim_trajectory: GestureTrajectory, rng
    ) -> BitSequence:
        """The seed the RFID server derives from the victim's gesture."""
        channel = self.environment.build_channel(
            self.tag, self.geometry, dynamic=False,
            rng=child_rng(rng, "walkers"),
        )
        record = RFIDReader().record_gesture(
            channel, victim_trajectory, rng=child_rng(rng, "rfid")
        )
        return self.pipeline.rfid_keyseed(process_rfid_record(record))

    def attacker_seed(
        self,
        victim_trajectory: GestureTrajectory,
        imitator: VolunteerProfile,
        rng,
    ) -> BitSequence:
        """The seed the adversary derives from their imitation."""
        mimic = mimic_trajectory(
            victim_trajectory,
            imitator,
            model=self.mimicry_model,
            rng=child_rng(rng, "mimic"),
        )
        imu = MobileIMU(self.device)
        record = imu.record_gesture(mimic, rng=child_rng(rng, "imu"))
        return self.pipeline.imu_keyseed(calibrate_imu_record(record))

    def run(
        self,
        victims: Sequence[VolunteerProfile],
        imitators: Sequence[VolunteerProfile] = None,
        gestures_per_victim: int = 20,
        rng=None,
    ) -> AttackOutcome:
        """Reproduce the SVI-E.1 campaign.

        Every victim performs ``gestures_per_victim`` gestures; each
        gesture is mimicked by every listed imitator other than the
        victim (the paper's five-mimic setup).
        """
        rng = ensure_rng(rng)
        outcome = AttackOutcome(attack="gesture-mimicry")
        for vi, victim in enumerate(victims):
            others = [
                p for p in (imitators or victims) if p.name != victim.name
            ]
            for gi in range(gestures_per_victim):
                g_rng = child_rng(rng, "trial", vi, gi)
                trajectory = sample_gesture(
                    victim, child_rng(g_rng, "gesture")
                )
                try:
                    victim_seed = self.victim_server_seed(trajectory, g_rng)
                except SimulationError:
                    continue
                for mi, imitator in enumerate(others):
                    try:
                        seed = self.attacker_seed(
                            trajectory, imitator, child_rng(g_rng, "imit", mi)
                        )
                    except SimulationError as exc:
                        # The imitation was too feeble to even trigger
                        # onset detection: a failed attempt.
                        outcome.add(
                            AttackTrial(
                                succeeded=False,
                                detail=f"acquisition failed: {exc}",
                            )
                        )
                        continue
                    outcome.add(
                        seed_within_ecc_radius(seed, victim_seed, self.eta)
                    )
        return outcome
