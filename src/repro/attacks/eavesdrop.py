"""Eavesdropping attack (paper SV-A).

A passive adversary records every wire message of a key establishment
and then tries the strongest generic strategy available to it: guess
the two key-seeds and attempt to decrypt the OT ciphertexts.  Without
either party's ephemeral OT exponents the symmetric keys protecting the
transferred sequences are unguessable (they are hashes of Diffie-Hellman
values), so the recovered "key" is uncorrelated with the real one — the
property the eavesdropping unit/benchmark tests assert quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.crypto.group import Group
from repro.crypto.symmetric import xor_cipher
from repro.protocol.messages import (
    ConfirmationResponse,
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    ReconciliationChallenge,
)
from repro.utils.bits import BitSequence
from repro.utils.rng import ensure_rng


@dataclass
class Eavesdropper:
    """Passive transcript collector + best-effort key-recovery attempt."""

    group: Group
    transcript: List[Tuple[str, str, object]] = field(default_factory=list)

    def tap(self, sender: str, receiver: str, message) -> None:
        """Transport tap: record everything (install via
        ``SimulatedTransport(taps=[eavesdropper.tap])``)."""
        self.transcript.append((sender, receiver, message))

    # -- analysis ----------------------------------------------------------------

    def messages_of_type(self, message_type) -> List[object]:
        return [
            m for _, _, m in self.transcript if isinstance(m, message_type)
        ]

    @property
    def observed_sketch(self) -> Optional[BitSequence]:
        challenges = self.messages_of_type(ReconciliationChallenge)
        return challenges[0].sketch if challenges else None

    def attempt_key_recovery(
        self, segment_bits: int, rng=None
    ) -> Optional[BitSequence]:
        """Best-effort recovery: decrypt every observed OT ciphertext
        with keys derived from random exponents (the adversary's only
        option — it never learned ``a_i`` or ``b_i``) and assemble a key
        the way the parties do.

        Returns the forged key, which callers compare against the real
        one; with overwhelming probability every recovered segment is
        garbage.
        """
        rng = ensure_rng(rng)
        batches = self.messages_of_type(OTCiphertextBatch)
        responses = {
            m.sender: m for m in self.messages_of_type(OTResponse)
        }
        if not batches or not responses:
            return None
        parts: List[BitSequence] = []
        for batch in batches:
            # Pair each ciphertext batch with the response that drove it
            # (sent by the opposite party).
            peer_response = next(
                (r for s, r in responses.items() if s != batch.sender), None
            )
            if peer_response is None:
                return None
            for pair, element in zip(
                batch.pairs, peer_response.elements
            ):
                # The adversary knows M_b but not a; it can only guess an
                # exponent and pray.
                guess = self.group.random_exponent(rng)
                key = self.group.hash_element(
                    self.group.exp(self.group.decode_element(element), guess)
                )
                plain = xor_cipher(pair.e0, key, b"ot0")
                parts.append(BitSequence.from_bytes(plain, segment_bits))
        if not parts:
            return None
        return parts[0].concat(*parts[1:])

    @property
    def n_messages(self) -> int:
        return len(self.transcript)

    def observed_message_types(self) -> List[str]:
        return [type(m).__name__ for _, _, m in self.transcript]
