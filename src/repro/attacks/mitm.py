"""Man-in-the-Middle attack (paper SV-C).

The adversary relays (and may modify) every message between the two
parties.  Because it knows neither side's OT exponents, any substitution
desynchronizes the transferred sequences: the preliminary keys diverge
beyond the ECC radius and the HMAC confirmation fails, which both kills
the key establishment and exposes the attack.

Three MitM strategies are provided:

* ``passive`` — pure relay with added latency (tests the deadline);
* ``substitute_ciphertexts`` — replace OT ciphertexts with encryptions
  of adversary-chosen sequences under guessed keys;
* ``substitute_announce`` — replace ``M_A`` with group elements whose
  exponents the adversary knows (the classic DH-MitM move, which OT's
  structure turns into garbage secrets rather than a shared key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.crypto.hashes import hash_group_element
from repro.crypto.group import Group
from repro.crypto.ot import OTCiphertexts
from repro.crypto.symmetric import xor_cipher
from repro.protocol.messages import (
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
)
from repro.utils.rng import ensure_rng


@dataclass
class MitmAttacker:
    """Interceptor factory for :class:`SimulatedTransport`."""

    group: Group
    strategy: str = "substitute_ciphertexts"
    relay_delay_s: float = 0.004
    rng: object = None
    modified_messages: int = field(default=0, init=False)
    _exponents: dict = field(default_factory=dict, init=False)

    def __post_init__(self):
        valid = {
            "passive",
            "substitute_ciphertexts",
            "substitute_announce",
        }
        if self.strategy not in valid:
            raise ValueError(f"unknown MitM strategy {self.strategy!r}")
        self.rng = ensure_rng(self.rng)

    # The SimulatedTransport interceptor signature.
    def intercept(
        self, sender: str, receiver: str, message
    ) -> Tuple[object, float]:
        if self.strategy == "passive":
            return message, self.relay_delay_s
        if (
            self.strategy == "substitute_announce"
            and isinstance(message, OTAnnounce)
        ):
            return self._forge_announce(message), self.relay_delay_s
        if (
            self.strategy == "substitute_ciphertexts"
            and isinstance(message, OTCiphertextBatch)
        ):
            return self._forge_ciphertexts(message), self.relay_delay_s
        return message, self.relay_delay_s

    def _forge_announce(self, message: OTAnnounce) -> OTAnnounce:
        """Replace every announce element with one whose exponent the
        adversary knows."""
        forged = []
        for i in range(len(message.elements)):
            exponent = self.group.random_exponent(self.rng)
            self._exponents[(message.sender, i)] = exponent
            forged.append(self.group.encode_element(self.group.power(exponent)))
        self.modified_messages += 1
        return OTAnnounce(sender=message.sender, elements=tuple(forged))

    def _forge_ciphertexts(
        self, message: OTCiphertextBatch
    ) -> OTCiphertextBatch:
        """Replace the transferred sequences with adversary-chosen bits
        encrypted under guessed keys."""
        forged = []
        for pair in message.pairs:
            n = len(pair.e0)
            chosen = bytes(
                self.rng.integers(0, 256, size=n, dtype=np.uint8)
            )
            key = hash_group_element(self.group.random_exponent(self.rng))
            forged.append(
                OTCiphertexts(
                    e0=xor_cipher(chosen, key, b"ot0"),
                    e1=xor_cipher(chosen, key, b"ot1"),
                )
            )
        self.modified_messages += 1
        return OTCiphertextBatch(sender=message.sender, pairs=tuple(forged))
