"""Device spoofing by camera-aided data recovery (paper SV-B.3, SVI-E.2).

The adversary films the victim's hand, tracks its position per frame,
double-differentiates to estimate the linear accelerations the victim's
IMU measured, and runs the estimate through the real key-seed pipeline.
Two strategies from the paper:

* **Remote recording** (ALPCAM 260 FPS + Complexer-YOLO 3-D tracking on
  a backend server): high tracking fidelity, but streaming + server
  processing latency pushes the forged announce message past the ``tau``
  deadline.
* **In-situ recording** (Pixel 8 + YOloV5 on-device): meets the deadline
  but only tracks the hand in 2-D; the missing depth axis and coarser
  tracking noise destroy the acceleration estimate.

The physics that defeats both is explicit here: position-tracking noise
``sigma_p`` at frame interval ``dt`` becomes acceleration noise of order
``sigma_p / dt^2`` after double differencing — centimetre-level jitter
at camera frame rates swamps the m/s^2-scale gesture signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import savgol_filter

from repro.attacks.base import AttackOutcome, AttackTrial, seed_within_ecc_radius
from repro.core.pipeline import KeySeedPipeline
from repro.errors import SimulationError
from repro.gesture import GestureTrajectory
from repro.imu.calibration import detect_motion_onset
from repro.utils.rng import child_rng, ensure_rng


@dataclass(frozen=True)
class CameraProfile:
    """An adversarial camera + tracking stack."""

    name: str
    frame_rate_hz: float
    tracking_noise_m: float  # per-axis position noise of the tracker
    tracks_depth: bool  # 3-D (Complexer-YOLO) vs 2-D (YOLOv5)
    processing_latency_s: float  # capture -> usable key-seed latency
    #: Systematic scale error of monocular size-based depth inference
    #: (only relevant when tracks_depth is False and the attacker guesses
    #: depth motion from apparent size).
    depth_guess_noise_m: float = 0.05

    @property
    def dt(self) -> float:
        return 1.0 / self.frame_rate_hz


#: SVI-E.2 remote strategy: 260 FPS webcam, 3-D tracking on a server.
REMOTE_ALPCAM = CameraProfile(
    name="remote-alpcam-complexer-yolo",
    frame_rate_hz=260.0,
    tracking_noise_m=0.004,
    tracks_depth=True,
    processing_latency_s=1.8,
)

#: SVI-E.2 in-situ strategy: phone camera, 2-D on-device tracking.
IN_SITU_PIXEL8 = CameraProfile(
    name="insitu-pixel8-yolov5",
    frame_rate_hz=60.0,
    tracking_noise_m=0.012,
    tracks_depth=False,
    processing_latency_s=0.08,
)


class CameraRecoveryAttack:
    """Full camera-based IMU-data recovery attack."""

    def __init__(
        self,
        pipeline: KeySeedPipeline,
        eta: float,
        camera: CameraProfile,
        announce_deadline_s: float = 2.12,
        imu_rate_hz: float = 100.0,
        window_s: float = 2.0,
    ):
        self.pipeline = pipeline
        self.eta = float(eta)
        self.camera = camera
        self.announce_deadline_s = float(announce_deadline_s)
        self.imu_rate_hz = float(imu_rate_hz)
        self.window_s = float(window_s)

    # -- observation model -------------------------------------------------------

    def observe_positions(
        self, trajectory: GestureTrajectory, rng
    ) -> tuple:
        """Track the hand over the whole gesture timeline.

        Returns ``(timestamps, positions)`` where the positions carry
        the tracker's noise and — for 2-D trackers — a much noisier
        depth axis reconstructed from apparent object size.
        """
        rng = ensure_rng(rng)
        n = int(np.floor(trajectory.total_s * self.camera.frame_rate_hz))
        if n < 32:
            raise SimulationError("gesture too short for camera tracking")
        t = np.arange(n) * self.camera.dt
        true_pos = trajectory.position(t)
        noise = rng.normal(
            0.0, self.camera.tracking_noise_m, size=true_pos.shape
        )
        observed = true_pos + noise
        if not self.camera.tracks_depth:
            # Depth (the camera's optical axis, aligned here with x for a
            # side-on view) is only inferable from apparent size: heavy
            # low-frequency noise replaces the true depth trace.
            depth_noise = rng.normal(
                0.0, self.camera.depth_guess_noise_m, size=n
            )
            smoothing = max(
                5, 2 * int(self.camera.frame_rate_hz * 0.15) + 1
            )
            depth_noise = savgol_filter(depth_noise, smoothing, 2)
            observed[:, 0] = true_pos[:, 0].mean() + depth_noise * 10.0
        return t, observed

    def estimate_acceleration_matrix(
        self, trajectory: GestureTrajectory, rng
    ) -> np.ndarray:
        """Reconstruct the victim's A matrix from camera frames.

        Interpolates the tracked positions to the IMU rate, detects the
        motion onset the same way the victim's device does, and
        double-differentiates with a smoothing filter (best practice for
        the attacker).
        """
        t, positions = self.observe_positions(trajectory, rng)
        rate = self.imu_rate_hz
        n_grid = int(np.floor((t[-1] - t[0]) * rate))
        grid = t[0] + np.arange(n_grid) / rate
        interp = np.column_stack(
            [np.interp(grid, t, positions[:, c]) for c in range(3)]
        )
        window = min(31, (n_grid // 8) * 2 + 1)
        accel = savgol_filter(
            interp, window, 3, deriv=2, delta=1.0 / rate, axis=0
        )
        # A depth-blind tracker keys its onset detection off the lateral
        # axes it actually trusts; the reconstructed depth axis is mostly
        # synthetic noise.
        trusted = accel if self.camera.tracks_depth else accel[:, 1:]
        activity = np.linalg.norm(trusted - trusted.mean(axis=0), axis=1)
        onset = detect_motion_onset(
            activity, rate, window_s=0.12, baseline_s=0.45,
            threshold=5.0, min_std=0.05,
        )
        n_samples = int(round(self.window_s * rate))
        if onset + n_samples > n_grid:
            raise SimulationError("camera window ran past the recording")
        return accel[onset : onset + n_samples]

    # -- attack loop ------------------------------------------------------------

    def attempt(
        self,
        trajectory: GestureTrajectory,
        victim_seed,
        rng,
    ) -> AttackTrial:
        """One attack instance against one key establishment."""
        rng = ensure_rng(rng)
        try:
            a_estimate = self.estimate_acceleration_matrix(
                trajectory, child_rng(rng, "camera")
            )
        except SimulationError as exc:
            return AttackTrial(succeeded=False, detail=f"tracking: {exc}")
        seed = self.pipeline.imu_keyseed(a_estimate)
        trial = seed_within_ecc_radius(seed, victim_seed, self.eta)
        # Even a matching seed is useless if the forged announce message
        # cannot meet the tau deadline (SIV-D.2).
        ready_at = trajectory.motion_onset_s + self.window_s + (
            self.camera.processing_latency_s
        )
        deadline = trajectory.motion_onset_s + self.announce_deadline_s
        if ready_at > deadline:
            return AttackTrial(
                succeeded=False,
                mismatch_rate=trial.mismatch_rate,
                detail=(
                    f"seed {'valid' if trial.succeeded else 'invalid'} but "
                    f"ready {ready_at - deadline:.2f}s past the deadline"
                ),
            )
        return trial

    def seed_recovery_trial(
        self, trajectory: GestureTrajectory, victim_seed, rng
    ) -> AttackTrial:
        """Like :meth:`attempt` but ignoring the deadline — measures pure
        tracking fidelity (the paper's 0.5% remote figure is of this
        kind)."""
        rng = ensure_rng(rng)
        try:
            a_estimate = self.estimate_acceleration_matrix(
                trajectory, child_rng(rng, "camera")
            )
        except SimulationError as exc:
            return AttackTrial(succeeded=False, detail=f"tracking: {exc}")
        seed = self.pipeline.imu_keyseed(a_estimate)
        return seed_within_ecc_radius(seed, victim_seed, self.eta)

    def run(
        self,
        trajectories,
        victim_seeds,
        rng=None,
        enforce_deadline: bool = True,
    ) -> AttackOutcome:
        """Attack a batch of key-establishment instances."""
        rng = ensure_rng(rng)
        outcome = AttackOutcome(attack=f"camera:{self.camera.name}")
        for i, (trajectory, victim_seed) in enumerate(
            zip(trajectories, victim_seeds)
        ):
            trial_rng = child_rng(rng, "trial", i)
            if enforce_deadline:
                outcome.add(self.attempt(trajectory, victim_seed, trial_rng))
            else:
                outcome.add(
                    self.seed_recovery_trial(
                        trajectory, victim_seed, trial_rng
                    )
                )
        return outcome
