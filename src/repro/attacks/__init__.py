"""Attack implementations (paper SV / SVI-E).

Every adversary strategy the paper analyzes is implemented against the
real protocol and pipelines:

* :mod:`repro.attacks.eavesdrop` — passive transcript collection and a
  best-effort key-recovery attempt (defeated by OT).
* :mod:`repro.attacks.mitm` — message interception/substitution
  (defeated by OT secrecy + HMAC confirmation).
* :mod:`repro.attacks.spoofing` — RFID signal injection replacing the
  server's observation (defeated by broken cross-modal correlation).
* :mod:`repro.attacks.guessing` — device spoofing by random key-seed
  guessing (bounded by Eq. 4).
* :mod:`repro.attacks.mimicry` — device spoofing by imitating the
  victim's gesture (SVI-E.1).
* :mod:`repro.attacks.camera` — device spoofing by camera-based hand
  tracking, remote (high-fidelity, high-latency) and in-situ
  (low-latency, low-fidelity) strategies (SVI-E.2).
"""

from repro.attacks.base import AttackOutcome, AttackTrial
from repro.attacks.eavesdrop import Eavesdropper
from repro.attacks.mitm import MitmAttacker
from repro.attacks.spoofing import SignalSpoofingAttack
from repro.attacks.guessing import RandomGuessAttack
from repro.attacks.mimicry import GestureMimicryAttack
from repro.attacks.camera import (
    CameraProfile,
    CameraRecoveryAttack,
    IN_SITU_PIXEL8,
    REMOTE_ALPCAM,
)

__all__ = [
    "AttackOutcome",
    "AttackTrial",
    "Eavesdropper",
    "MitmAttacker",
    "SignalSpoofingAttack",
    "RandomGuessAttack",
    "GestureMimicryAttack",
    "CameraProfile",
    "CameraRecoveryAttack",
    "REMOTE_ALPCAM",
    "IN_SITU_PIXEL8",
]
