"""repro.cluster — sharded WaveKey deployment behind one address.

The paper's access-control service must hold at production scale
("millions of users"); one Python process does not.  This package
adds the horizontal layer:

* :mod:`repro.cluster.ring` — :class:`ShardRing`, a consistent-hash
  ring with virtual nodes: stable session placement, ~``1/n``
  keyspace movement per membership change;
* :mod:`repro.cluster.gateway` — :class:`WaveKeyGateway`, an
  event-loop front end that peeks each connection's HELLO frame,
  routes the session by ``sender#seed`` identity with bounded-load
  spill, and splices frames to the chosen backend; active stats
  probes eject dead backends from the ring (emitting
  ``cluster.ring.rebalance`` events) and re-admit them on recovery;
* :mod:`repro.cluster.stats` — :func:`fetch_stats`, the one-round-trip
  health-probe-plus-metrics-scrape spoken by backends and gateways
  alike, feeding the merged fleet view
  (``repro cluster metrics HOST:PORT``).

Quick start (loopback)::

    from repro.cluster import WaveKeyGateway
    from repro.net import WaveKeyNetClient

    gateway = WaveKeyGateway(["127.0.0.1:7101", "127.0.0.1:7102"])
    with gateway:
        host, port = gateway.address
        result = WaveKeyNetClient(host, port).establish(rng_seed=7)
"""

from repro.cluster.gateway import (
    REBALANCE_EVENT,
    BackendState,
    WaveKeyGateway,
)
from repro.cluster.ring import ShardRing, ring_hash
from repro.cluster.stats import fetch_stats, fetch_telemetry

__all__ = [
    "REBALANCE_EVENT",
    "BackendState",
    "ShardRing",
    "WaveKeyGateway",
    "fetch_stats",
    "fetch_telemetry",
    "ring_hash",
]
