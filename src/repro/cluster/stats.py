"""Stats scraping: one round trip for health *and* metrics.

Every WaveKey front end — backend TCP servers and the gateway alike —
answers a :class:`repro.net.codec.StatsRequest` sent as the *first*
frame of a connection with a JSON :class:`StatsResponse` and closes.
That single exchange doubles as:

* a **health probe** — a backend that cannot accept, parse the
  request, and serialize its registry within the probe timeout is not
  healthy in any sense a router cares about (strictly stronger than a
  bare TCP connect check);
* a **metrics scrape** — the payload carries the responder's full
  metrics snapshot, so the gateway's prober accumulates per-backend
  snapshots for free and :func:`repro.obs.merge_snapshots` builds the
  fleet view.

JSON stringifies histogram bucket bounds; :func:`fetch_stats` repairs
them with :func:`repro.obs.normalize_snapshot` so scraped snapshots
merge cleanly with live registries.
"""

from __future__ import annotations

import json

from repro.errors import ProtocolError
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    StatsRequest,
    StatsResponse,
    TelemetryRequest,
    TelemetryResponse,
)
from repro.net.connection import connect
from repro.obs.metrics import normalize_snapshot


def fetch_stats(
    host: str,
    port: int,
    *,
    timeout_s: float = 5.0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> dict:
    """Fetch one stats document from a WaveKey front end.

    Returns the decoded JSON document: ``role`` is ``"backend"`` or
    ``"gateway"``; ``snapshot`` (and, for gateways, each entry of
    ``backends[*].snapshot``) is normalized back to float bucket keys.
    Raises :class:`repro.errors.TransportError` subclasses on
    connect/read failures and :class:`ProtocolError` on a malformed
    reply — both of which a prober should score as "unhealthy".
    """
    conn = connect(
        host,
        port,
        timeout_s=timeout_s,
        read_timeout_s=timeout_s,
        max_frame_bytes=max_frame_bytes,
    )
    try:
        conn.send(StatsRequest())
        reply = conn.recv(timeout_s=timeout_s)
    finally:
        conn.close()
    if not isinstance(reply, StatsResponse):
        raise ProtocolError(
            f"expected STATS_RESPONSE, got {type(reply).__name__}"
        )
    try:
        document = json.loads(reply.payload_json)
    except ValueError as exc:
        raise ProtocolError(f"stats payload is not JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError("stats payload is not a JSON object")
    snapshot = document.get("snapshot")
    if isinstance(snapshot, dict):
        normalize_snapshot(snapshot)
    for entry in document.get("backends") or []:
        if isinstance(entry, dict) and isinstance(
            entry.get("snapshot"), dict
        ):
            normalize_snapshot(entry["snapshot"])
    return document


def fetch_telemetry(
    host: str,
    port: int,
    *,
    drain: bool = False,
    timeout_s: float = 5.0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> dict:
    """Fetch one telemetry document (finished spans + recent events)
    from a WaveKey front end.

    The distributed-tracing sibling of :func:`fetch_stats`: a
    :class:`TelemetryRequest` as the connection's first frame is
    answered with the responder's :class:`TelemetryResponse` and the
    connection closes.  ``drain=True`` clears the responder's buffer —
    the gateway's periodic scrape uses it so every span is collected
    exactly once; ad-hoc CLI peeks leave the buffer intact.
    """
    conn = connect(
        host,
        port,
        timeout_s=timeout_s,
        read_timeout_s=timeout_s,
        max_frame_bytes=max_frame_bytes,
    )
    try:
        conn.send(TelemetryRequest(drain=drain))
        reply = conn.recv(timeout_s=timeout_s)
    finally:
        conn.close()
    if not isinstance(reply, TelemetryResponse):
        raise ProtocolError(
            f"expected TELEMETRY_RESPONSE, got {type(reply).__name__}"
        )
    try:
        document = json.loads(reply.payload_json)
    except ValueError as exc:
        raise ProtocolError(
            f"telemetry payload is not JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ProtocolError("telemetry payload is not a JSON object")
    document.setdefault("spans", [])
    document.setdefault("events", [])
    return document
