"""WaveKey sharding gateway: one address in front of many backends.

:class:`WaveKeyGateway` accepts client connections on a single
listening socket, *peeks* the first frame to learn the session's
identity, picks a backend on a :class:`repro.cluster.ring.ShardRing`,
and then splices frames bidirectionally between client and backend on
the shared :class:`repro.net.eventloop.EventLoop` — the same
frame-granular relay machinery the fault-injection proxy uses, so a
gateway hop costs one decode + one re-encode per frame and no extra
threads per connection.

Routing policy (bounded-load consistent hashing):

* the route key is ``"<sender>#<rng_seed>"`` from the HELLO frame —
  stable per device identity, spread across seeds;
* the ring's candidate order is walked until a backend with headroom
  (``in_flight < spill_inflight``) and no recent shed verdicts is
  found; if every candidate is saturated the *least-loaded* healthy
  backend takes the session rather than refusing it — the backend's
  own admission queue remains the real shedding authority;
* backends answering ``busy`` accumulate a shed score that steers new
  placements away until a session completes cleanly.

Membership is active: a prober thread scrapes every backend's
:class:`StatsRequest` endpoint each ``probe_interval_s`` (the same
exchange doubles as the metrics scrape feeding the fleet view).
Backends failing ``probe_fail_threshold`` consecutive probes — or
``eject_after_failures`` consecutive dials — are ejected from the
ring, redistributing their keyspace to the survivors; a later
successful probe re-admits them.  Every membership change emits a
``cluster.ring.rebalance`` event into the gateway's
:class:`repro.obs.EventLog` and bumps ``cluster.ring.rebalances``.

With ``replication_interval_s`` set, the prober thread doubles as a
**replication ferry**: each interval it pulls every backend's
ticket-replication delta into a relay :class:`ReplicationLog` (never
applied — the gateway holds no tickets) and pushes each backend the
entries it lacks, so grants and revocations reach every backend within
one ferry round without backends knowing each other's addresses.

State rules: all :class:`BackendState` and session mutation happens on
the loop thread; the prober reports its verdicts via
:meth:`EventLoop.call_soon`; the relay log is prober-thread-only.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.errors import ConfigurationError, TransportError
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    ErrorFrame,
    FrameAssembler,
    FrameType,
    Hello,
    ReplDigest,
    ReplPull,
    ReplPush,
    ResumeRequest,
    RevokeNotice,
    StatsRequest,
    StatsResponse,
    TelemetryRequest,
    TelemetryResponse,
    Verdict,
    decode_payload,
    encode_message,
    frame_to_bytes,
)
from repro.net.connection import SEND_CLOSED, OutboundBuffer
from repro.net.eventloop import EVENT_READ, EVENT_WRITE, EventLoop
from repro.obs.collect import TELEMETRY_SCHEMA
from repro.obs.events import EventLog
from repro.obs.metrics import (
    MetricsRegistry,
    latency_buckets,
    merge_snapshots,
)
from repro.obs.tracing import parent_from_context, resolve_tracer
from repro.cluster.ring import ShardRing
from repro.cluster.stats import fetch_stats, fetch_telemetry
from repro.replica.log import ReplicationLog
from repro.replica.peer import pull_entries, push_entries

#: Event kind emitted on every ring-membership change.
REBALANCE_EVENT = "cluster.ring.rebalance"

_EINPROGRESS = (0, 115, 36, 10035)  # ok / EINPROGRESS / EWOULDBLOCK variants


def _parse_backend(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, sep, port_text = str(spec).rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"backend {spec!r} must look like HOST:PORT"
        )
    try:
        return host, int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"backend {spec!r} has a non-integer port"
        ) from None


class BackendState:
    """Gateway-side view of one backend (loop-thread mutation only)."""

    __slots__ = (
        "address", "key", "healthy", "in_ring", "in_flight",
        "sessions_routed", "consecutive_failures", "probe_failures",
        "shed_score", "snapshot", "info",
    )

    def __init__(self, address: Tuple[str, int]):
        self.address = address
        self.key = f"{address[0]}:{address[1]}"
        self.healthy = True
        self.in_ring = False
        self.in_flight = 0
        self.sessions_routed = 0
        self.consecutive_failures = 0
        self.probe_failures = 0
        self.shed_score = 0
        self.snapshot: Optional[dict] = None  # last scraped metrics
        self.info: dict = {}                  # last scraped header fields


class _GatewaySession:
    """One client connection through the gateway (loop-thread only)."""

    __slots__ = (
        "client_sock", "backend_sock", "backend", "state", "route_key",
        "access_kind", "hello_bytes", "tried", "c2s_assembler",
        "s2c_assembler", "to_backend", "to_client", "client_eof",
        "backend_eof", "closing", "closed", "dial_timer", "session_timer",
        "routed_at", "counted", "trace_parent", "route_span", "splice_span",
    )

    def __init__(self, client_sock, max_frame_bytes: int, max_pending: int):
        self.client_sock = client_sock
        self.backend_sock = None
        self.backend: Optional[BackendState] = None
        self.state = "hello"
        self.route_key = ""
        self.access_kind = ""  # "resume"/"revoke" for ticket sessions
        self.hello_bytes = b""
        self.tried: Set[str] = set()
        self.c2s_assembler = FrameAssembler(max_frame_bytes)
        self.s2c_assembler = FrameAssembler(max_frame_bytes)
        self.to_backend = OutboundBuffer(max_pending)
        self.to_client = OutboundBuffer(max_pending)
        self.client_eof = False
        self.backend_eof = False
        self.closing = False
        self.closed = False
        self.dial_timer = None
        self.session_timer = None
        self.routed_at = 0.0
        self.counted = False  # True once in_flight was incremented
        self.trace_parent = None  # TraceContext from the client's hello
        self.route_span = None    # cluster.route (hello -> backend dialed)
        self.splice_span = None   # cluster.splice (dialed -> close)


class WaveKeyGateway:
    """Consistent-hash sharding front end over WaveKey backends."""

    def __init__(
        self,
        backends: Iterable[Union[str, Tuple[str, int]]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "gateway",
        replicas: int = 64,
        connect_timeout_s: float = 3.0,
        handshake_timeout_s: float = 10.0,
        session_timeout_s: float = 120.0,
        probe_interval_s: float = 1.0,
        probe_timeout_s: float = 2.0,
        probe_fail_threshold: int = 2,
        eject_after_failures: int = 2,
        spill_inflight: int = 8,
        shed_penalty: int = 3,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_outbound_bytes: int = 1 << 20,
        health_checks: bool = True,
        metrics: MetricsRegistry = None,
        events: EventLog = None,
        tracer=None,
        telemetry=None,
        replication_interval_s: Optional[float] = None,
    ):
        addresses = [_parse_backend(spec) for spec in backends]
        if not addresses:
            raise ConfigurationError("a gateway needs at least one backend")
        self.name = name
        self.metrics = metrics or MetricsRegistry()
        self.events = events or EventLog()
        self.tracer = tracer
        self.telemetry = telemetry
        self.connect_timeout_s = float(connect_timeout_s)
        self.handshake_timeout_s = float(handshake_timeout_s)
        self.session_timeout_s = float(session_timeout_s)
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.probe_fail_threshold = int(probe_fail_threshold)
        self.eject_after_failures = int(eject_after_failures)
        self.spill_inflight = int(spill_inflight)
        self.shed_penalty = int(shed_penalty)
        self.max_frame_bytes = int(max_frame_bytes)
        self.max_outbound_bytes = int(max_outbound_bytes)
        self.health_checks = bool(health_checks)
        if replication_interval_s is not None and replication_interval_s <= 0:
            raise ConfigurationError(
                "replication_interval_s must be positive"
            )
        self.replication_interval_s = replication_interval_s
        # Relay log (no store): the ferry holds entries it never
        # applies, so backends need no static peer lists — each
        # replication round pulls every backend's delta into the relay
        # and pushes each backend the relay entries it lacks.
        self._relay_log: Optional[ReplicationLog] = None
        if replication_interval_s is not None:
            self._relay_log = ReplicationLog(
                f"gateway/{name}", metrics=self.metrics
            )
        self._next_ferry_at = 0.0  # prober-thread only (monotonic)
        self._listen_host = host
        self._listen_port = int(port)
        self._backends: Dict[str, BackendState] = {}
        for address in addresses:
            state = BackendState(address)
            if state.key in self._backends:
                raise ConfigurationError(f"duplicate backend {state.key}")
            self._backends[state.key] = state
        self._ring = ShardRing(replicas=replicas)
        self._sessions: Set[_GatewaySession] = set()  # loop-thread only
        self._sock: Optional[socket.socket] = None
        self.loop: Optional[EventLoop] = None
        self.address: Optional[Tuple[str, int]] = None
        self.sessions_routed = 0
        self._running = False
        self._probe_thread: Optional[threading.Thread] = None
        self._probe_stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WaveKeyGateway":
        if self._running:
            return self
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._listen_host, self._listen_port))
        sock.listen(128)
        sock.setblocking(False)
        self._sock = sock
        self.address = sock.getsockname()[:2]
        self._running = True
        self.loop = EventLoop(
            name=f"wavekey-gw-{self.name}", metrics=self.metrics
        ).start()
        self.loop.call_soon(self._bootstrap_on_loop)
        if self.health_checks:
            self._probe_stop.clear()
            self._probe_thread = threading.Thread(
                target=self._probe_forever,
                name=f"wavekey-gw-{self.name}-probe",
                daemon=True,
            )
            self._probe_thread.start()
        return self

    def _bootstrap_on_loop(self) -> None:
        for backend in self._backends.values():
            self._join(backend, reason="startup")
        self.loop.register(
            self._sock, EVENT_READ, self._on_listener_ready
        )

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._probe_stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5.0)
        done = threading.Event()
        self.loop.call_soon(self._shutdown_on_loop, done)
        done.wait(timeout=5.0)
        self.loop.stop()

    def _shutdown_on_loop(self, done: threading.Event) -> None:
        try:
            self.loop.unregister(self._sock)
            self._sock.close()
            for session in list(self._sessions):
                self._close_session(session)
        finally:
            done.set()

    def __enter__(self) -> "WaveKeyGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- fleet view --------------------------------------------------------

    def backend_states(self) -> Dict[str, BackendState]:
        return dict(self._backends)

    def fleet_snapshot(self) -> dict:
        """Gateway registry merged with the last scrape of every backend."""
        snapshots = [self.metrics.snapshot()]
        for backend in self._backends.values():
            if backend.snapshot:
                snapshots.append(backend.snapshot)
        return merge_snapshots(*snapshots)

    def fleet_document(self) -> dict:
        """The JSON document served for a gateway-directed StatsRequest."""
        entries: List[dict] = []
        for key in sorted(self._backends):
            backend = self._backends[key]
            entries.append({
                "backend": key,
                "healthy": backend.healthy,
                "in_ring": backend.in_ring,
                "in_flight": backend.in_flight,
                "sessions_routed": backend.sessions_routed,
                "shed_score": backend.shed_score,
                "share": round(self._ring.share(key), 6),
                "info": dict(backend.info),
            })
        document = {
            "role": "gateway",
            "name": self.name,
            "sessions_served": self.sessions_routed,
            "ring_size": len(self._ring),
            "backends": entries,
            "snapshot": self.fleet_snapshot(),
        }
        if self._relay_log is not None:
            document["replication"] = {
                "interval_s": self.replication_interval_s,
                **self._relay_log.status(),
            }
        return document

    def telemetry_document(self, drain: bool = False) -> dict:
        """The JSON document served for a gateway-directed
        TelemetryRequest: the gateway's own route/splice spans plus
        every span its prober drained from the backends — one scrape
        of the gateway suffices to stitch the whole fleet."""
        if self.telemetry is None:
            return {
                "schema": TELEMETRY_SCHEMA,
                "role": "gateway",
                "service": self.name,
                "spans": [],
                "events": [],
                "dropped_spans": 0,
                "dropped_events": 0,
            }
        self.telemetry.flush()
        document = self.telemetry.document(drain=drain)
        document["role"] = "gateway"
        return document

    # -- ring membership (loop thread) -------------------------------------

    def _join(self, backend: BackendState, reason: str) -> None:
        if backend.in_ring:
            return
        self._ring.add(backend.key)
        backend.in_ring = True
        backend.healthy = True
        backend.consecutive_failures = 0
        backend.probe_failures = 0
        backend.shed_score = 0
        self.metrics.counter("cluster.ring.rebalances").inc()
        self.events.emit(
            REBALANCE_EVENT,
            action="join",
            backend=backend.key,
            reason=reason,
            share_assigned=round(self._ring.share(backend.key), 4),
            ring_size=len(self._ring),
        )
        self._update_health_gauge()

    def _eject(self, backend: BackendState, reason: str) -> None:
        if not backend.in_ring:
            backend.healthy = False
            return
        share = self._ring.share(backend.key)
        self._ring.remove(backend.key)
        backend.in_ring = False
        backend.healthy = False
        self.metrics.counter("cluster.ring.rebalances").inc()
        self.events.emit(
            REBALANCE_EVENT,
            action="eject",
            backend=backend.key,
            reason=reason,
            share_redistributed=round(share, 4),
            ring_size=len(self._ring),
        )
        self._update_health_gauge()

    def _update_health_gauge(self) -> None:
        healthy = sum(1 for b in self._backends.values() if b.in_ring)
        self.metrics.gauge("cluster.backends.healthy").set(healthy)

    def _note_dial_failure(self, backend: BackendState, reason: str) -> None:
        backend.consecutive_failures += 1
        self.metrics.counter(
            "cluster.backend.dial_errors", labels={"backend": backend.key}
        ).inc()
        if backend.consecutive_failures >= self.eject_after_failures:
            self._eject(backend, reason=f"dial: {reason}")

    # -- probing (prober thread -> loop thread) ----------------------------

    def _probe_forever(self) -> None:
        while not self._probe_stop.is_set():
            for key, backend in list(self._backends.items()):
                host, port = backend.address
                try:
                    document = fetch_stats(
                        host, port, timeout_s=self.probe_timeout_s
                    )
                except Exception:  # any probe failure means "not healthy"
                    document = None
                if not self._running:
                    return
                self.loop.call_soon(self._on_probe_result, key, document)
                if self.telemetry is not None and document is not None:
                    # Piggyback the trace scrape on the health cadence;
                    # drain so every backend span is collected exactly
                    # once into the gateway's fleet buffer.
                    try:
                        scraped = fetch_telemetry(
                            host, port, drain=True,
                            timeout_s=self.probe_timeout_s,
                        )
                    except Exception:
                        scraped = None
                    if not self._running:
                        return
                    if scraped is not None:
                        self.loop.call_soon(
                            self._on_telemetry_result, key, scraped
                        )
            if self._relay_log is not None:
                now = time.monotonic()
                if now >= self._next_ferry_at:
                    self._ferry_replication()
                    self._next_ferry_at = now + self.replication_interval_s
            self._probe_stop.wait(self.probe_interval_s)

    def _ferry_replication(self) -> None:
        """One replication round over the fleet (prober thread).

        Phase 1 pulls every backend's delta into the relay log; phase 2
        pushes each backend the relay entries *it* lacks (its digest
        was learned in phase 1).  Any entry the relay has ever seen
        therefore reaches every live backend within one round, and a
        backend that was down simply catches up on its next round —
        no backend needs to know any other backend's address.
        """
        relay = self._relay_log
        digests: Dict[str, Dict[str, int]] = {}
        for key, backend in list(self._backends.items()):
            host, port = backend.address
            try:
                docs, remote_digest = pull_entries(
                    host, port,
                    sender=relay.origin,
                    digest=relay.digest(),
                    timeout_s=self.probe_timeout_s,
                )
            except Exception:
                self.metrics.counter(
                    "cluster.replica.ferry_errors",
                    labels={"backend": key, "phase": "pull"},
                ).inc()
                continue
            digests[key] = remote_digest
            if docs:
                outcomes = relay.ingest_documents(docs)
                self.metrics.counter(
                    "cluster.replica.ferried",
                    labels={"direction": "pulled"},
                ).inc(outcomes["new"])
        for key, remote_digest in digests.items():
            backend = self._backends.get(key)
            if backend is None:
                continue
            to_send = relay.missing_for(remote_digest)
            if not to_send:
                continue
            host, port = backend.address
            try:
                push_entries(
                    host, port,
                    sender=relay.origin,
                    entries=to_send,
                    timeout_s=self.probe_timeout_s,
                )
            except Exception:
                self.metrics.counter(
                    "cluster.replica.ferry_errors",
                    labels={"backend": key, "phase": "push"},
                ).inc()
                continue
            self.metrics.counter(
                "cluster.replica.ferried",
                labels={"direction": "pushed"},
            ).inc(len(to_send))
        self.metrics.counter("cluster.replica.ferry_rounds").inc()

    def _on_telemetry_result(self, key: str, document: dict) -> None:
        if self.telemetry is None:
            return
        spans = document.get("spans") or []
        if spans:
            self.metrics.counter(
                "cluster.telemetry.spans_scraped",
                labels={"backend": key},
            ).inc(len(spans))
        service = str(document.get("service") or key)
        self.telemetry.add_spans(spans, service=service)
        self.telemetry.add_events(document.get("events") or [])

    def _on_probe_result(self, key: str, document: Optional[dict]) -> None:
        backend = self._backends.get(key)
        if backend is None:
            return
        self.metrics.counter(
            "cluster.probes",
            labels={
                "backend": key,
                "result": "ok" if document is not None else "fail",
            },
        ).inc()
        if document is None:
            backend.probe_failures += 1
            if (
                backend.in_ring
                and backend.probe_failures >= self.probe_fail_threshold
            ):
                self._eject(backend, reason="probe")
            return
        backend.probe_failures = 0
        backend.consecutive_failures = 0
        snapshot = document.get("snapshot")
        if isinstance(snapshot, dict):
            backend.snapshot = snapshot
        backend.info = {
            field: document.get(field)
            for field in ("name", "sessions_served", "queue_depth",
                          "queue_capacity")
        }
        if not backend.in_ring:
            self._join(backend, reason="probe-recovered")

    # -- backend selection (loop thread) -----------------------------------

    def _select_backend(
        self, route_key: str, exclude: Set[str]
    ) -> Optional[BackendState]:
        candidates = [
            self._backends[key]
            for key in self._ring.candidates(route_key)
            if key not in exclude and self._backends[key].in_ring
        ]
        if not candidates:
            return None
        for backend in candidates:
            if (
                backend.in_flight < self.spill_inflight
                and backend.shed_score < self.shed_penalty
            ):
                if backend is not candidates[0]:
                    self.metrics.counter("cluster.route.spill").inc()
                return backend
        # Every candidate is at the soft bound (or shed-penalized):
        # spread rather than refuse — the backend's admission queue is
        # the real shedding authority.
        return min(candidates, key=lambda b: b.in_flight)

    # -- accept + hello (loop thread) --------------------------------------

    def _on_listener_ready(self, mask: int) -> None:
        while True:
            try:
                client_sock, _ = self._sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed by stop()
            client_sock.setblocking(False)
            with contextlib.suppress(OSError):
                client_sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            session = _GatewaySession(
                client_sock, self.max_frame_bytes, self.max_outbound_bytes
            )
            self._sessions.add(session)
            self.loop.register(
                client_sock, EVENT_READ,
                lambda m, s=session: self._on_client_ready(s, m),
            )
            session.session_timer = self.loop.call_later(
                self.handshake_timeout_s,
                lambda s=session: self._session_expired(s, "handshake"),
            )

    def _session_expired(self, session: _GatewaySession, phase: str) -> None:
        if session.closed:
            return
        self.metrics.counter(
            "cluster.session_timeouts", labels={"phase": phase}
        ).inc()
        self._close_session(session)

    def _on_client_ready(self, session: _GatewaySession, mask: int) -> None:
        if session.closed:
            return
        if mask & EVENT_WRITE:
            try:
                session.to_client.flush(session.client_sock)
            except OSError:
                self._close_session(session)
                return
            self._update_client_interest(session)
            self._maybe_finish_close(session)
            if session.closed:
                return
        if mask & EVENT_READ:
            self._service_client_reads(session)

    def _service_client_reads(self, session: _GatewaySession) -> None:
        for _ in range(16):
            if session.closing or session.client_eof:
                break
            try:
                n = session.c2s_assembler.read_into(session.client_sock)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_session(session)
                return
            if n == 0:
                session.client_eof = True
                break
        if session.state == "hello":
            self._drain_hello(session)
        elif session.state == "splice":
            self._drain_c2s(session)
        elif session.state == "dial" and session.client_eof:
            # The client hung up while the backend dial was in flight.
            self._close_session(session)
            return
        if not session.closed:
            self._update_client_interest(session)

    def _drain_hello(self, session: _GatewaySession) -> None:
        try:
            frame = session.c2s_assembler.next_frame()
        except TransportError:
            self._close_session(session)
            return
        if frame is None:
            if session.client_eof:
                self._close_session(session)
            return
        try:
            message = decode_payload(frame)
        except TransportError:
            self._close_session(session)
            return
        if isinstance(message, StatsRequest):
            self.metrics.counter("cluster.stats_requests").inc()
            reply = StatsResponse(
                payload_json=json.dumps(self.fleet_document(), default=str)
            )
            self._send_to_client(session, frame_to_bytes(
                encode_message(reply)
            ))
            self._finish_after_flush(session)
            return
        if isinstance(message, TelemetryRequest):
            self.metrics.counter("cluster.telemetry_requests").inc()
            reply = TelemetryResponse(
                payload_json=json.dumps(
                    self.telemetry_document(drain=message.drain),
                    default=str,
                )
            )
            self._send_to_client(session, frame_to_bytes(
                encode_message(reply)
            ))
            self._finish_after_flush(session)
            return
        if isinstance(message, (ReplDigest, ReplPull, ReplPush)):
            # The gateway is not a replica, but it answers the status
            # probe (``repro replica status GATEWAY``) with its relay
            # log's view; PULL/PUSH must target a backend directly.
            self._answer_replication(session, message)
            return
        if isinstance(message, (ResumeRequest, RevokeNotice)):
            # Ticket-identity routing: every operation on one ticket —
            # the resumption that uses it and the revocation that kills
            # it — hashes to the same backend, so even a fleet without
            # replication stays consistent while membership holds.
            # With replication on (``--replication-interval``) any
            # backend can honour the resume, so a miss on the routed
            # backend — post-rebalance, or an entry still in flight —
            # is a counted fallback (``cluster.route.resume_fallback``)
            # rather than a hard design limit; the client still falls
            # back to full establishment on ``ticket_unknown``.
            session.route_key = f"ticket#{message.ticket_id}"
            session.access_kind = (
                "resume" if isinstance(message, ResumeRequest) else "revoke"
            )
            self.metrics.counter(
                "cluster.route.access",
                labels={"kind": session.access_kind},
            ).inc()
        elif isinstance(message, Hello):
            session.route_key = f"{message.sender}#{message.rng_seed}"
        else:
            self._refuse(
                session, "protocol",
                f"expected HELLO, got {type(message).__name__}",
            )
            return
        session.trace_parent = parent_from_context(
            getattr(message, "trace_context", None)
        )
        tracer = resolve_tracer(self.tracer)
        if tracer.enabled:
            session.route_span = tracer.start_span(
                "cluster.route",
                parent=session.trace_parent,
                route_key=session.route_key,
                kind=type(message).__name__.lower(),
            )
        session.hello_bytes = frame_to_bytes(frame)
        session.state = "dial"
        self._start_dial(session)

    def _answer_replication(self, session: _GatewaySession, message) -> None:
        if isinstance(message, ReplDigest):
            if self._relay_log is None:
                reply = ErrorFrame(
                    "replication_disabled",
                    f"gateway {self.name} has no replication ferry "
                    "(start with replication_interval_s)",
                )
            else:
                document = self._relay_log.status()
                document["role"] = "gateway"
                reply = ReplDigest(
                    sender=f"gateway/{self.name}",
                    payload_json=json.dumps(document),
                )
            self.metrics.counter("cluster.replica.status_requests").inc()
        else:
            reply = ErrorFrame(
                "replication_misdirected",
                "the gateway ferries entries itself; send REPL_PULL/"
                "REPL_PUSH to a backend",
            )
        self._send_to_client(session, frame_to_bytes(
            encode_message(reply)
        ))
        self._finish_after_flush(session)

    # -- backend dial (loop thread) ----------------------------------------

    def _start_dial(self, session: _GatewaySession) -> None:
        backend = self._select_backend(session.route_key, session.tried)
        if backend is None:
            self.metrics.counter("cluster.route.errors").inc()
            self._refuse(
                session, "unavailable",
                "no healthy backend for this session",
            )
            return
        if session.tried:
            self.metrics.counter("cluster.route.failover").inc()
        session.tried.add(backend.key)
        session.backend = backend
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        err = sock.connect_ex(backend.address)
        if err not in _EINPROGRESS:
            sock.close()
            self._dial_failed(session, backend, f"errno {err}")
            return
        session.backend_sock = sock
        self.loop.register(
            sock, EVENT_WRITE,
            lambda m, s=session: self._on_backend_dialed(s),
        )
        session.dial_timer = self.loop.call_later(
            self.connect_timeout_s,
            lambda s=session: self._dial_timed_out(s),
        )

    def _dial_timed_out(self, session: _GatewaySession) -> None:
        if session.closed or session.state != "dial":
            return
        session.dial_timer = None
        backend = session.backend
        if session.backend_sock is not None:
            self.loop.unregister(session.backend_sock)
            with contextlib.suppress(OSError):
                session.backend_sock.close()
            session.backend_sock = None
        self._dial_failed(session, backend, "connect timeout")

    def _on_backend_dialed(self, session: _GatewaySession) -> None:
        if session.closed or session.state != "dial":
            return
        if session.dial_timer is not None:
            session.dial_timer.cancel()
            session.dial_timer = None
        sock = session.backend_sock
        err = sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
        if err != 0:
            self.loop.unregister(sock)
            with contextlib.suppress(OSError):
                sock.close()
            session.backend_sock = None
            self._dial_failed(session, session.backend, f"errno {err}")
            return
        with contextlib.suppress(OSError):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        backend = session.backend
        backend.consecutive_failures = 0
        backend.in_flight += 1
        backend.sessions_routed += 1
        session.counted = True
        self.sessions_routed += 1
        self.metrics.counter(
            "cluster.sessions.routed", labels={"backend": backend.key}
        ).inc()
        self.metrics.gauge(
            "cluster.backend.in_flight", labels={"backend": backend.key}
        ).set(backend.in_flight)
        tracer = resolve_tracer(self.tracer)
        if session.route_span is not None:
            session.route_span.set_attribute("backend", backend.key)
            tracer.finish_span(session.route_span)
            session.route_span = None
        if tracer.enabled:
            session.splice_span = tracer.start_span(
                "cluster.splice",
                parent=session.trace_parent,
                backend=backend.key,
            )
        session.state = "splice"
        session.routed_at = time.monotonic()
        if session.session_timer is not None:
            session.session_timer.cancel()
        session.session_timer = self.loop.call_later(
            self.session_timeout_s,
            lambda s=session: self._session_expired(s, "splice"),
        )
        # The held HELLO opens the backend conversation, then any
        # frames the client pipelined behind it follow in order.
        session.to_backend.append(session.hello_bytes, force=True)
        session.hello_bytes = b""
        self.loop.modify(
            sock, EVENT_READ | EVENT_WRITE,
            lambda m, s=session: self._on_backend_ready(s, m),
        )
        self._drain_c2s(session)
        self._update_client_interest(session)

    def _dial_failed(
        self, session: _GatewaySession, backend: BackendState, reason: str
    ) -> None:
        self._note_dial_failure(backend, reason)
        if session.closed:
            return
        # Try the next ring candidate; _start_dial refuses the session
        # (counting cluster.route.errors) once every one was tried.
        self._start_dial(session)

    # -- splicing (loop thread) --------------------------------------------

    def _on_backend_ready(self, session: _GatewaySession, mask: int) -> None:
        if session.closed:
            return
        if mask & EVENT_WRITE:
            try:
                session.to_backend.flush(session.backend_sock)
            except OSError:
                self._splice_broken(session, "backend write")
                return
            self._update_backend_interest(session)
            self._maybe_finish_close(session)
            if session.closed:
                return
        if mask & EVENT_READ:
            self._service_backend_reads(session)

    def _service_backend_reads(self, session: _GatewaySession) -> None:
        for _ in range(16):
            if session.closing or session.backend_eof:
                break
            try:
                n = session.s2c_assembler.read_into(session.backend_sock)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._splice_broken(session, "backend read")
                return
            if n == 0:
                session.backend_eof = True
                break
        self._drain_s2c(session)

    def _drain_c2s(self, session: _GatewaySession) -> None:
        while not session.closed:
            try:
                frame = session.c2s_assembler.next_frame()
            except TransportError:
                self._splice_broken(session, "client stream")
                return
            if frame is None:
                break
            self.metrics.counter(
                "cluster.frames.relayed", labels={"direction": "c2s"}
            ).inc()
            if session.to_backend.append(
                frame_to_bytes(frame), force=True
            ) == SEND_CLOSED:
                return
        if session.closed:
            return
        self._update_backend_interest(session)
        if session.client_eof and not session.closing:
            session.closing = True
            self._update_backend_interest(session)
        self._maybe_finish_close(session)

    def _drain_s2c(self, session: _GatewaySession) -> None:
        while not session.closed:
            try:
                frame = session.s2c_assembler.next_frame()
            except TransportError:
                self._splice_broken(session, "backend stream")
                return
            if frame is None:
                break
            self._observe_s2c_frame(session, frame)
            self.metrics.counter(
                "cluster.frames.relayed", labels={"direction": "s2c"}
            ).inc()
            if session.to_client.append(
                frame_to_bytes(frame), force=True
            ) == SEND_CLOSED:
                return
        if session.closed:
            return
        self._update_client_interest(session)
        if session.backend_eof and not session.closing:
            # One session per connection: the backend said everything
            # it will say; flush what is buffered and close both ways.
            session.closing = True
            self._update_client_interest(session)
        self._update_backend_interest(session)
        self._maybe_finish_close(session)

    def _observe_s2c_frame(self, session: _GatewaySession, frame) -> None:
        """Steer future placements from this session's verdict frames."""
        backend = session.backend
        if backend is None:
            return
        if frame.type == FrameType.VERDICT:
            try:
                verdict = decode_payload(frame)
            except TransportError:
                return
            if isinstance(verdict, Verdict):
                backend.shed_score = 0
                self.metrics.counter(
                    "cluster.sessions.verdicts",
                    labels={"backend": backend.key, "state": verdict.state},
                ).inc()
                if session.routed_at:
                    self.metrics.histogram(
                        "cluster.session_s",
                        bounds=latency_buckets(),
                        labels={"backend": backend.key},
                    ).observe(time.monotonic() - session.routed_at)
                    session.routed_at = 0.0
        elif frame.type == FrameType.ERROR:
            try:
                error = decode_payload(frame)
            except TransportError:
                return
            if isinstance(error, ErrorFrame) and error.code == "busy":
                backend.shed_score += 1
                self.metrics.counter(
                    "cluster.shed.observed", labels={"backend": backend.key}
                ).inc()
            elif (
                isinstance(error, ErrorFrame)
                and error.code == "ticket_unknown"
                and session.access_kind == "resume"
            ):
                # The routed backend could not honour the resume — the
                # client now falls back to full establishment.  With
                # replication on this counts propagation misses; with
                # it off, every post-rebalance resume lands here.
                self.metrics.counter(
                    "cluster.route.resume_fallback",
                    labels={"backend": backend.key},
                ).inc()
                self.events.emit(
                    "cluster_resume_fallback", backend=backend.key,
                    route_key=session.route_key,
                )

    def _splice_broken(self, session: _GatewaySession, where: str) -> None:
        self.metrics.counter(
            "cluster.splice_errors", labels={"where": where}
        ).inc()
        self._close_session(session)

    # -- interest management (loop thread) ---------------------------------

    def _update_client_interest(self, session: _GatewaySession) -> None:
        if session.closed:
            return
        events = 0
        if (
            session.state in ("hello", "splice")
            and not session.client_eof
            and not session.closing
        ):
            events |= EVENT_READ
        if session.to_client.pending > 0:
            events |= EVENT_WRITE
        callback = (
            lambda m, s=session: self._on_client_ready(s, m)
        )
        if events:
            try:
                self.loop.modify(session.client_sock, events, callback)
            except KeyError:
                self.loop.register(session.client_sock, events, callback)
        else:
            self.loop.unregister(session.client_sock)

    def _update_backend_interest(self, session: _GatewaySession) -> None:
        if session.closed or session.backend_sock is None:
            return
        if session.state != "splice":
            return
        events = 0
        if not session.backend_eof and not session.closing:
            events |= EVENT_READ
        if session.to_backend.pending > 0:
            events |= EVENT_WRITE
        callback = (
            lambda m, s=session: self._on_backend_ready(s, m)
        )
        if events:
            try:
                self.loop.modify(session.backend_sock, events, callback)
            except KeyError:
                self.loop.register(session.backend_sock, events, callback)
        else:
            self.loop.unregister(session.backend_sock)

    # -- refusal + teardown (loop thread) ----------------------------------

    def _send_to_client(self, session: _GatewaySession, data: bytes) -> None:
        session.to_client.append(data, force=True)
        self._update_client_interest(session)

    def _refuse(
        self, session: _GatewaySession, code: str, detail: str
    ) -> None:
        frame = encode_message(ErrorFrame(code=code, detail=detail))
        self._send_to_client(session, frame_to_bytes(frame))
        self._finish_after_flush(session)

    def _finish_after_flush(self, session: _GatewaySession) -> None:
        session.closing = True
        session.state = "closing"
        self._update_client_interest(session)
        self._maybe_finish_close(session)

    def _maybe_finish_close(self, session: _GatewaySession) -> None:
        if not session.closing or session.closed:
            return
        if session.to_client.pending > 0:
            return
        if session.backend_sock is not None and (
            session.to_backend.pending > 0
        ):
            return
        self._close_session(session)

    def _close_session(self, session: _GatewaySession) -> None:
        if session.closed:
            return
        session.closed = True
        tracer = resolve_tracer(self.tracer)
        if session.route_span is not None:
            # The session never reached a backend: the route failed.
            tracer.finish_span(session.route_span, status="error")
            session.route_span = None
        if session.splice_span is not None:
            tracer.finish_span(session.splice_span)
            session.splice_span = None
        for timer in (session.dial_timer, session.session_timer):
            if timer is not None:
                timer.cancel()
        session.to_client.close()
        session.to_backend.close()
        for sock in (session.client_sock, session.backend_sock):
            if sock is None:
                continue
            self.loop.unregister(sock)
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()
        backend = session.backend
        if backend is not None and session.counted:
            backend.in_flight = max(0, backend.in_flight - 1)
            self.metrics.gauge(
                "cluster.backend.in_flight", labels={"backend": backend.key}
            ).set(backend.in_flight)
        self._sessions.discard(session)
