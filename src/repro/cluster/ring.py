"""Consistent-hash ring: stable session-to-backend placement.

:class:`ShardRing` hashes each backend onto many points of a 64-bit
ring (*virtual nodes*), and routes a session key to the first point at
or clockwise of the key's own hash.  The two properties the gateway
leans on:

* **stability** — the same ``sender#seed`` identity always lands on
  the same backend while membership is unchanged, so per-device state
  (rate limits, caches, RF profiles) stays shard-local;
* **minimal disruption** — removing a backend only remaps the keys
  that hashed to *its* arcs (~``1/n`` of the keyspace, measured by
  :meth:`share`); every other session keeps its placement.  Adding it
  back restores the original placement exactly, because the virtual
  points are derived from the node name alone.

Hashing uses ``blake2b`` with an 8-byte digest: stable across
processes and Python versions (unlike ``hash()``), cheap, and
uniform enough that ``replicas=64`` keeps the max/mean shard-share
imbalance within ~30% for small fleets.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

_RING_BITS = 64
_RING_SIZE = 1 << _RING_BITS


def ring_hash(key: str) -> int:
    """Stable 64-bit position of ``key`` on the ring."""
    digest = blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRing:
    """A consistent-hash ring over named backend nodes.

    ``replicas`` is the virtual-node count per backend: more replicas
    smooth the keyspace split at the cost of a longer sorted point
    list (lookup stays ``O(log(replicas * nodes))`` via bisect).
    """

    def __init__(self, nodes: Iterable[str] = (), *, replicas: int = 64):
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: List[int] = []          # sorted virtual-node hashes
        self._owner: Dict[int, str] = {}      # point hash -> node
        self._nodes: Dict[str, List[int]] = {}  # node -> its point hashes
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    def add(self, node: str) -> None:
        if not node:
            raise ConfigurationError("node name must be non-empty")
        if node in self._nodes:
            return
        points = []
        for replica in range(self.replicas):
            point = ring_hash(f"{node}#{replica}")
            # A 64-bit collision across nodes is ~impossible; skip the
            # point rather than silently stealing another node's arc.
            if point in self._owner:
                continue
            self._owner[point] = node
            points.append(point)
            bisect.insort(self._points, point)
        self._nodes[node] = points

    def remove(self, node: str) -> None:
        points = self._nodes.pop(node, None)
        if points is None:
            return
        for point in points:
            del self._owner[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes())

    # -- placement ---------------------------------------------------------

    def lookup(self, key: str) -> Optional[str]:
        """The node owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        position = ring_hash(key)
        index = bisect.bisect_left(self._points, position)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owner[self._points[index]]

    def candidates(self, key: str) -> List[str]:
        """All nodes in ring order starting at ``key``'s owner.

        The result lists each node once, in the order a router should
        try them: the owner first, then successive distinct owners
        clockwise.  Removing the owner promotes exactly this sequence,
        so "next candidate" failover agrees with post-ejection
        placement.
        """
        if not self._points:
            return []
        position = ring_hash(key)
        start = bisect.bisect_left(self._points, position)
        ordered: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            node = self._owner[point]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(seen) == len(self._nodes):
                    break
        return ordered

    def share(self, node: str) -> float:
        """Fraction of the keyspace owned by ``node`` (0.0 if absent).

        Each virtual point owns the arc from its predecessor
        (exclusive) to itself (inclusive); summing a node's arcs over
        the full 2**64 ring gives its expected share of uniformly
        hashed keys.  Shares over current members sum to 1.0.
        """
        if node not in self._nodes or not self._points:
            return 0.0
        if len(self._nodes) == 1:
            return 1.0
        owned = 0
        for index, point in enumerate(self._points):
            if self._owner[point] is not node and self._owner[point] != node:
                continue
            previous = self._points[index - 1]  # index 0 wraps to the top
            owned += (point - previous) % _RING_SIZE
        return owned / _RING_SIZE
