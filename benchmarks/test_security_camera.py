"""SVI-E.2: camera-aided data-recovery device spoofing.

Paper setup: 200 victim gestures each against (a) the remote strategy
(260 FPS ALPCAM + Complexer-YOLO 3-D tracking on a server: 1/200 = 0.5%
seed recovery, but streaming latency always breaks the tau deadline) and
(b) the in-situ strategy (Pixel 8 + YOLOv5 2-D tracking: 0/200).

Scaling: 15 gestures per strategy per WAVEKEY_BENCH_SCALE unit.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.attacks import (
    CameraRecoveryAttack,
    IN_SITU_PIXEL8,
    REMOTE_ALPCAM,
)
from repro.core import KeySeedPipeline
from repro.errors import SimulationError
from repro.gesture import default_volunteers, sample_gesture
from repro.rfid import (
    ChannelGeometry,
    RFIDReader,
    default_environments,
    default_tags,
    process_rfid_record,
)
from repro.utils.rng import child_rng


def _victim_instances(pipeline, n, seed):
    """(trajectory, server key-seed) pairs for attack targets."""
    environment = default_environments()[0]
    tag = default_tags()[0]
    geometry = ChannelGeometry()
    volunteer = default_volunteers()[0]
    trajectories, seeds = [], []
    i = 0
    while len(trajectories) < n:
        rng = child_rng(seed, i)
        i += 1
        trajectory = sample_gesture(volunteer, child_rng(rng, "gesture"))
        try:
            channel = environment.build_channel(tag, geometry, rng=rng)
            record = RFIDReader().record_gesture(
                channel, trajectory, rng=child_rng(rng, "reader")
            )
            seeds.append(pipeline.rfid_keyseed(process_rfid_record(record)))
        except SimulationError:
            continue
        trajectories.append(trajectory)
    return trajectories, seeds


def test_camera_recovery_attacks(bundle, pipeline, benchmark):
    n = 15 * bench_scale()
    trajectories, seeds = _victim_instances(pipeline, n, seed=6001)
    deadline = 2.0 + 0.12

    rows = []
    results = {}
    for camera in (REMOTE_ALPCAM, IN_SITU_PIXEL8):
        attack = CameraRecoveryAttack(
            pipeline=pipeline, eta=bundle.eta, camera=camera,
            announce_deadline_s=deadline,
        )
        with_deadline = attack.run(
            trajectories, seeds, rng=6002, enforce_deadline=True
        )
        seed_only = attack.run(
            trajectories, seeds, rng=6002, enforce_deadline=False
        )
        results[camera.name] = (with_deadline, seed_only)
        rows.append([
            camera.name,
            f"{with_deadline.n_successes}/{with_deadline.n_trials}",
            f"{seed_only.n_successes}/{seed_only.n_trials}",
        ])
    print()
    print(format_table(
        ["strategy", "full attack", "seed recovery only"],
        rows,
        title="SVI-E.2 reproduction "
              "(paper: remote 0 full / 0.5% seed-only; in-situ 0)",
    ))

    remote_full, remote_seed = results[REMOTE_ALPCAM.name]
    insitu_full, insitu_seed = results[IN_SITU_PIXEL8.name]
    # The deadline kills every remote attempt regardless of fidelity.
    assert remote_full.n_successes == 0
    # Seed-only recovery stays a rare event for both strategies.
    assert remote_seed.success_rate <= 0.2
    assert insitu_seed.success_rate <= 0.2
    assert insitu_full.success_rate <= 0.2

    # Timed unit: one remote-camera acceleration reconstruction.
    attack = CameraRecoveryAttack(
        pipeline=pipeline, eta=bundle.eta, camera=REMOTE_ALPCAM
    )

    benchmark(
        lambda: attack.seed_recovery_trial(
            trajectories[0], seeds[0], rng=6003
        )
    )
