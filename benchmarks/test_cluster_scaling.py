"""Horizontal-scaling benchmarks for the sharding gateway.

A single Python backend is serial where it matters: acquisition and
protocol compute run under the access server's compute lock, so one
process's session throughput is bounded no matter how many clients
connect.  The gateway's claim is that backends shard that bound.

These benchmarks make the bound explicit and *wait-dominated* so they
measure routing, not host core count (CI runs on one core, where
CPU-bound work cannot scale): every backend's ``acquire_fn`` sleeps
``ACQUIRE_S`` under the compute lock — the serial floor per backend —
while seeds are pinned and bundles are tiny, so protocol compute is
negligible against it.

* **throughput scaling** — the same concurrent offered load against a
  1-backend and a 3-backend gateway: 3 backends must clear >= 2.5x the
  single-backend session throughput (ideal 3.0x; the gap is gateway
  overhead plus the GIL-bound protocol remainder);
* **mid-run backend kill** — a backend dies while sessions are in
  flight: every session must still complete (SDK transport retries
  plus gateway dial failover), the prober must emit a
  ``cluster.ring.rebalance`` ejection, surviving shares must cover the
  keyspace, and a post-rebalance wave must route with zero errors.

Scaling: session counts multiply by ``WAVEKEY_BENCH_SCALE``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.cluster import (
    REBALANCE_EVENT,
    ShardRing,
    WaveKeyGateway,
    fetch_stats,
)
from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.net import NetClientConfig, WaveKeyNetClient, WaveKeyTCPServer
from repro.service import ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence

ACQUIRE_S = 0.6     # serial floor per session per backend (GIL released)
CONCURRENCY = 12    # offered all at once: every backend's queue stays
                    # full, so per-backend walls have no idle gaps

# Short seeds keep the OT modexp count (one instance per key bit) small
# enough that per-session compute (~35 ms, GIL-bound) stays well under
# the acquisition wait, which is what actually shards across backends.
_PINNED_SEED = BitSequence.random(4, np.random.default_rng(52_001))


def _tiny_bundle():
    return WaveKeyModelBundle(
        imu_encoder=build_imu_encoder(6, rng=0),
        rf_encoder=build_rf_encoder(6, rng=1),
        decoder=build_decoder(6, rng=2),
        n_bins=8,
        eta=0.2,
    )


def _sleeping_acquire(request, rng):
    """Deterministic windows after a fixed wait: time.sleep drops the
    GIL, so backends wait in parallel while one core hosts them all."""
    time.sleep(ACQUIRE_S)
    gen = np.random.default_rng(request.rng_seed)
    a_matrix = gen.normal(size=(50, 3))
    r_matrix = np.stack(
        [
            gen.uniform(-np.pi, np.pi, 100),
            np.abs(gen.normal(size=100)) + 0.5,
        ],
        axis=1,
    )
    return a_matrix, r_matrix


def _spawn_backend(bundle):
    access = WaveKeyAccessServer(
        bundle,
        ServiceConfig(workers=1, max_attempts=1),
        acquire_fn=_sleeping_acquire,
    )
    access.start()
    access._imu_batcher.batch_fn = (
        lambda items: [_PINNED_SEED for _ in items]
    )
    access._rf_batcher.batch_fn = (
        lambda items: [_PINNED_SEED for _ in items]
    )
    tcp = WaveKeyTCPServer(access, "127.0.0.1", 0)
    tcp.start()
    return access, tcp


def _balanced_seeds(addresses, n_sessions, start=10_000):
    """Seeds whose ring placement spreads evenly over ``addresses``.

    Consistent hashing balances in expectation, not per small sample;
    a throughput benchmark with 12 sessions wants the offered load
    itself even, so the measured quantity is gateway + backend
    throughput rather than small-sample hash luck.  Seeds are taken in
    ring order and interleaved round-robin so no backend's share
    clusters at the tail of the work queue.
    """
    ring = ShardRing(addresses)
    quota = n_sessions // len(addresses)
    per_backend = {address: [] for address in addresses}
    seed = start
    while any(len(v) < quota for v in per_backend.values()):
        owner = ring.lookup(f"mobile#{seed}")
        if len(per_backend[owner]) < quota:
            per_backend[owner].append(seed)
        seed += 1
    interleaved = []
    for i in range(quota):
        for address in addresses:
            interleaved.append(per_backend[address][i])
    return interleaved


def _drive(gateway, seeds, max_retries=3):
    """Concurrent establishments through the gateway; returns results."""
    host, port = gateway.address
    config = NetClientConfig(
        max_retries=max_retries,
        read_timeout_s=30.0,
        establish_timeout_s=120.0,
    )
    results = [None] * len(seeds)
    errors = []
    queue = list(enumerate(seeds))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                if not queue:
                    return
                index, seed = queue.pop(0)
            try:
                results[index] = WaveKeyNetClient(
                    host, port, config
                ).establish(rng_seed=seed)
            except Exception as exc:  # transport retries exhausted
                with lock:
                    errors.append((seed, exc))

    threads = [
        threading.Thread(target=worker, name=f"bench-client-{i}",
                         daemon=True)
        for i in range(CONCURRENCY)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return results, errors, elapsed


def test_three_backends_scale_session_throughput():
    n_sessions = 12 * bench_scale()
    bundle = _tiny_bundle()
    elapsed = {}
    rows = []
    for n_backends in (1, 3):
        backends = [_spawn_backend(bundle) for _ in range(n_backends)]
        addresses = [
            f"{tcp.address[0]}:{tcp.address[1]}" for _, tcp in backends
        ]
        try:
            with WaveKeyGateway(
                addresses,
                health_checks=False,  # membership is fixed here
            ) as gateway:
                # Warm every path (imports, first-connection setup)
                # before the measured window.
                warm, warm_errors, _ = _drive(gateway, [9000, 9001])
                assert not warm_errors and all(
                    r.success for r in warm
                ), "warmup sessions must establish"
                seeds = _balanced_seeds(addresses, n_sessions)
                results, errors, wall_s = _drive(gateway, seeds)
                assert not errors, f"transport failures: {errors}"
                assert all(r.success for r in results), (
                    [r.state for r in results if not r.success]
                )
                per_backend = {
                    series.split('backend="')[1].rstrip('"}'): count
                    for series, count in (
                        gateway.metrics.snapshot()["counters"].items()
                    )
                    if series.startswith("cluster.sessions.routed")
                }
        finally:
            for access, tcp in backends:
                tcp.stop()
                access.stop()
        elapsed[n_backends] = wall_s
        rows.append([
            f"{n_backends}", f"{wall_s:.2f}",
            f"{n_sessions / wall_s:.2f}",
            " ".join(
                str(per_backend.get(address, 0)) for address in addresses
            ),
        ])

    speedup = elapsed[1] / elapsed[3]
    print()
    print(format_table(
        ["backends", "wall (s)", "sessions/s", "per-backend split"],
        rows,
        title=(
            f"gateway throughput, {n_sessions} sessions, "
            f"{CONCURRENCY} concurrent clients, "
            f"{1000 * ACQUIRE_S:.0f} ms serial floor per session "
            f"(speedup {speedup:.2f}x)"
        ),
    ))
    assert speedup >= 2.5, (
        f"3 backends gave only {speedup:.2f}x over 1 backend "
        f"({elapsed[1]:.2f}s vs {elapsed[3]:.2f}s)"
    )


def test_mid_run_backend_kill_reroutes_without_errors():
    n_sessions = 9 * bench_scale()
    bundle = _tiny_bundle()
    backends = [_spawn_backend(bundle) for _ in range(3)]
    addresses = [
        f"{tcp.address[0]}:{tcp.address[1]}" for _, tcp in backends
    ]
    victim_key = addresses[0]
    try:
        with WaveKeyGateway(
            addresses,
            spill_inflight=1,
            probe_interval_s=0.2,
            probe_timeout_s=1.0,
            probe_fail_threshold=2,
            eject_after_failures=2,
            connect_timeout_s=1.0,
        ) as gateway:
            warm, warm_errors, _ = _drive(gateway, [9000, 9001, 9002])
            assert not warm_errors and all(r.success for r in warm)

            # The kill lands while this wave is mid-flight.
            seeds = [20_000 + i for i in range(n_sessions)]
            outcome = {}

            def wave():
                outcome["wave"] = _drive(gateway, seeds)

            runner = threading.Thread(target=wave, daemon=True)
            runner.start()
            time.sleep(ACQUIRE_S * 1.5)
            access, tcp = backends[0]
            tcp.stop()
            access.stop()
            backends[0] = None
            killed_at = time.perf_counter()
            runner.join(timeout=180.0)
            assert not runner.is_alive(), "kill wave never finished"
            results, errors, wave_s = outcome["wave"]

            # 1. Surviving sessions all complete (retries allowed).
            assert not errors, f"sessions lost to the kill: {errors}"
            assert all(r is not None and r.success for r in results), (
                [getattr(r, "state", None) for r in results]
            )

            # 2. The prober ejects the dead backend and logs it.
            deadline = time.monotonic() + 10.0
            ejections = []
            while time.monotonic() < deadline and not ejections:
                ejections = [
                    e for e in gateway.events.query(kind=REBALANCE_EVENT)
                    if e.fields.get("action") == "eject"
                    and e.fields.get("backend") == victim_key
                ]
                time.sleep(0.05)
            assert ejections, "no cluster.ring.rebalance ejection event"
            eject_s = time.perf_counter() - killed_at

            # 3. Survivors own the whole keyspace again.
            doc = fetch_stats(*gateway.address)
            assert doc["ring_size"] == 2
            survivor_share = sum(
                e["share"] for e in doc["backends"]
                if e["backend"] != victim_key
            )
            assert survivor_share == pytest.approx(1.0, abs=0.01)

            # 4. Post-rebalance traffic routes with zero errors and
            #    zero failovers: the ring no longer offers the corpse.
            before = gateway.metrics.snapshot()["counters"]
            post, post_errors, post_s = _drive(
                gateway, [30_000 + i for i in range(6 * bench_scale())]
            )
            assert not post_errors
            assert all(r.success for r in post)
            after = gateway.metrics.snapshot()["counters"]
            for series in ("cluster.route.errors", "cluster.route.failover"):
                assert after.get(series, 0) == before.get(series, 0), (
                    f"{series} moved after the rebalance"
                )
            assert after.get(
                f'cluster.sessions.routed{{backend="{victim_key}"}}', 0
            ) == before.get(
                f'cluster.sessions.routed{{backend="{victim_key}"}}', 0
            )
    finally:
        for pair in backends:
            if pair is None:
                continue
            access, tcp = pair
            tcp.stop()
            access.stop()

    print()
    print(format_table(
        ["phase", "sessions", "wall (s)", "result"],
        [
            ["kill wave", f"{n_sessions}", f"{wave_s:.2f}",
             "all established"],
            ["ejection", "-", f"{eject_s:.2f}", "rebalance event"],
            ["post-rebalance", f"{6 * bench_scale()}", f"{post_s:.2f}",
             "0 routing errors"],
        ],
        title=f"mid-run kill of {victim_key} (3-backend gateway)",
    ))
