"""SV-A / SV-C: eavesdropping, RFID signal spoofing, and MitM attacks.

The paper argues these analytically (OT secrecy, broken cross-modal
correlation, OT + HMAC confirmation) and reports < 0.5% success for all
evaluated attacks.  This harness measures each one against the real
protocol:

* eavesdropping — full-transcript capture followed by the adversary's
  best generic recovery attempt; measured key-bit advantage ~ 0;
* signal spoofing — attacker-driven backscatter replaces the server's
  observation; measured key-establishment success under attack;
* MitM — relay with message substitution; measured agreement survival.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.attacks import Eavesdropper, MitmAttacker, SignalSpoofingAttack
from repro.core import KeySeedPipeline
from repro.gesture import default_volunteers
from repro.imu import default_mobile_devices
from repro.protocol import SimulatedTransport, run_key_agreement
from repro.rfid import default_environments, default_tags
from repro.utils.bits import BitSequence
from repro.utils.rng import child_rng


def test_protocol_attacks(bundle, pipeline, agreement_config, benchmark):
    n = 6 * bench_scale()
    rng = np.random.default_rng(10_001)
    seed_length = pipeline.seed_length
    rows = []

    # -- eavesdropping --------------------------------------------------------
    advantage_rates = []
    for i in range(n):
        eve = Eavesdropper(group=agreement_config.group)
        transport = SimulatedTransport(taps=[eve.tap])
        seed = BitSequence.random(seed_length, rng)
        outcome = run_key_agreement(
            seed, seed, agreement_config, transport=transport,
            rng=child_rng(10_002, i),
        )
        assert outcome.success
        forged = eve.attempt_key_recovery(
            segment_bits=agreement_config.segment_bits(seed_length),
            rng=child_rng(10_003, i),
        )
        overlap = min(len(forged), len(outcome.mobile_key))
        match_rate = 1.0 - forged[:overlap].mismatch_rate(
            outcome.mobile_key[:overlap]
        )
        advantage_rates.append(abs(match_rate - 0.5))
    rows.append([
        "eavesdropping",
        f"{n} transcripts",
        f"key-bit advantage {np.mean(advantage_rates):.3f} (0 = none)",
    ])

    # -- signal spoofing ---------------------------------------------------------
    spoof = SignalSpoofingAttack(
        pipeline=pipeline,
        agreement_config=agreement_config,
        device=default_mobile_devices()[3],
        tag=default_tags()[0],
        environment=default_environments()[0],
    )
    spoof_outcome = spoof.run(
        victim=default_volunteers()[0],
        attacker_style=default_volunteers()[1],
        n_instances=n,
        rng=10_004,
    )
    rows.append([
        "rfid signal spoofing",
        f"{spoof_outcome.n_trials} instances",
        f"{spoof_outcome.n_successes} succeeded "
        f"({100 * spoof_outcome.success_rate:.1f}%)",
    ])

    # -- MitM ---------------------------------------------------------------------
    mitm_survivals = 0
    for i in range(n):
        mitm = MitmAttacker(
            group=agreement_config.group,
            strategy="substitute_ciphertexts",
            rng=child_rng(10_005, i),
        )
        transport = SimulatedTransport(interceptor=mitm.intercept)
        seed = BitSequence.random(seed_length, rng)
        outcome = run_key_agreement(
            seed, seed, agreement_config, transport=transport,
            rng=child_rng(10_006, i),
        )
        if outcome.success:
            mitm_survivals += 1
    rows.append([
        "man-in-the-middle",
        f"{n} substituted sessions",
        f"{mitm_survivals} survived (attack exposed otherwise)",
    ])

    print()
    print(format_table(
        ["attack", "workload", "result"], rows,
        title="SV-A / SV-C reproduction (paper: all attacks < 0.5%)",
    ))

    assert np.mean(advantage_rates) < 0.1
    assert spoof_outcome.success_rate <= 0.05
    assert mitm_survivals == 0

    # Timed unit: one eavesdropped agreement (tap overhead included).
    eve = Eavesdropper(group=agreement_config.group)
    transport = SimulatedTransport(taps=[eve.tap])
    seed = BitSequence.random(seed_length, rng)

    benchmark(
        lambda: run_key_agreement(
            seed, seed, agreement_config, transport=transport, rng=5
        )
    )
