"""Net extension: loopback TCP establishment vs in-process baseline.

The ``repro.net`` wire (PR 3) adds binary encode/decode and real socket
hops to every protocol message.  This benchmark pins that overhead:

* per-message codec cost — encode+frame+decode round trips per second
  for a realistic ``M_E`` (the largest protocol message);
* per-session overhead — N establishments through the TCP front end
  (client SDK -> codec -> loopback socket -> access server) vs N through
  the same access server called in-process, identical pinned seeds.

The assertions are deliberately loose (CI machines vary); the printed
numbers feed EXPERIMENTS.md.  Scaling: 8 sessions per
WAVEKEY_BENCH_SCALE unit.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.net import WaveKeyNetClient, WaveKeyTCPServer, NetClientConfig
from repro.net.codec import Hello, decode_payload, encode_message, \
    frame_to_bytes
from repro.net.connection import FrameConnection, connect  # noqa: F401
from repro.protocol.agreement import AgreementParty, KeyAgreementConfig
from repro.service import AccessRequest, ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence

SESSIONS = 8


def _pin_seeds(server, seed):
    server._imu_batcher.batch_fn = lambda items: [seed for _ in items]
    server._rf_batcher.batch_fn = lambda items: [seed for _ in items]


def _fixed_acquire(request, rng):
    gen = np.random.default_rng(request.rng_seed)
    a_matrix = gen.normal(size=(200, 3))
    r_matrix = np.stack(
        [
            gen.uniform(-np.pi, np.pi, 400),
            np.abs(gen.normal(size=400)) + 0.5,
        ],
        axis=1,
    )
    return a_matrix, r_matrix


def test_codec_throughput(bundle):
    """Encode/decode rate for the largest protocol message (M_E)."""
    rng = np.random.default_rng(40_001)
    config = KeyAgreementConfig(key_length_bits=256, eta=bundle.eta)
    seed = BitSequence.random(48, rng)
    a = AgreementParty("mobile", seed, config, rng=rng)
    b = AgreementParty("server", seed, config, rng=rng,
                       own_sequences_first=False)
    batch = a.craft_ciphertexts(b.craft_response(a.craft_announce()))

    n = 200 * bench_scale()
    start = time.perf_counter()
    for _ in range(n):
        data = frame_to_bytes(encode_message(batch))
    encode_s = (time.perf_counter() - start) / n
    frame = encode_message(batch)
    start = time.perf_counter()
    for _ in range(n):
        decode_payload(frame)
    decode_s = (time.perf_counter() - start) / n

    print()
    print(format_table(
        ["direction", "per msg (us)", "msgs/s", "bytes"],
        [
            ["encode M_E", f"{encode_s * 1e6:.0f}",
             f"{1 / encode_s:.0f}", f"{len(data)}"],
            ["decode M_E", f"{decode_s * 1e6:.0f}",
             f"{1 / decode_s:.0f}", f"{len(data)}"],
        ],
        title=f"codec throughput, l_s={len(seed)} ciphertext batch",
    ))
    # Codec work must be negligible next to the OT arithmetic
    # (hundreds of ms per session): well under a millisecond each way.
    assert encode_s < 5e-3
    assert decode_s < 5e-3


def test_nodelay_keeps_roundtrips_under_nagle_delay(bundle):
    """Both ends set TCP_NODELAY, so a small request/response exchange
    (bad-version HELLO -> ERROR frame) round-trips in well under the
    ~40 ms Nagle + delayed-ACK coalescing would impose on loopback."""
    with WaveKeyAccessServer(
        bundle, ServiceConfig(workers=1), acquire_fn=_fixed_acquire
    ) as server:
        with WaveKeyTCPServer(server) as tcp:
            rtts = []
            for i in range(20 * bench_scale() + 1):
                conn = connect(*tcp.address, read_timeout_s=5.0)
                start = time.perf_counter()
                conn.send(Hello(sender="probe", rng_seed=i, version=99))
                error = conn.recv()
                elapsed = time.perf_counter() - start
                conn.close()
                assert error.code == "version"
                if i > 0:  # first exchange absorbs warmup
                    rtts.append(elapsed)

    rtts.sort()
    mean_s = sum(rtts) / len(rtts)
    median_s = rtts[len(rtts) // 2]
    print()
    print(format_table(
        ["metric", "ms"],
        [
            ["median RTT", f"{1000 * median_s:.3f}"],
            ["mean RTT", f"{1000 * mean_s:.3f}"],
            ["p max RTT", f"{1000 * rtts[-1]:.3f}"],
        ],
        title=f"hello->error wire round trip, {len(rtts)} exchanges",
    ))
    # With Nagle active, the ~40 ms coalescing delay would dominate
    # every exchange; with TCP_NODELAY a loopback round trip is
    # sub-millisecond, so even a noisy CI box stays far below it.
    assert mean_s < 0.040, f"mean RTT {1000 * mean_s:.1f} ms"


def test_loopback_overhead_vs_in_process(bundle):
    n = SESSIONS * bench_scale()
    seed = BitSequence.random(32, np.random.default_rng(40_002))
    service_config = ServiceConfig(workers=2, queue_capacity=2 * n)

    # --- in-process baseline: same access server, direct submission.
    with WaveKeyAccessServer(
        bundle, service_config, acquire_fn=_fixed_acquire
    ) as server:
        _pin_seeds(server, seed)
        start = time.perf_counter()
        tickets = [
            server.submit(AccessRequest(rng_seed=1000 + i))
            for i in range(n)
        ]
        records = [t.result(timeout=120.0) for t in tickets]
        in_process_s = time.perf_counter() - start
    assert all(r.success for r in records)

    # --- loopback TCP: same server behind the wire, client SDK driving.
    with WaveKeyAccessServer(
        bundle, service_config, acquire_fn=_fixed_acquire
    ) as server:
        _pin_seeds(server, seed)
        with WaveKeyTCPServer(server) as tcp:
            client_config = NetClientConfig(read_timeout_s=30.0)
            start = time.perf_counter()
            results = [
                WaveKeyNetClient(
                    *tcp.address, client_config
                ).establish(rng_seed=2000 + i)
                for i in range(n)
            ]
            loopback_s = time.perf_counter() - start
        counters = server.metrics.snapshot()["counters"]
    assert all(r.success for r in results)

    per_session_in = in_process_s / n
    per_session_net = loopback_s / n
    overhead_ms = 1000 * (per_session_net - per_session_in)
    frames = counters['net.frames_received{endpoint="server"}']
    rx_bytes = counters['net.bytes_received{endpoint="server"}']

    print()
    print(format_table(
        ["mode", "total (s)", "per session (ms)", "sessions/s"],
        [
            ["in-process", f"{in_process_s:.2f}",
             f"{1000 * per_session_in:.1f}", f"{n / in_process_s:.1f}"],
            ["loopback TCP", f"{loopback_s:.2f}",
             f"{1000 * per_session_net:.1f}", f"{n / loopback_s:.1f}"],
        ],
        title=(
            f"establishment, {n} sequential sessions "
            f"(wire overhead {overhead_ms:+.1f} ms/session, "
            f"{frames / n:.0f} frames, {rx_bytes / n / 1024:.1f} KiB "
            "received per session)"
        ),
    ))

    # Loose pin: the wire must not dominate.  A full OT establishment
    # is hundreds of ms of group arithmetic; codec + loopback TCP per
    # session must stay within 4x of in-process end to end.
    assert per_session_net < 4 * per_session_in + 0.25, (
        f"loopback session cost {per_session_net:.3f}s vs in-process "
        f"{per_session_in:.3f}s — wire overhead out of bounds"
    )
