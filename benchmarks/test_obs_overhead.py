"""Disabled-instrumentation overhead on the batched encoder path.

The observability hooks (span context managers, ``resolve_tracer``,
labeled-metrics emission, the ``Sequential.profiler`` attribute check)
sit directly on the service's hottest path — the stacked encoder
forward inside :meth:`KeySeedPipeline.imu_keyseeds`.  This benchmark
pins the design contract from ``repro.obs``: with no tracer, no
metrics registry, and no profiler attached, the instrumented pipeline
must cost within a few percent of the bare normalize -> forward ->
quantize loop it wraps.

Methodology: interleaved min-of-N timing (alternating measurements of
the two variants so drift hits both equally; the minimum is the
classic low-noise estimator for "how fast can this code go").
"""

import time

import numpy as np
import pytest

from repro.core import KeySeedPipeline
from repro.datasets.normalization import normalize_imu_matrix

BATCH = 64
ROUNDS = 15


@pytest.fixture(scope="module")
def matrices(bundle):
    rng = np.random.default_rng(11)
    return [rng.normal(size=(200, 3)) for _ in range(BATCH)]


def baseline_keyseeds(bundle, quantizer, mats):
    """The exact work of ``imu_keyseeds`` with zero instrumentation.

    ``quantizer`` is hoisted by the caller because ``bundle.quantizer``
    is a constructing property and the pipeline caches it once.
    """
    x = np.stack([normalize_imu_matrix(a) for a in mats])
    features = bundle.imu_encoder.forward(x)
    return [quantizer.quantize(f) for f in features]


def test_disabled_instrumentation_overhead_is_negligible(bundle, matrices):
    pipeline = KeySeedPipeline(bundle)  # no tracer, no metrics
    assert pipeline.profiler is None
    quantizer = bundle.quantizer

    # warm-up: touch every code path once before timing
    reference = baseline_keyseeds(bundle, quantizer, matrices)
    instrumented = pipeline.imu_keyseeds(matrices)
    assert instrumented == reference  # same seeds, always

    base_min = float("inf")
    obs_min = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        baseline_keyseeds(bundle, quantizer, matrices)
        base_min = min(base_min, time.perf_counter() - start)

        start = time.perf_counter()
        pipeline.imu_keyseeds(matrices)
        obs_min = min(obs_min, time.perf_counter() - start)

    overhead = obs_min / base_min - 1.0
    print(
        f"\nbatched encoder path (batch={BATCH}): "
        f"baseline {base_min * 1000:.2f} ms, "
        f"instrumented {obs_min * 1000:.2f} ms, "
        f"overhead {overhead * 100:+.2f}%"
    )
    assert overhead < 0.05, (
        f"disabled instrumentation costs {overhead * 100:.1f}% "
        f"(budget: 5%)"
    )
