"""Disabled-instrumentation overhead on the batched encoder path.

The observability hooks (span context managers, ``resolve_tracer``,
labeled-metrics emission, the ``Sequential.profiler`` attribute check)
sit directly on the service's hottest path — the stacked encoder
forward inside :meth:`KeySeedPipeline.imu_keyseeds`.  This benchmark
pins the design contract from ``repro.obs``: with no tracer, no
metrics registry, and no profiler attached, the instrumented pipeline
must cost within a few percent of the bare normalize -> forward ->
quantize loop it wraps.

Methodology: interleaved min-of-N timing (alternating measurements of
the two variants so drift hits both equally; the minimum is the
classic low-noise estimator for "how fast can this code go").
"""

import time

import numpy as np
import pytest

from repro.core import KeySeedPipeline
from repro.datasets.normalization import normalize_imu_matrix

BATCH = 64
ROUNDS = 15


@pytest.fixture(scope="module")
def matrices(bundle):
    rng = np.random.default_rng(11)
    return [rng.normal(size=(200, 3)) for _ in range(BATCH)]


def baseline_keyseeds(bundle, quantizer, mats):
    """The exact work of ``imu_keyseeds`` with zero instrumentation.

    ``quantizer`` is hoisted by the caller because ``bundle.quantizer``
    is a constructing property and the pipeline caches it once.
    """
    x = np.stack([normalize_imu_matrix(a) for a in mats])
    features = bundle.imu_encoder.forward(x)
    return [quantizer.quantize(f) for f in features]


def test_disabled_instrumentation_overhead_is_negligible(bundle, matrices):
    pipeline = KeySeedPipeline(bundle)  # no tracer, no metrics
    assert pipeline.profiler is None
    quantizer = bundle.quantizer

    # warm-up: touch every code path once before timing
    reference = baseline_keyseeds(bundle, quantizer, matrices)
    instrumented = pipeline.imu_keyseeds(matrices)
    assert instrumented == reference  # same seeds, always

    base_min = float("inf")
    obs_min = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        baseline_keyseeds(bundle, quantizer, matrices)
        base_min = min(base_min, time.perf_counter() - start)

        start = time.perf_counter()
        pipeline.imu_keyseeds(matrices)
        obs_min = min(obs_min, time.perf_counter() - start)

    overhead = obs_min / base_min - 1.0
    print(
        f"\nbatched encoder path (batch={BATCH}): "
        f"baseline {base_min * 1000:.2f} ms, "
        f"instrumented {obs_min * 1000:.2f} ms, "
        f"overhead {overhead * 100:+.2f}%"
    )
    assert overhead < 0.05, (
        f"disabled instrumentation costs {overhead * 100:.1f}% "
        f"(budget: 5%)"
    )


# -- distributed tracing + telemetry scraping on the session path ------------


SESSIONS = 6


def _fixed_acquire(request, rng):
    gen = np.random.default_rng(request.rng_seed)
    a_matrix = gen.normal(size=(200, 3))
    r_matrix = np.stack(
        [
            gen.uniform(-np.pi, np.pi, 400),
            np.abs(gen.normal(size=400)) + 0.5,
        ],
        axis=1,
    )
    return a_matrix, r_matrix


def _pin_seeds(server, seed):
    server._imu_batcher.batch_fn = lambda items: [seed for _ in items]
    server._rf_batcher.batch_fn = lambda items: [seed for _ in items]


def _min_session_s(bundle, n, traced: bool) -> float:
    """Min per-session wall time over ``n`` loopback establishments.

    ``traced=True`` is the full tentpole pipeline: client root spans
    with wire-propagated context, a server tracer feeding a
    :class:`TelemetryBuffer` on a fast flush timer, and one
    ``drain=True`` telemetry scrape per session (far more often than
    the gateway's probe cadence would)."""
    from repro.cluster.stats import fetch_telemetry
    from repro.net import NetClientConfig, WaveKeyNetClient, WaveKeyTCPServer
    from repro.obs import TelemetryBuffer, Tracer
    from repro.service import ServiceConfig, WaveKeyAccessServer
    from repro.utils.bits import BitSequence

    seed = BitSequence.random(32, np.random.default_rng(40_003))
    server_tracer = Tracer() if traced else None
    with WaveKeyAccessServer(
        bundle,
        ServiceConfig(workers=2, queue_capacity=2 * n),
        acquire_fn=_fixed_acquire,
        tracer=server_tracer,
    ) as server:
        _pin_seeds(server, seed)
        telemetry = (
            TelemetryBuffer(
                "backend", tracer=server_tracer, events=server.events
            )
            if traced else None
        )
        with WaveKeyTCPServer(
            server, telemetry=telemetry, telemetry_flush_interval_s=0.05
        ) as tcp:
            config = NetClientConfig(read_timeout_s=30.0)
            best = float("inf")
            for i in range(n):
                client_tracer = Tracer(enabled=traced)
                client = WaveKeyNetClient(
                    *tcp.address, config, tracer=client_tracer
                )
                start = time.perf_counter()
                result = client.establish(rng_seed=3000 + i)
                if traced:
                    fetch_telemetry(*tcp.address, drain=True)
                best = min(best, time.perf_counter() - start)
                assert result.success
    return best


def test_tracing_and_scrape_overhead_on_loopback_sessions(bundle):
    """The tentpole's runtime cost contract: wire trace context, span
    recording across the worker-pool handoff, the telemetry flush
    timer, AND a per-session drain scrape together must cost <5% of a
    loopback establishment (which OT group arithmetic dominates)."""
    n = SESSIONS
    # warm-up one session per variant, then measure interleaved-ish
    _min_session_s(bundle, 1, traced=False)
    bare_s = _min_session_s(bundle, n, traced=False)
    traced_s = _min_session_s(bundle, n, traced=True)
    overhead = traced_s / bare_s - 1.0
    print(
        f"\nloopback establishment: bare {bare_s * 1000:.1f} ms, "
        f"traced+scraped {traced_s * 1000:.1f} ms, "
        f"overhead {overhead * 100:+.2f}% (n={n}, min estimator)"
    )
    # 5% relative budget plus 10 ms absolute slack so a sub-200 ms
    # session on a noisy CI box cannot flake the pin
    assert traced_s < bare_s * 1.05 + 0.010, (
        f"tracing+scrape costs {overhead * 100:.1f}% per session "
        f"(budget: 5%)"
    )
