"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure from the paper's
evaluation (SVI); the mapping is recorded in DESIGN.md and the measured
numbers in EXPERIMENTS.md.  All benchmarks run against the shipped
pretrained bundle (built by ``scripts/train_default_bundle.py``) so the
reported numbers correspond to one fixed model, as in the paper.

Trial counts are scaled down from the paper's (hundreds of human
gestures per cell) to keep the full suite in the minutes range; each
module documents its scaling.  Set ``WAVEKEY_BENCH_SCALE`` > 1 to grow
the counts toward paper scale.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import KeySeedPipeline, WaveKeySystem
from repro.core.pretrained import has_default_bundle, load_default_bundle
from repro.protocol import KeyAgreementConfig


def bench_scale() -> int:
    """Trial-count multiplier (env: WAVEKEY_BENCH_SCALE)."""
    return max(1, int(os.environ.get("WAVEKEY_BENCH_SCALE", "1")))


@pytest.fixture(scope="session")
def bundle():
    if not has_default_bundle():
        pytest.skip(
            "pretrained bundle missing: run scripts/train_default_bundle.py"
        )
    return load_default_bundle()


@pytest.fixture(scope="session")
def pipeline(bundle):
    return KeySeedPipeline(bundle)


@pytest.fixture(scope="session")
def agreement_config(bundle):
    return KeyAgreementConfig(key_length_bits=256, eta=bundle.eta)


@pytest.fixture(scope="session")
def system(bundle, agreement_config):
    return WaveKeySystem(bundle, agreement_config=agreement_config)


@pytest.fixture()
def rng():
    return np.random.default_rng(20240707)
