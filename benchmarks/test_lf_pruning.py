"""SVI-C.1: determining the latent width l_f by variance pruning.

Paper setup: train at l_f = 50, repeatedly prune the lowest-variance
latent unit from both encoders and retrain, stopping when the joint loss
rises by more than 5% in one round; l_f = 12 results.

Full paper scale (start at 50, retrain on 14,400 samples each round) is
hours of numpy compute, so the benchmark runs the identical procedure at
reduced scale (start at 16, small dataset, short retrains) and asserts
the qualitative outcome: pruning removes a substantial fraction of the
initial width before the loss knee, and the final bundle stays usable.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.core import prune_latent_width
from repro.core.training import JointTrainingConfig
from repro.datasets import DatasetConfig, generate_dataset
from repro.gesture import default_volunteers
from repro.imu import default_mobile_devices


def test_lf_pruning_procedure(benchmark):
    scale = bench_scale()
    dataset = generate_dataset(
        DatasetConfig(
            volunteers=default_volunteers()[: 2 * min(scale, 3)],
            devices=default_mobile_devices()[:2],
            gestures_per_device=2 * scale,
            windows_per_gesture=6,
            gesture_active_s=5.0,
        ),
        rng=11_001,
    )
    initial_width = 16
    config = JointTrainingConfig(
        latent_width=initial_width,
        epochs=12 * min(scale, 4),
        batch_size=64,
        learning_rate=2e-3,
        reconstruction_weight=0.005,
    )
    result = prune_latent_width(
        dataset,
        initial_width=initial_width,
        min_width=4,
        training_config=config,
        retrain_epochs=4,
        loss_increase_tolerance=0.05,
        rng=11_002,
    )
    rows = [
        [step.latent_width, f"{step.loss:.4f}"] for step in result.steps
    ]
    print()
    print(format_table(
        ["l_f", "joint loss"], rows,
        title="SVI-C.1 reproduction at reduced scale "
              "(paper: 50 -> 12 with a 5% loss-knee stop)",
    ))
    print(f"selected l_f = {result.selected_width}")

    assert result.selected_width < initial_width
    assert result.steps[0].latent_width == initial_width
    # Loss stayed controlled until the stopping round.
    losses = [s.loss for s in result.steps]
    assert losses[-2] <= losses[0] * 1.5 if len(losses) > 2 else True

    # Timed unit: a single variance scan over the dataset.
    from repro.core.training import prepare_arrays
    from repro.nn import output_variances

    x_imu, _, _ = prepare_arrays(dataset)
    benchmark(
        lambda: output_variances(result.bundle.imu_encoder, x_imu)
    )
