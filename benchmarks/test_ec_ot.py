"""Elliptic-curve OT vs the 512-bit MODP fast path.

Curve25519 gives the OT a ~128-bit security level where the 512-bit
simulation group offers far less; this benchmark answers what that
upgrade costs on this implementation.  Both groups run the identical
pooled batched-OT workload and identical end-to-end establishments, so
the recorded numbers are a like-for-like latency comparison:

* batched-OT microbenchmark — ``run_batch_ot`` wall time per group,
  comb-only and pooled (per-OT latency in the table);
* end-to-end establishment — sessions through the access server with a
  live refill worker, per-establishment latency per group;
* pool exhaustion under the curve — a depth-2 pool against
  ~100-instance sessions must change zero session outcomes, exactly as
  the MODP fast path guarantees.

No speedup threshold is pinned between the groups (the curve is pure
Python field arithmetic; the MODP path rides C-accelerated ``pow``);
what is pinned is correctness parity and that the warm pool keeps the
curve's request-path cost bounded.  ``WAVEKEY_EC_OT_OUT`` names a JSON
file the measurements are merged into (CI uploads ``BENCH_ec_ot.json``).

Scaling: 32 OT instances and 4 e2e sessions per WAVEKEY_BENCH_SCALE
unit.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.crypto import (
    CURVE25519_GROUP,
    OTMaterialPool,
    WAVEKEY_GROUP_512,
    run_batch_ot,
)
from repro.protocol import KeyAgreementConfig
from repro.service import AccessRequest, ServiceConfig, WaveKeyAccessServer

#: (label, group, nominal security bits) rows of every comparison.
CONTENDERS = [
    ("modp512 fast path", WAVEKEY_GROUP_512, 56),
    ("curve25519", CURVE25519_GROUP, 128),
]


def _record(section: str, payload: dict) -> None:
    """Merge one section of results into WAVEKEY_EC_OT_OUT."""
    out = os.environ.get("WAVEKEY_EC_OT_OUT")
    if not out:
        return
    results = {}
    if os.path.exists(out):
        with open(out, "r", encoding="utf-8") as fh:
            results = json.load(fh)
    results[section] = payload
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_ot_latency_by_group():
    n = 32 * bench_scale()
    pairs = [(bytes([i % 251]), bytes([(i + 97) % 251])) for i in range(n)]
    choices = [i % 2 for i in range(n)]
    expected = [pairs[i][c] for i, c in enumerate(choices)]

    rows = []
    recorded = {}
    for label, group, security_bits in CONTENDERS:
        group.comb()  # build tables outside the timed region

        def comb_only():
            assert run_batch_ot(group, pairs, choices, 1, 2) == expected

        comb_s = _best_of(comb_only)

        def pooled():
            # A fresh prefilled pool per repeat: every instance must hit.
            pool = OTMaterialPool(depth=n, rng=3)
            pool.register(group)
            pool.fill()
            start = time.perf_counter()
            assert run_batch_ot(
                group, pairs, choices, 1, 2, pool=pool
            ) == expected
            return time.perf_counter() - start

        pooled_s = min(pooled() for _ in range(3))
        rows.append([
            label, f"{security_bits}",
            f"{1e3 * comb_s / n:.3f}", f"{1e3 * pooled_s / n:.3f}",
        ])
        recorded[group.name] = {
            "security_bits": security_bits,
            "comb_s": comb_s,
            "pooled_s": pooled_s,
            "per_ot_pooled_ms": 1e3 * pooled_s / n,
        }
        assert pooled_s < comb_s, (
            f"{label}: warm pool ({pooled_s:.3f}s) not faster than "
            f"inline comb ({comb_s:.3f}s)"
        )

    print()
    print(format_table(
        ["group", "sec bits", "per-OT comb (ms)", "per-OT pooled (ms)"],
        rows,
        title=f"batched OT, {n} instances per group",
    ))
    recorded["instances"] = n
    _record("batched_ot", recorded)


def _serve_sessions(bundle, service_config, agreement_config, seeds):
    """Establish one session per seed; return (wall_s, records, counters)."""
    server = WaveKeyAccessServer(
        bundle, service_config, agreement_config=agreement_config
    )
    with server:
        if server.ot_pool is not None:
            server.ot_pool.fill()  # start warm, as a steady-state server is
        start = time.perf_counter()
        tickets = [
            server.submit(AccessRequest(rng_seed=seed)) for seed in seeds
        ]
        records = [t.result(timeout=240.0) for t in tickets]
        wall_s = time.perf_counter() - start
        counters = server.metrics.snapshot()["counters"]
    return wall_s, records, counters


def test_e2e_establishment_latency_by_group(bundle):
    n = 4 * bench_scale()
    seeds = [51_000 + i for i in range(n)]

    rows = []
    recorded = {}
    outcomes = {}
    for label, group, security_bits in CONTENDERS:
        wall_s, records, counters = _serve_sessions(
            bundle,
            ServiceConfig(workers=2, ot_pool_depth=256),
            KeyAgreementConfig(eta=bundle.eta, group=group),
            seeds,
        )
        hit_key = f'crypto.pool.hit{{group="{group.name}",kind="sender"}}'
        assert counters.get(hit_key, 0) > 0, (
            f"{label}: warm pool never hit — the server is not using it"
        )
        outcomes[group.name] = [r.success for r in records]
        rows.append([
            label, f"{security_bits}",
            f"{wall_s / n:.2f}", f"{n / wall_s:.2f}",
        ])
        recorded[group.name] = {
            "security_bits": security_bits,
            "wall_s": wall_s,
            "per_establishment_s": wall_s / n,
        }

    # Same gestures, same encoders: the group changes arithmetic,
    # never outcomes.
    assert outcomes["curve25519"] == outcomes["wavekey-512"], (
        "switching the OT group changed session outcomes"
    )
    print()
    print(format_table(
        ["group", "sec bits", "s/establishment", "sessions/s"],
        rows,
        title=f"end-to-end establishment, {n} sessions per group",
    ))
    recorded["sessions"] = n
    _record("e2e_establishment", recorded)


def test_curve_pool_exhaustion_degrades_gracefully(bundle):
    """Depth-2 pool under curve25519: throughput may suffer, session
    outcomes must not change."""
    n = 3 * bench_scale()
    seeds = [52_000 + i for i in range(n)]
    config = KeyAgreementConfig(eta=bundle.eta, group=CURVE25519_GROUP)

    _, baseline_records, _ = _serve_sessions(
        bundle, ServiceConfig(workers=2, ot_pool_depth=0), config, seeds,
    )
    _, starved_records, counters = _serve_sessions(
        bundle, ServiceConfig(workers=2, ot_pool_depth=2), config, seeds,
    )

    misses = counters.get(
        'crypto.pool.miss{group="curve25519",kind="sender"}', 0
    )
    assert misses > 0, "depth-2 pool never missed — benchmark is broken"
    assert [r.success for r in starved_records] == [
        r.success for r in baseline_records
    ], "curve pool exhaustion changed session outcomes"
    assert not any(
        r.failure_reason and "pool" in r.failure_reason.lower()
        for r in starved_records
    )
    _record("curve_pool_exhaustion", {
        "sessions": n,
        "sender_misses": misses,
        "outcomes_match_baseline": True,
    })
