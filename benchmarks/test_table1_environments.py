"""Table I: key-establishment success rates across environments.

Paper setup (SVI-F.1): four emulated environments, each in a static (S)
and a dynamic (D, five people walking) condition; six volunteers x 50
gestures per cell.  Paper numbers: S in [99.3, 100]%, D in [98.6, 99.0]%
— high everywhere, with a small but consistent dynamic-condition dip.

Scaling: 12 gestures per cell per unit of WAVEKEY_BENCH_SCALE (the
*shape* — near-100% static, slightly lower dynamic — is what we assert).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table, success_rate
from repro.core import WaveKeySystem
from repro.gesture import default_volunteers, sample_gesture
from repro.rfid import default_environments
from repro.utils.rng import child_rng


def run_cell(bundle, agreement_config, environment, dynamic, n_gestures,
             seed):
    system = WaveKeySystem(
        bundle, environment=environment, agreement_config=agreement_config
    )
    volunteers = default_volunteers()
    outcomes = []
    for i in range(n_gestures):
        volunteer = volunteers[i % len(volunteers)]
        result = system.establish_key(
            volunteer=volunteer, dynamic=dynamic,
            rng=child_rng(seed, environment.name, dynamic, i),
        )
        outcomes.append(result.success)
    return success_rate(outcomes)


def test_table1_environment_success_rates(bundle, agreement_config,
                                          benchmark):
    n = 12 * bench_scale()
    rows = []
    static_rates = []
    dynamic_rates = []
    for environment in default_environments():
        s_rate = run_cell(bundle, agreement_config, environment, False, n,
                          1001)
        d_rate = run_cell(bundle, agreement_config, environment, True, n,
                          1002)
        static_rates.append(s_rate)
        dynamic_rates.append(d_rate)
        rows.append([
            environment.name, f"{100 * s_rate:.1f}%", f"{100 * d_rate:.1f}%",
        ])
    print()
    print(format_table(
        ["environment", "static P_k", "dynamic P_k"], rows,
        title="Table I reproduction (paper: S 99.3-100%, D 98.6-99.0%)",
    ))

    # Shape assertions (absolute levels are substrate-limited, see
    # EXPERIMENTS.md): success is well above chance in every cell and
    # static >= dynamic on average (the paper's dynamic dip).
    assert min(static_rates) >= 0.45
    assert min(dynamic_rates) >= 0.15
    assert np.mean(static_rates) >= np.mean(dynamic_rates) - 0.05

    # Timed unit: one full static key establishment in environment 1.
    system = WaveKeySystem(
        bundle,
        environment=default_environments()[0],
        agreement_config=agreement_config,
    )
    trajectory = sample_gesture(default_volunteers()[0], rng=55)
    benchmark(
        lambda: system.establish_key(trajectory=trajectory, rng=56)
    )
