"""SVI-C.3: determination of the message deadline tau.

Paper setup: time the preparation of the first combined OT message
(M_A) on each device over the 14,400 dataset records; every device
finished within 100 ms, so tau = 120 ms.  An adversary that must first
run video processing cannot meet announce-by-(2 + tau).

We time the real modexp workload (l_s announces) and compare against
the camera strategies' processing latencies.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.attacks import IN_SITU_PIXEL8, REMOTE_ALPCAM
from repro.core import determine_tau


def test_tau_measurement(bundle, pipeline, benchmark):
    measurement = determine_tau(
        seed_length=pipeline.seed_length,
        n_trials=10 * bench_scale(),
        rng=8001,
    )
    prep_ms = measurement.prep_times_s * 1000
    rows = [
        ["benign M_A preparation (max)", f"{prep_ms.max():.1f} ms"],
        ["benign M_A preparation (mean)", f"{prep_ms.mean():.1f} ms"],
        ["chosen tau", f"{measurement.tau_s * 1000:.1f} ms"],
        ["remote camera processing latency",
         f"{REMOTE_ALPCAM.processing_latency_s * 1000:.0f} ms"],
        ["in-situ camera processing latency",
         f"{IN_SITU_PIXEL8.processing_latency_s * 1000:.0f} ms"],
    ]
    print()
    print(format_table(
        ["quantity", "value"], rows,
        title="SVI-C.3 reproduction (paper: prep < 100 ms, tau = 120 ms)",
    ))

    # Shape assertions: benign preparation is comfortably sub-second and
    # tau (with headroom) excludes the remote video pipeline.
    assert measurement.max_prep_s < 1.0
    assert measurement.tau_s < REMOTE_ALPCAM.processing_latency_s

    benchmark(
        lambda: determine_tau(
            seed_length=pipeline.seed_length, n_trials=1, rng=8002
        )
    )
