"""Table III: key-establishment time vs key length.

Paper setup (SVI-G): total time from gesture start to established key,
for key lengths 128/168/192/256 (AES/3DES) and 2048 (RC4) bits, averaged
over the dataset.  Paper numbers: 2332-2362 ms, i.e. the fixed 2 s
gesture plus ~350 ms of computation, nearly flat in key length.

We measure the same decomposition on the simulated protocol clock
(gesture window + real computation + modelled transmission).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.gesture import default_volunteers, sample_gesture
from repro.protocol import KeyAgreementConfig, run_key_agreement
from repro.utils.bits import BitSequence
from repro.utils.rng import child_rng

KEY_LENGTHS = (128, 168, 192, 256, 2048)


def test_table3_time_consumption(bundle, pipeline, benchmark):
    n = 5 * bench_scale()
    rng = np.random.default_rng(3001)
    seed_length = pipeline.seed_length

    rows = []
    means = {}
    for l_k in KEY_LENGTHS:
        config = KeyAgreementConfig(key_length_bits=l_k, eta=bundle.eta)
        times = []
        for i in range(n):
            seed = BitSequence.random(seed_length, rng)
            outcome = run_key_agreement(
                seed, seed, config, rng=child_rng(3002, l_k, i)
            )
            assert outcome.success
            times.append(outcome.elapsed_s)
        means[l_k] = float(np.mean(times))
        rows.append([f"{l_k} bits", f"{1000 * means[l_k]:.0f} ms"])
    print()
    print(format_table(
        ["key length", "time"], rows,
        title="Table III reproduction (paper: 2332-2362 ms, flat)",
    ))

    # Shape assertions: every run is dominated by the 2 s gesture; the
    # 2048-bit key costs at most ~40% more than the 128-bit key (paper:
    # nearly flat).
    assert all(2.0 < t < 4.0 for t in means.values())
    assert means[2048] < means[128] * 1.4

    # Timed unit: the 256-bit agreement computation.
    config = KeyAgreementConfig(key_length_bits=256, eta=bundle.eta)
    seed = BitSequence.random(seed_length, rng)

    benchmark(lambda: run_key_agreement(seed, seed, config, rng=3))
