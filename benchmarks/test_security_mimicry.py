"""SVI-E.1: gesture-mimicking device spoofing.

Paper setup: six volunteers each act as victim for 20 key
establishments; the other five mimic each gesture — 600 instances, all
of which failed (success rate 0%, and the paper bounds it at <= 0.2%
elsewhere).

Scaling: 2 gestures per victim per WAVEKEY_BENCH_SCALE unit with all
five imitators -> 60 instances per unit.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table, mismatch_statistics
from repro.attacks import GestureMimicryAttack
from repro.core import KeySeedPipeline
from repro.gesture import default_volunteers
from repro.imu import default_mobile_devices
from repro.rfid import default_environments, default_tags


def test_mimicry_campaign(bundle, benchmark):
    pipeline = KeySeedPipeline(bundle)
    attack = GestureMimicryAttack(
        pipeline=pipeline,
        eta=bundle.eta,
        device=default_mobile_devices()[3],
        tag=default_tags()[0],
        environment=default_environments()[0],
    )
    outcome = attack.run(
        victims=default_volunteers(),
        gestures_per_victim=2 * bench_scale(),
        rng=5001,
    )
    stats = mismatch_statistics(outcome.mismatch_rates())
    print()
    print(format_table(
        ["instances", "successes", "success rate", "mismatch mean",
         "mismatch min"],
        [[outcome.n_trials, outcome.n_successes,
          f"{100 * outcome.success_rate:.2f}%",
          f"{stats['mean']:.3f}",
          f"{min(outcome.mismatch_rates()):.3f}"]],
        title="SVI-E.1 reproduction (paper: 0/600 mimicry successes)",
    ))

    # Shape assertions: mimicry is a rare event and the typical mimic
    # seed is far outside the ECC radius.
    assert outcome.success_rate <= 0.10
    assert stats["mean"] > 1.5 * bundle.eta

    # Timed unit: one mimicry attempt end to end.
    victim = default_volunteers()[0]
    imitator = default_volunteers()[1]
    from repro.gesture import sample_gesture

    trajectory = sample_gesture(victim, rng=5002)

    def one_attempt():
        seed_v = attack.victim_server_seed(trajectory, rng=5003)
        seed_a = attack.attacker_seed(trajectory, imitator, rng=5004)
        return seed_a.mismatch_rate(seed_v)

    benchmark(one_attempt)
